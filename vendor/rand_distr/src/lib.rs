//! Offline stand-in for the subset of the `rand_distr` crate used by this
//! workspace: the [`Distribution`] trait and the [`Normal`] distribution.
//! See the `vendor/rand` shim for why the real crate cannot be fetched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, RngCore};
use std::fmt;

/// Types that can sample values of `T` from a generator (mirrors
/// `rand_distr::Distribution`).
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// A normal (Gaussian) distribution `N(mean, std_dev²)`, sampled with the
/// Box–Muller transform (one fresh pair per call; the second value is
/// discarded to keep the type `Copy` and stateless).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !(std_dev.is_finite() && std_dev >= 0.0) {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 ∈ (0, 1] so the log is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Why a [`Normal`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn moments_are_roughly_right() {
        let dist = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }
}
