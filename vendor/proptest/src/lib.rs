//! Offline stand-in for the subset of the `proptest` crate used by this
//! workspace.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`strategy::Strategy`] with
//! `prop_map` / `prop_flat_map`, strategies for numeric ranges and tuples,
//! `prop::collection::vec`, `prop::bool::ANY`, [`any`], and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Semantics differ from real proptest in two ways: values are drawn from
//! a deterministic per-test seed (test name hash + case index), and there
//! is **no shrinking** — a failing case panics with the assertion message
//! directly. That trades minimal counterexamples for zero dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from every generated value and draws
        /// from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($idx:tt $s:ident))+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!((0 A));
    impl_tuple_strategy!((0 A)(1 B));
    impl_tuple_strategy!((0 A)(1 B)(2 C));
    impl_tuple_strategy!((0 A)(1 B)(2 C)(3 D));
    impl_tuple_strategy!((0 A)(1 B)(2 C)(3 D)(4 E));
    impl_tuple_strategy!((0 A)(1 B)(2 C)(3 D)(4 E)(5 F));
    impl_tuple_strategy!((0 A)(1 B)(2 C)(3 D)(4 E)(5 F)(6 G));
    impl_tuple_strategy!((0 A)(1 B)(2 C)(3 D)(4 E)(5 F)(6 G)(7 H));

    /// Types with a canonical whole-domain strategy (see [`crate::any`]).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>() as usize
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>() as i64
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// Whole-domain strategy returned by [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Case-generation plumbing: configuration and the per-test RNG.
pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// How many cases each property runs (mirrors
    /// `proptest::test_runner::Config`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 128 }
        }
    }

    /// Deterministic per-(test, case) generator feeding every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// A generator seeded from the test's full path and case index,
        /// so every run of the suite replays the same cases.
        pub fn deterministic(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                inner: rand::rngs::StdRng::seed_from_u64(
                    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            }
        }
    }

    impl RngCore for TestRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// The `prop::` facade (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// An inclusive size window for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            /// Inclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { min: n, max: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range {r:?}");
                Self {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range {r:?}");
                Self {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// Strategy for `Vec`s with element strategy `S` (see [`vec`]).
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose length lies in `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.min..=self.size.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Strategy generating unbiased booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyBool;

        /// Unbiased boolean strategy (mirrors `prop::bool::ANY`).
        pub const ANY: AnyBool = AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen()
            }
        }
    }
}

/// Whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property (panics on failure; the shim has
/// no shrinking, so this is `assert!` with proptest's name).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// `cases` times with fresh deterministic values bound to `arg`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn point() -> impl Strategy<Value = (f64, f64)> {
        (-10.0f64..10.0, -10.0f64..10.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -2.0f64..2.0, z in 1u32..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        /// Vec strategies respect size windows; map composes.
        #[test]
        fn vec_and_map(v in prop::collection::vec(point().prop_map(|(a, b)| a + b), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for s in v {
                prop_assert!((-20.0..20.0).contains(&s));
            }
        }

        /// flat_map threads runtime values into dependent strategies.
        #[test]
        fn flat_map_dependent(pair in (1usize..6).prop_flat_map(|n| {
            prop::collection::vec(0usize..n, 1..4).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert!(v.iter().all(|&x| x < n));
        }

        /// any::<u64>() and bool::ANY generate.
        #[test]
        fn any_and_bool(seed in any::<u64>(), flag in prop::bool::ANY) {
            let _ = (seed, flag);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0.0f64..1.0;
        let a: Vec<f64> = (0..5)
            .map(|c| {
                let mut rng = crate::test_runner::TestRng::deterministic("t", c);
                s.generate(&mut rng)
            })
            .collect();
        let b: Vec<f64> = (0..5)
            .map(|c| {
                let mut rng = crate::test_runner::TestRng::deterministic("t", c);
                s.generate(&mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}
