//! Offline stand-in for the subset of the `rand` crate used by this
//! workspace.
//!
//! The build environment cannot reach a crate registry, so the real
//! `rand` cannot be fetched. This shim mirrors the module paths and trait
//! shapes the workspace relies on — `rngs::StdRng`, [`SeedableRng`], and
//! the [`Rng`] extension trait with `gen`, `gen_bool` and `gen_range` —
//! so the calling code is source-compatible with the real crate and can
//! be switched back by flipping one dependency line.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64: not the ChaCha12 core of the real `StdRng`, but a
//! high-quality, fast, deterministic PRNG — everything the experiments
//! need. Streams differ from the real crate; nothing in this workspace
//! depends on the exact stream, only on determinism per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the shim's equivalent of sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the top bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from uniformly via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (or, for floats, non-finite).
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && (self.end - self.start).is_finite(),
            "cannot sample empty or non-finite range {:?}",
            self
        );
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(
            start <= end && (end - start).is_finite(),
            "cannot sample empty or non-finite range {start}..={end}"
        );
        // Scale a 53-bit uniform including the upper endpoint.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

/// Draws a uniform integer in `[0, bound)` without modulo bias
/// (Lemire's rejection method on 64-bit multiplies).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= low.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range {start}..={end}");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return <$t as StandardInt>::sample_standard_int(rng);
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

/// Helper used by the full-domain corner of inclusive integer ranges.
trait StandardInt {
    fn sample_standard_int<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardInt for $t {
            #[inline]
            fn sample_standard_int<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods every generator gets (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type (`f64` in `[0,1)`,
    /// `bool`, `u32`, `u64`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++ with
    /// SplitMix64 seed expansion. Deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2018).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&b));
            let c = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&c));
            let d = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&d));
        }
    }

    #[test]
    fn unit_uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
    }
}
