//! Offline stand-in for the subset of the `criterion` crate used by this
//! workspace's bench targets (`Criterion::benchmark_group`,
//! `bench_with_input`, `Bencher::iter`/`iter_batched`, the group timing
//! knobs, and the `criterion_group!`/`criterion_main!` macros).
//!
//! Each benchmark is warmed up for the group's `warm_up_time`, then timed
//! in batches until `measurement_time` elapses or `sample_size` batches
//! complete; the mean wall-clock time per iteration is printed as one
//! line. This keeps `cargo bench` functional (and the numbers honest, if
//! less rigorous than real Criterion) without registry access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function (mirrors
/// `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs one stand-alone benchmark (a group of one).
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named group of benchmarks sharing timing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run the routine before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` against a shared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Benchmarks a routine with no external input.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut bencher);
        bencher.report(&self.name, &id.into());
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// How `iter_batched` amortizes setup cost (accepted for API
/// compatibility; the shim times every batch the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Mean seconds per iteration, filled by `iter`/`iter_batched`.
    mean_secs: Option<f64>,
    iterations: u64,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Self {
        Self {
            sample_size,
            warm_up_time,
            measurement_time,
            mean_secs: None,
            iterations: 0,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run untimed until the warm-up window elapses (at least
        // once), to populate caches and trigger lazy initialization.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let budget_start = Instant::now();
        // Run until both the minimum sample count and the time budget are
        // satisfied.
        loop {
            let t = Instant::now();
            black_box(routine());
            total += t.elapsed();
            iters += 1;
            if iters >= self.sample_size as u64 && budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean_secs = Some(total.as_secs_f64() / iters as f64);
        self.iterations = iters;
    }

    /// Times `routine` on fresh inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        loop {
            black_box(routine(setup()));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let budget_start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
            if iters >= self.sample_size as u64 && budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean_secs = Some(total.as_secs_f64() / iters as f64);
        self.iterations = iters;
    }

    fn report(&self, group: &str, label: &str) {
        match self.mean_secs {
            Some(secs) => println!(
                "{group}/{label}: {} per iter ({} iters)",
                format_duration(secs),
                self.iterations
            ),
            None => println!("{group}/{label}: no measurement recorded"),
        }
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark harness function running the listed targets
/// (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_mean() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter("batched"), &4u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(2.0).ends_with(" s"));
        assert!(format_duration(2e-3).ends_with(" ms"));
        assert!(format_duration(2e-6).ends_with(" µs"));
        assert!(format_duration(2e-9).ends_with(" ns"));
    }
}
