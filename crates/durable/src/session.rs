//! [`DurableHandle`]: the [`Session`] wrapper that makes an in-process
//! service durable.
//!
//! Every state-changing call is appended to the write-ahead log
//! *before* it reaches the wrapped [`ServiceHandle`]; every
//! `checkpoint_every` logged operations the handle quiesces the
//! service (via the ordinary [`snapshot`](Session::snapshot) drain),
//! writes a covering checkpoint, rotates the log to a fresh segment,
//! and deletes everything the checkpoint made redundant. Read-only
//! calls pass straight through. Callers — the TCP server, the CLI —
//! drive the result as a plain [`Session`] and never know durability
//! is underneath.

use crate::checkpoint::{self, SnapshotFormat};
use crate::wal::{self, SyncPolicy, WalRecord, WalWriter};
use crate::{recovery, DurableError, Recovery};
use ltc_core::model::{Task, TaskId, Worker, WorkerId};
use ltc_core::service::{
    EventStream, Lifecycle, RebalanceOutcome, ServiceError, ServiceHandle, ServiceMetrics,
    ServiceSnapshot, Session, SessionInfo,
};
use std::io;
use std::path::{Path, PathBuf};

/// How often checkpoints are taken when the caller does not say.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 4096;

/// Configuration for a [`DurableHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// How eagerly log records are fsynced (default [`SyncPolicy::Os`]).
    pub sync: SyncPolicy,
    /// Checkpoint after this many logged operations; `0` disables
    /// periodic checkpoints entirely (the log then only rotates at
    /// resume and shutdown). Default [`DEFAULT_CHECKPOINT_EVERY`].
    pub checkpoint_every: u64,
    /// Checkpoint encoding (default [`SnapshotFormat::Text`], the
    /// golden form).
    pub format: SnapshotFormat,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            sync: SyncPolicy::Os,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            format: SnapshotFormat::Text,
        }
    }
}

/// What [`DurableHandle::resume`] did before handing the session back:
/// the [`Recovery`] accounting, minus the handle it consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeReport {
    /// Sequence number covered by the checkpoint that was restored.
    pub checkpoint_seq: u64,
    /// Newer-but-unreadable checkpoints skipped during restore.
    pub checkpoints_skipped: u64,
    /// Log records replayed on top of the restored checkpoint.
    pub replayed: u64,
    /// Bytes of torn final record truncated off the log.
    pub truncated_bytes: u64,
    /// The sequence number the next logged operation will carry.
    pub next_seq: u64,
}

fn wal_failed(e: io::Error) -> ServiceError {
    ServiceError::Transport(format!("write-ahead log: {e}"))
}

fn durable_failed(e: DurableError) -> ServiceError {
    match e {
        DurableError::Service(e) => e,
        other => ServiceError::Transport(other.to_string()),
    }
}

/// A durable [`Session`] over an in-process [`ServiceHandle`]. See the
/// module docs for the log/checkpoint choreography and
/// [`recover`](crate::recover) for what happens after a crash.
#[derive(Debug)]
pub struct DurableHandle {
    inner: ServiceHandle,
    wal: WalWriter,
    dir: PathBuf,
    options: DurableOptions,
    since_checkpoint: u64,
    checkpoints: u64,
    closed: bool,
}

impl DurableHandle {
    /// Wraps a fresh session, initializing `dir` with a genesis
    /// checkpoint (the state before any logged operation) and segment
    /// 0. Refuses a directory that already holds a log — that history
    /// belongs to [`resume`](DurableHandle::resume).
    pub fn create(
        mut inner: ServiceHandle,
        dir: &Path,
        options: DurableOptions,
    ) -> Result<Self, DurableError> {
        std::fs::create_dir_all(dir)?;
        if Self::is_initialized(dir) {
            return Err(DurableError::AlreadyInitialized(dir.to_path_buf()));
        }
        let snapshot = inner.snapshot()?;
        checkpoint::write_checkpoint(dir, 0, &snapshot, options.format)?;
        let wal = WalWriter::new_segment(dir, 0, 0, options.sync)?;
        inner.announce_lifecycle(Lifecycle::Checkpointed { seq: 0 });
        Ok(Self {
            inner,
            wal,
            dir: dir.to_path_buf(),
            options,
            since_checkpoint: 0,
            checkpoints: 1,
            closed: false,
        })
    }

    /// Recovers `dir` ([`recover`](crate::recover): restore, repair a
    /// torn tail, replay) and resumes logging where the log left off —
    /// writing a fresh covering checkpoint, starting a new segment, and
    /// compacting everything older, so a crash loop cannot accumulate
    /// unbounded replay work.
    pub fn resume(
        dir: &Path,
        options: DurableOptions,
    ) -> Result<(Self, ResumeReport), DurableError> {
        let Recovery {
            handle: mut inner,
            checkpoint_seq,
            checkpoints_skipped,
            replayed,
            truncated_bytes,
            next_seq,
            next_segment,
        } = recovery::recover(dir)?;
        let snapshot = inner.snapshot()?;
        checkpoint::write_checkpoint(dir, next_seq, &snapshot, options.format)?;
        let mut wal = WalWriter::new_segment(dir, next_segment, next_seq, options.sync)?;
        wal.compact()?;
        checkpoint::compact_checkpoints(dir, next_seq)?;
        inner.announce_lifecycle(Lifecycle::Checkpointed { seq: next_seq });
        let report = ResumeReport {
            checkpoint_seq,
            checkpoints_skipped,
            replayed,
            truncated_bytes,
            next_seq,
        };
        Ok((
            Self {
                inner,
                wal,
                dir: dir.to_path_buf(),
                options,
                since_checkpoint: 0,
                checkpoints: 1,
                closed: false,
            },
            report,
        ))
    }

    /// Whether `dir` already holds a log or checkpoints (so
    /// [`resume`](DurableHandle::resume) is the right entry point). A
    /// directory whose contents cannot even be listed counts as
    /// initialized — "maybe someone's data" must never be clobbered.
    pub fn is_initialized(dir: &Path) -> bool {
        if !dir.exists() {
            return false;
        }
        match (wal::list_segments(dir), checkpoint::list_checkpoints(dir)) {
            (Ok(segments), Ok(checkpoints)) => !segments.is_empty() || !checkpoints.is_empty(),
            _ => true,
        }
    }

    /// Records logged so far (equivalently: the next record's sequence
    /// number).
    pub fn wal_records(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Checkpoints written by this handle, the genesis/covering one
    /// included.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    fn log(&mut self, record: &WalRecord) -> Result<(), ServiceError> {
        self.wal.append(record).map_err(wal_failed)?;
        self.since_checkpoint += 1;
        Ok(())
    }

    fn maybe_checkpoint(&mut self) -> Result<(), ServiceError> {
        if self.options.checkpoint_every > 0
            && self.since_checkpoint >= self.options.checkpoint_every
        {
            self.checkpoint_now()?;
        }
        Ok(())
    }

    /// Takes a checkpoint right now: quiesce, write the covering
    /// snapshot, rotate the log, compact covered segments and stale
    /// checkpoints, and announce [`Lifecycle::Checkpointed`] to
    /// subscribers. Returns the covered sequence number.
    pub fn checkpoint_now(&mut self) -> Result<u64, ServiceError> {
        let seq = self.wal.next_seq();
        let snapshot = self.inner.snapshot()?;
        checkpoint::write_checkpoint(&self.dir, seq, &snapshot, self.options.format)
            .map_err(durable_failed)?;
        self.wal.rotate().map_err(wal_failed)?;
        self.wal.compact().map_err(wal_failed)?;
        checkpoint::compact_checkpoints(&self.dir, seq).map_err(durable_failed)?;
        self.since_checkpoint = 0;
        self.checkpoints += 1;
        self.inner
            .announce_lifecycle(Lifecycle::Checkpointed { seq });
        Ok(seq)
    }
}

impl Session for DurableHandle {
    fn info(&self) -> SessionInfo {
        self.inner.info()
    }

    fn submit_worker(&mut self, worker: &Worker) -> Result<WorkerId, ServiceError> {
        self.log(&WalRecord::Submit { worker: *worker })?;
        let result = ServiceHandle::submit_worker(&mut self.inner, worker);
        self.maybe_checkpoint()?;
        result
    }

    fn post_task(&mut self, task: Task) -> Result<TaskId, ServiceError> {
        self.log(&WalRecord::Post { task, row: None })?;
        let result = ServiceHandle::post_task(&mut self.inner, task);
        self.maybe_checkpoint()?;
        result
    }

    fn post_task_with_accuracies(
        &mut self,
        task: Task,
        accuracies: &[f64],
    ) -> Result<TaskId, ServiceError> {
        self.log(&WalRecord::Post {
            task,
            row: Some(accuracies.to_vec()),
        })?;
        let result = self.inner.post_task_with_accuracies(task, accuracies);
        self.maybe_checkpoint()?;
        result
    }

    fn subscribe(&mut self) -> Result<EventStream, ServiceError> {
        self.inner.subscribe()
    }

    /// Quiesce point: everything logged so far is handed to the kernel
    /// before the drain completes, so a drained session's acknowledged
    /// operations survive a process crash — under *every*
    /// [`SyncPolicy`], including the buffered `Os` policy (whose
    /// power-loss window fsync alone would close, and which opted out
    /// of fsync by name).
    fn drain(&mut self) -> Result<(), ServiceError> {
        self.wal.handoff().map_err(wal_failed)?;
        self.inner.drain()
    }

    /// Quiesce point, like [`drain`](DurableHandle::drain): the log is
    /// handed to the kernel first, so the returned snapshot never
    /// describes state a process crash could lose.
    fn snapshot(&mut self) -> Result<ServiceSnapshot, ServiceError> {
        self.wal.handoff().map_err(wal_failed)?;
        self.inner.snapshot()
    }

    fn rebalance(&mut self) -> Result<Option<RebalanceOutcome>, ServiceError> {
        // Logged even when nothing ends up moving: "consider
        // rebalancing here" is part of the deterministic operation
        // sequence that replay must reproduce.
        self.log(&WalRecord::Rebalance)?;
        let result = ServiceHandle::rebalance(&mut self.inner);
        self.maybe_checkpoint()?;
        result
    }

    fn metrics(&mut self) -> Result<ServiceMetrics, ServiceError> {
        let mut metrics = ServiceHandle::metrics(&mut self.inner)?;
        metrics.wal_records = self.wal.next_seq();
        metrics.checkpoints = self.checkpoints;
        Ok(metrics)
    }

    /// Seals the log with a final covering checkpoint (so the next
    /// start replays nothing), fsyncs, and shuts the service down.
    fn shutdown(&mut self) -> Result<(), ServiceError> {
        if self.closed {
            return Ok(());
        }
        self.closed = true;
        let sealed = self.checkpoint_now().map(|_| ());
        let synced = self.wal.sync().map_err(wal_failed);
        let stopped = self.inner.close();
        sealed.and(synced).and(stopped)
    }

    fn announce_lifecycle(&mut self, lifecycle: Lifecycle) {
        self.inner.announce_lifecycle(lifecycle);
    }
}

impl Drop for DurableHandle {
    /// Best-effort fsync of the log tail. Deliberately *not* a
    /// shutdown: a handle dropped mid-flight (a panicking server) must
    /// leave the directory exactly as a crash would, for recovery to
    /// handle.
    fn drop(&mut self) {
        if !self.closed {
            self.wal.sync().ok();
        }
    }
}
