//! Durability for LTC sessions: a write-ahead event log, periodic
//! checkpoints, and bit-exact crash recovery.
//!
//! The engine underneath [`ServiceHandle`] is deterministic: the same
//! submission sequence always produces the same assignments, the same
//! event stream, and the same `ltc-snapshot v1` text. That determinism
//! is the whole durability story — nothing about the engine's *state*
//! has to reach disk on the hot path, only the *inputs*. This crate
//! packages that observation as three pieces:
//!
//! * [`wal`] — the `ltc-wal v1` append-only event log. Every
//!   state-changing session call (worker check-in, task post,
//!   rebalance) is appended as one NDJSON record *before* it is applied,
//!   with floats carried as bit patterns exactly like the `ltc-proto v1`
//!   wire format. A configurable [`SyncPolicy`] decides how eagerly
//!   records reach the kernel and the platter: the eager policies
//!   survive `kill -9` record by record, while the default `Os` policy
//!   buffers between the session's quiesce points (drain, snapshot,
//!   checkpoint, shutdown) and keeps the hot path syscall-free.
//! * [`checkpoint`] — periodic snapshots taken at drained quiesce
//!   points, written atomically next to the log. A checkpoint covering
//!   sequence number `S` makes every log record below `S` dead weight,
//!   so the log rotates to a fresh segment at each checkpoint and fully
//!   covered segments are deleted. Checkpoints are the engine's own
//!   `ltc-snapshot v1` text, or the compact [`binsnap`] recoding of it.
//! * [`recover`](recover()) — restores the newest readable checkpoint,
//!   truncates a torn final record if the crash left one, and replays
//!   the surviving log suffix through the ordinary session API. The
//!   result is *byte-identical* (as snapshot text) to the state an
//!   uninterrupted run would hold after the same prefix of operations.
//!
//! [`DurableHandle`] ties the pieces together behind the
//! [`Session`](ltc_core::service::Session) trait, so the TCP server and
//! the CLI wrap durability around an in-process service without either
//! knowing it is there.
//!
//! [`ServiceHandle`]: ltc_core::service::ServiceHandle

pub mod binsnap;
pub mod checkpoint;
mod recovery;
mod session;
pub mod wal;

pub use checkpoint::SnapshotFormat;
pub use recovery::{recover, Recovery};
pub use session::{DurableHandle, DurableOptions, ResumeReport, DEFAULT_CHECKPOINT_EVERY};
pub use wal::SyncPolicy;

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Everything that can go wrong while logging, checkpointing, or
/// recovering.
#[derive(Debug)]
pub enum DurableError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// A log segment or checkpoint exists but does not decode; carries
    /// the offending path and a description. Raised only for damage
    /// that recovery must *not* paper over (a torn final record is
    /// repaired silently, a corrupt interior record is not).
    Corrupt { path: PathBuf, what: String },
    /// The restored service itself rejected a replayed operation for a
    /// non-deterministic reason (runtime stopped, bad snapshot).
    Service(ltc_core::service::ServiceError),
    /// The directory holds no readable checkpoint to restore from.
    NoCheckpoint(PathBuf),
    /// [`DurableHandle::create`] refused a directory that already holds
    /// a log; resume it instead of silently clobbering history.
    AlreadyInitialized(PathBuf),
    /// [`DurableHandle::resume`] (or [`recover`](recover())) was
    /// pointed at a directory with no log in it.
    NotInitialized(PathBuf),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durability i/o error: {e}"),
            DurableError::Corrupt { path, what } => {
                write!(f, "corrupt durable state in {}: {what}", path.display())
            }
            DurableError::Service(e) => write!(f, "replay rejected: {e}"),
            DurableError::NoCheckpoint(dir) => {
                write!(f, "no readable checkpoint in {}", dir.display())
            }
            DurableError::AlreadyInitialized(dir) => write!(
                f,
                "{} already holds a write-ahead log; resume it instead of creating over it",
                dir.display()
            ),
            DurableError::NotInitialized(dir) => {
                write!(f, "{} holds no write-ahead log", dir.display())
            }
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::Service(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<ltc_core::service::ServiceError> for DurableError {
    fn from(e: ltc_core::service::ServiceError) -> Self {
        DurableError::Service(e)
    }
}
