//! Crash recovery: checkpoint restore plus log-suffix replay.
//!
//! Recovery leans entirely on determinism. The engine's state after a
//! sequence of operations is a pure function of that sequence, so
//! restoring the newest checkpoint (state after operations `< S`) and
//! re-issuing the logged operations `≥ S` through the ordinary session
//! API reproduces — byte for byte, as snapshot text — the state an
//! uninterrupted process would hold. Operations the service rejected
//! the first time are rejected identically on replay (the rejection is
//! itself deterministic), so the log does not even need to record
//! outcomes.

use crate::wal::{self, WalRecord};
use crate::{checkpoint, DurableError};
use ltc_core::service::{ServiceError, ServiceHandle};
use std::path::Path;

/// What [`recover`] rebuilt, with enough accounting for an operator
/// (or the `ltc recover` summary line) to see what happened.
#[derive(Debug)]
pub struct Recovery {
    /// The restored, fully replayed, drained session.
    pub handle: ServiceHandle,
    /// Sequence number covered by the checkpoint that was restored.
    pub checkpoint_seq: u64,
    /// Newer checkpoint files that existed but did not decode and were
    /// skipped in favor of an older one.
    pub checkpoints_skipped: u64,
    /// Log records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Bytes of torn final record truncated off the log, if the crash
    /// left one mid-write.
    pub truncated_bytes: u64,
    /// The sequence number the next logged operation will carry.
    pub next_seq: u64,
    /// Index a resuming writer's next segment should use.
    pub next_segment: u64,
}

/// Replays one logged operation. A [`ServiceError::Engine`] rejection
/// is the operation deterministically failing exactly as it originally
/// did — replay continues; anything else means the *service* is broken
/// and recovery must stop.
fn replay(handle: &mut ServiceHandle, record: &WalRecord) -> Result<(), DurableError> {
    let outcome = match record {
        WalRecord::Submit { worker } => handle.submit_worker(worker).map(|_| ()),
        WalRecord::Post { task, row: None } => handle.post_task(*task).map(|_| ()),
        WalRecord::Post {
            task,
            row: Some(row),
        } => handle.post_task_with_accuracies(*task, row).map(|_| ()),
        WalRecord::Rebalance => handle.rebalance().map(|_| ()),
    };
    match outcome {
        Ok(()) | Err(ServiceError::Engine(_)) => Ok(()),
        Err(e) => Err(DurableError::Service(e)),
    }
}

/// Restores the newest readable checkpoint in `dir`, repairs a torn
/// final log record if the crash left one, replays the surviving log
/// suffix, and drains. The returned session is byte-identical (as
/// snapshot text) to an uninterrupted run over the same
/// [`next_seq`](Recovery::next_seq)-operation prefix.
///
/// Recovery is idempotent: it mutates the directory only to truncate a
/// torn tail, so running it twice — or crashing *during* it and running
/// it again — lands in the same state.
pub fn recover(dir: &Path) -> Result<Recovery, DurableError> {
    let (checkpoint_seq, snapshot, checkpoints_skipped) = checkpoint::load_latest(dir)?
        .ok_or_else(|| match wal::list_segments(dir) {
            Ok(segments) if !segments.is_empty() => DurableError::NoCheckpoint(dir.to_path_buf()),
            _ => DurableError::NotInitialized(dir.to_path_buf()),
        })?;

    // A directory with checkpoints but no log at all is a legitimate
    // crash state, not corruption: creation writes the genesis
    // checkpoint before segment 0, and repairing a torn-header-only
    // log deletes its final (sole) segment. Either way the checkpoint
    // alone fixes the position and a fresh segment 0 is safe — every
    // lower-numbered segment was compacted away, so no index collides.
    let mut scan = match wal::scan(dir) {
        Ok(scan) => scan,
        Err(DurableError::NotInitialized(_)) => wal::LogScan {
            records: Vec::new(),
            next_seq: checkpoint_seq,
            segments: Vec::new(),
            next_segment: 0,
            torn: None,
        },
        Err(e) => return Err(e),
    };
    let truncated_bytes = match scan.torn.take() {
        Some(tail) => {
            wal::repair(&tail)?;
            tail.torn_bytes
        }
        None => 0,
    };

    // The checkpoint must sit inside the log's sequence window: old
    // enough that no surviving record predates compaction's promise,
    // new enough that no record between checkpoint and log start was
    // deleted. When the only segment's *header* was torn away (a crash
    // right at rotation), no readable segment remains and the log's
    // position is exactly what the checkpoint says.
    let (log_start, next_seq) = match scan.segments.first() {
        Some(first) => (first.base_seq, scan.next_seq),
        None => (checkpoint_seq, checkpoint_seq),
    };
    if checkpoint_seq < log_start || checkpoint_seq > next_seq {
        return Err(DurableError::Corrupt {
            path: dir.to_path_buf(),
            what: format!(
                "checkpoint covers seq {checkpoint_seq} but the log spans {log_start}..{next_seq}"
            ),
        });
    }

    let mut handle = ServiceHandle::restore(snapshot)?;
    let mut replayed = 0;
    for (seq, record) in &scan.records {
        if *seq < checkpoint_seq {
            continue;
        }
        replay(&mut handle, record)?;
        replayed += 1;
    }
    handle.drain()?;

    Ok(Recovery {
        handle,
        checkpoint_seq,
        checkpoints_skipped,
        replayed,
        truncated_bytes,
        next_seq,
        next_segment: scan.next_segment,
    })
}
