//! Checkpoints: whole-state snapshots written next to the log.
//!
//! A checkpoint file `checkpoint-<seq>.ltc` (text) or `.ltcb`
//! ([`binsnap`] binary) holds the service state after
//! every operation below sequence number `seq` — so recovery restores
//! it and replays only the log records stamped `seq` and above. Files
//! are written to a temporary name and renamed into place, so a crash
//! mid-checkpoint leaves at most a stray `*.tmp` that the loader
//! ignores; the previous checkpoint stays intact and recovery simply
//! replays a longer suffix.
//!
//! [`load_latest`] walks the checkpoints newest-first and takes the
//! first one that decodes, skipping damaged ones — a half-written or
//! bit-rotted newest checkpoint costs replay time, never correctness.

use crate::{binsnap, wal, DurableError};
use ltc_core::service::ServiceSnapshot;
use ltc_core::snapshot::{read_snapshot, write_snapshot, SNAPSHOT_HEADER};
use std::fs::{self, File};
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};

/// On-disk encoding of a checkpoint. Either decodes to the same
/// [`ServiceSnapshot`]; text is the golden, diffable, debuggable form,
/// binary the compact one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotFormat {
    /// `ltc-snapshot v1` text (`.ltc`).
    #[default]
    Text,
    /// `ltc-snapshot-bin v1` (`.ltcb`): the lossless token-level
    /// recoding of the text form.
    Binary,
}

/// The path a checkpoint covering `seq` is written to. The sequence is
/// zero-padded so lexicographic directory order is sequence order.
pub fn checkpoint_path(dir: &Path, seq: u64, format: SnapshotFormat) -> PathBuf {
    let ext = match format {
        SnapshotFormat::Text => "ltc",
        SnapshotFormat::Binary => "ltcb",
    };
    dir.join(format!("checkpoint-{seq:020}.{ext}"))
}

/// Writes a checkpoint atomically (temp file, fsync, rename, directory
/// fsync) and returns its final path.
pub fn write_checkpoint(
    dir: &Path,
    seq: u64,
    snapshot: &ServiceSnapshot,
    format: SnapshotFormat,
) -> Result<PathBuf, DurableError> {
    let mut text = Vec::new();
    write_snapshot(snapshot, &mut text)?;
    let bytes = match format {
        SnapshotFormat::Text => text,
        SnapshotFormat::Binary => {
            let text = String::from_utf8(text).expect("snapshot text is UTF-8");
            let bin = binsnap::encode(&text).map_err(|what| DurableError::Corrupt {
                path: dir.to_path_buf(),
                what: format!("snapshot text not binsnap-encodable: {what}"),
            })?;
            // The whole point of the token-level codec is that
            // losslessness is checkable, so check it: a checkpoint that
            // would not decode back to its own text must never reach
            // disk.
            debug_assert_eq!(binsnap::decode(&bin).as_deref(), Ok(text.as_str()));
            bin
        }
    };
    let path = checkpoint_path(dir, seq, format);
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, &bytes)?;
    File::open(&tmp)?.sync_all()?;
    fs::rename(&tmp, &path)?;
    wal::sync_dir(dir);
    Ok(path)
}

/// Lists `(seq, path)` for every checkpoint file in the directory, in
/// ascending sequence order. Purely name-based; contents are validated
/// by [`load_latest`].
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurableError> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| {
                rest.strip_suffix(".ltc")
                    .or_else(|| rest.strip_suffix(".ltcb"))
            })
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            found.push((seq, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Loads one checkpoint file, auto-detecting text vs binary by its
/// header line (the extension is advisory). The read is capped at
/// [`wal::MAX_RECORD`] × 64 bytes so a garbage file cannot balloon
/// memory — far above any real snapshot, far below pathology.
pub fn load_checkpoint(path: &Path) -> Result<ServiceSnapshot, DurableError> {
    const MAX_CHECKPOINT: u64 = wal::MAX_RECORD as u64 * 64;
    let mut bytes = Vec::new();
    File::open(path)?
        .take(MAX_CHECKPOINT + 1)
        .read_to_end(&mut bytes)?;
    if bytes.len() as u64 > MAX_CHECKPOINT {
        return Err(DurableError::Corrupt {
            path: path.to_path_buf(),
            what: format!("checkpoint exceeds the {MAX_CHECKPOINT}-byte cap"),
        });
    }
    let corrupt = |what: String| DurableError::Corrupt {
        path: path.to_path_buf(),
        what,
    };
    let text: String;
    let text = if bytes.starts_with(binsnap::BINSNAP_HEADER.as_bytes()) {
        text = binsnap::decode(&bytes).map_err(corrupt)?;
        text.as_str()
    } else {
        std::str::from_utf8(&bytes).map_err(|_| corrupt("checkpoint is not UTF-8".into()))?
    };
    if !text.starts_with(SNAPSHOT_HEADER) {
        return Err(corrupt(format!(
            "checkpoint does not open with \"{SNAPSHOT_HEADER}\""
        )));
    }
    read_snapshot(BufReader::new(text.as_bytes()))
        .map_err(|e| corrupt(format!("undecodable snapshot: {e}")))
}

/// Restores the newest checkpoint that actually decodes, returning its
/// covered sequence number, its snapshot, and how many newer-but-broken
/// checkpoints were skipped on the way down. `Ok(None)` means the
/// directory holds no readable checkpoint at all.
#[allow(clippy::type_complexity)]
pub fn load_latest(dir: &Path) -> Result<Option<(u64, ServiceSnapshot, u64)>, DurableError> {
    let mut skipped = 0;
    for (seq, path) in list_checkpoints(dir)?.into_iter().rev() {
        match load_checkpoint(&path) {
            Ok(snapshot) => return Ok(Some((seq, snapshot, skipped))),
            Err(DurableError::Io(e)) => return Err(DurableError::Io(e)),
            Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

/// Deletes every checkpoint strictly older than `keep_seq`. Called
/// after a new checkpoint lands; the newest stays, history goes.
pub fn compact_checkpoints(dir: &Path, keep_seq: u64) -> Result<u64, DurableError> {
    let mut removed = 0;
    for (seq, path) in list_checkpoints(dir)? {
        if seq < keep_seq {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    if removed > 0 {
        wal::sync_dir(dir);
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_core::model::ProblemParams;
    use ltc_core::service::ServiceBuilder;
    use ltc_spatial::{BoundingBox, Point};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ltc-ckpt-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_snapshot() -> ServiceSnapshot {
        let params = ProblemParams::builder()
            .epsilon(0.3)
            .capacity(1)
            .build()
            .unwrap();
        let region = BoundingBox::new(Point::ORIGIN, Point::new(50.0, 50.0));
        let mut handle = ServiceBuilder::new(params, region).start().unwrap();
        handle
            .post_task(ltc_core::model::Task::new(Point::new(10.0, 10.0)))
            .unwrap();
        let snap = handle.snapshot().unwrap();
        handle.close().unwrap();
        snap
    }

    fn text_of(snap: &ServiceSnapshot) -> String {
        let mut out = Vec::new();
        ltc_core::snapshot::write_snapshot(snap, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn both_formats_round_trip_and_newest_valid_wins() {
        let dir = temp_dir("roundtrip");
        let snap = sample_snapshot();
        write_checkpoint(&dir, 0, &snap, SnapshotFormat::Text).unwrap();
        write_checkpoint(&dir, 7, &snap, SnapshotFormat::Binary).unwrap();
        // A newer checkpoint that is pure garbage must be skipped.
        fs::write(checkpoint_path(&dir, 9, SnapshotFormat::Text), "garbage").unwrap();

        let (seq, loaded, skipped) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(seq, 7);
        assert_eq!(skipped, 1);
        assert_eq!(text_of(&loaded), text_of(&snap));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_keeps_the_covering_checkpoint() {
        let dir = temp_dir("compact");
        let snap = sample_snapshot();
        for seq in [0, 3, 9] {
            write_checkpoint(&dir, seq, &snap, SnapshotFormat::Text).unwrap();
        }
        assert_eq!(compact_checkpoints(&dir, 9).unwrap(), 2);
        let left = list_checkpoints(&dir).unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].0, 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_stray_tmp_file_is_invisible_to_the_loader() {
        let dir = temp_dir("tmp");
        let snap = sample_snapshot();
        write_checkpoint(&dir, 4, &snap, SnapshotFormat::Binary).unwrap();
        fs::write(
            dir.join("checkpoint-00000000000000000009.tmp"),
            "half-written",
        )
        .unwrap();
        let (seq, _, skipped) = load_latest(&dir).unwrap().unwrap();
        assert_eq!((seq, skipped), (4, 0));
        fs::remove_dir_all(&dir).unwrap();
    }
}
