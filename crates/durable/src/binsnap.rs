//! `ltc-snapshot-bin v1`: a compact, lossless binary recoding of the
//! `ltc-snapshot v1` text format.
//!
//! The text snapshot (see `docs/SNAPSHOT_FORMAT.md`) is the golden
//! form — line-oriented, single-space-separated tokens, every float a
//! 16-digit hex bit pattern. Rather than invent a second field-level
//! schema that would have to track every future snapshot change, this
//! codec works at the *token* level: [`encode`] classifies each token
//! of the text and emits a tighter encoding of it, and [`decode`]
//! reproduces the original text **byte for byte**, which the ordinary
//! text reader then parses. Losslessness is therefore a testable
//! equation (`decode(encode(t)) == t`) rather than a schema-matching
//! argument, and the binary form inherits every compatibility rule of
//! the text form for free.
//!
//! ## Layout
//!
//! A document is the ASCII header line `ltc-snapshot-bin v1\n` followed
//! by a byte-code stream, terminated by `0xFF`:
//!
//! | opcode        | operands                          | token          |
//! |---------------|-----------------------------------|----------------|
//! | `0x00`        | —                                 | end of line    |
//! | `0x01`        | LEB128 `u64`                      | decimal integer|
//! | `0x02`        | 8 bytes, little-endian            | 16-hex-digit float bit pattern |
//! | `0x03`        | LEB128 bit count, packed bits     | `0`/`1` bitstring (completion flags) |
//! | `0x04`        | LEB128 byte count, UTF-8 bytes    | verbatim token (fallback) |
//! | `0x10`–`0x2F` | —                                 | keyword (see [`KEYWORDS`]) |
//! | `0xFF`        | —                                 | end of document|
//!
//! Bitstrings pack their `0`/`1` characters most-significant-bit first
//! within each byte, in token order. Trailing bytes after `0xFF`, a
//! missing `0xFF`, an overlong LEB128, or a length operand that runs
//! past the input are all errors — the reader never allocates more than
//! the input itself justifies, so hostile input cannot balloon memory.
//!
//! The keyword table is part of the format: the 32 tokens the text
//! grammar uses today, in alphabetical order. New text-side tokens
//! simply fall back to `0x04` until a `v2` assigns them opcodes, so the
//! codec never lags the text format.

/// Header line of a binary snapshot, without the trailing newline.
pub const BINSNAP_HEADER: &str = "ltc-snapshot-bin v1";

/// The keyword table: opcode `0x10 + i` encodes `KEYWORDS[i]`. Fixed
/// alphabetical order; append-only across versions of this format.
pub const KEYWORDS: [&str; 32] = [
    "a",
    "aam",
    "aam-lgf",
    "aam-lrf",
    "accuracy",
    "assignments",
    "clamped",
    "completed",
    "config",
    "end",
    "fixed",
    "grow",
    "hoeffding",
    "index",
    "laf",
    "ltc-snapshot",
    "noindex",
    "params",
    "quality",
    "random",
    "rebalance",
    "region",
    "rng",
    "shard",
    "sigmoid",
    "stripes",
    "table",
    "taskmap",
    "tasks",
    "unrestricted",
    "v1",
    "within",
];

const OP_EOL: u8 = 0x00;
const OP_INT: u8 = 0x01;
const OP_F64: u8 = 0x02;
const OP_BITS: u8 = 0x03;
const OP_STR: u8 = 0x04;
const OP_KEYWORD: u8 = 0x10;
const OP_END: u8 = 0xFF;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn keyword_opcode(token: &str) -> Option<u8> {
    KEYWORDS
        .iter()
        .position(|k| *k == token)
        .map(|i| OP_KEYWORD + i as u8)
}

fn is_canonical_decimal(token: &str) -> Option<u64> {
    if token.is_empty() || !token.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let v: u64 = token.parse().ok()?;
    // Leading zeros (or overflow) would not re-format to the same
    // token, so they fall through to the next classification.
    (v.to_string() == token).then_some(v)
}

fn is_hex_f64(token: &str) -> Option<u64> {
    if token.len() != 16
        || !token
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
    {
        return None;
    }
    u64::from_str_radix(token, 16).ok()
}

fn is_bitstring(token: &str) -> bool {
    // The empty token is a zero-bit bitstring: the text writer really
    // does produce one (`completed ` with a trailing space, for a
    // shard holding no tasks) and it must survive the round trip.
    token.bytes().all(|b| b == b'0' || b == b'1')
}

/// Encodes snapshot text into its binary form. The input must be what
/// the text writer produces — `\n`-terminated lines of single-space
/// separated tokens; anything else (a missing final newline, embedded
/// whitespace) is rejected rather than silently normalized, because
/// normalizing would break the `decode(encode(t)) == t` contract. An
/// *empty* token (a taskless shard's `completed ` line ends with one)
/// encodes as a zero-bit bitstring.
pub fn encode(text: &str) -> Result<Vec<u8>, String> {
    let body = text
        .strip_suffix('\n')
        .ok_or("snapshot text does not end with a newline")?;
    let mut out = Vec::with_capacity(BINSNAP_HEADER.len() + 1 + text.len() / 2);
    out.extend_from_slice(BINSNAP_HEADER.as_bytes());
    out.push(b'\n');
    for line in body.split('\n') {
        if !line.is_empty() {
            for token in line.split(' ') {
                encode_token(&mut out, token)?;
            }
        }
        out.push(OP_EOL);
    }
    out.push(OP_END);
    Ok(out)
}

fn encode_token(out: &mut Vec<u8>, token: &str) -> Result<(), String> {
    if let Some(op) = keyword_opcode(token) {
        out.push(op);
    } else if let Some(v) = is_canonical_decimal(token) {
        out.push(OP_INT);
        push_varint(out, v);
    } else if let Some(bits) = is_hex_f64(token) {
        out.push(OP_F64);
        out.extend_from_slice(&bits.to_le_bytes());
    } else if is_bitstring(token) {
        out.push(OP_BITS);
        push_varint(out, token.len() as u64);
        let mut byte = 0u8;
        for (i, b) in token.bytes().enumerate() {
            byte = (byte << 1) | (b - b'0');
            if i % 8 == 7 {
                out.push(byte);
                byte = 0;
            }
        }
        let tail = token.len() % 8;
        if tail != 0 {
            out.push(byte << (8 - tail));
        }
    } else if token.contains(['\n', ' ']) {
        return Err("token contains whitespace".into());
    } else {
        out.push(OP_STR);
        push_varint(out, token.len() as u64);
        out.extend_from_slice(token.as_bytes());
    }
    Ok(())
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8, String> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or("binary snapshot ends mid-stream")?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or("length operand runs past the end of the input")?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            let bits = (byte & 0x7F) as u64;
            if shift == 63 && bits > 1 {
                return Err("varint overflows u64".into());
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err("varint runs past 10 bytes".into())
    }
}

/// Decodes a binary snapshot back to the exact text it was encoded
/// from. Structural damage anywhere — a bad header, an unknown opcode,
/// truncation, trailing garbage — is an error; there is no partial
/// decode.
pub fn decode(bytes: &[u8]) -> Result<String, String> {
    let header_len = BINSNAP_HEADER.len() + 1;
    let well_headed = bytes.len() >= header_len
        && &bytes[..header_len - 1] == BINSNAP_HEADER.as_bytes()
        && bytes[header_len - 1] == b'\n';
    if !well_headed {
        return Err(format!("input does not start with \"{BINSNAP_HEADER}\""));
    }
    let mut r = Reader {
        bytes,
        pos: header_len,
    };
    let mut text = String::new();
    let mut at_line_start = true;
    loop {
        let op = r.byte()?;
        if op != OP_EOL && op != OP_END && !at_line_start {
            text.push(' ');
        }
        match op {
            OP_EOL => {
                text.push('\n');
                at_line_start = true;
                continue;
            }
            OP_END => {
                if r.pos != bytes.len() {
                    return Err("trailing bytes after the end-of-document marker".into());
                }
                return Ok(text);
            }
            OP_INT => {
                let v = r.varint()?;
                text.push_str(&v.to_string());
            }
            OP_F64 => {
                let raw = r.take(8)?;
                let bits = u64::from_le_bytes(raw.try_into().expect("8-byte slice"));
                text.push_str(&format!("{bits:016x}"));
            }
            OP_BITS => {
                let n_bits = r.varint()?;
                let n_bits = usize::try_from(n_bits).map_err(|_| "bitstring too long")?;
                let packed = r.take(n_bits.div_ceil(8))?;
                for i in 0..n_bits {
                    let bit = packed[i / 8] >> (7 - i % 8) & 1;
                    text.push(if bit == 1 { '1' } else { '0' });
                }
            }
            OP_STR => {
                let len = r.varint()?;
                let len = usize::try_from(len).map_err(|_| "token too long")?;
                let raw = r.take(len)?;
                let token = std::str::from_utf8(raw).map_err(|_| "verbatim token is not UTF-8")?;
                text.push_str(token);
            }
            op if (OP_KEYWORD..OP_KEYWORD + KEYWORDS.len() as u8).contains(&op) => {
                text.push_str(KEYWORDS[(op - OP_KEYWORD) as usize]);
            }
            op => return Err(format!("unknown opcode 0x{op:02x}")),
        }
        at_line_start = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_core::model::{ProblemParams, Task, Worker};
    use ltc_core::service::ServiceBuilder;
    use ltc_core::snapshot::write_snapshot;
    use ltc_spatial::{BoundingBox, Point};
    use std::num::NonZeroUsize;

    fn live_snapshot_text() -> String {
        let params = ProblemParams::builder()
            .epsilon(0.3)
            .capacity(2)
            .build()
            .unwrap();
        let region = BoundingBox::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let mut handle = ServiceBuilder::new(params, region)
            .shards(NonZeroUsize::new(2).unwrap())
            .start()
            .unwrap();
        for i in 0..6 {
            handle
                .post_task(Task::new(Point::new(10.0 + 13.0 * i as f64, 40.0)))
                .unwrap();
        }
        for i in 0..4 {
            handle
                .submit_worker(&Worker::new(Point::new(12.0 + 20.0 * i as f64, 41.0), 0.9))
                .unwrap();
        }
        let snap = handle.snapshot().unwrap();
        handle.close().unwrap();
        let mut text = Vec::new();
        write_snapshot(&snap, &mut text).unwrap();
        String::from_utf8(text).unwrap()
    }

    #[test]
    fn a_live_snapshot_round_trips_byte_exactly_and_shrinks() {
        let text = live_snapshot_text();
        let bin = encode(&text).unwrap();
        assert_eq!(decode(&bin).unwrap(), text);
        assert!(
            bin.len() < text.len(),
            "binary ({}) should be smaller than text ({})",
            bin.len(),
            text.len()
        );
    }

    #[test]
    fn token_classification_edge_cases_round_trip() {
        // Leading-zero binary strings, 16-char bitstrings (also valid
        // hex), huge integers, NaN bit patterns, unknown tokens.
        let text = "completed 0110\ncompleted 0101010101010101\n\
                    18446744073709551615 18446744073709551616\n\
                    7ff8000000000000 ffffffffffffffff\n\
                    some-unknown-token v2\n";
        let bin = encode(text).unwrap();
        assert_eq!(decode(&bin).unwrap(), text);
    }

    #[test]
    fn empty_lines_and_single_tokens_round_trip() {
        let text = "end\n\ntasks\n";
        let bin = encode(text).unwrap();
        assert_eq!(decode(&bin).unwrap(), text);
    }

    #[test]
    fn malformed_text_is_rejected_not_normalized() {
        assert!(encode("no trailing newline").is_err());
    }

    #[test]
    fn empty_tokens_round_trip_as_zero_bit_bitstrings() {
        // The text writer emits a real empty token: a taskless shard's
        // `completed ` line ends in one. Doubled and lone spaces are
        // the same construct and must survive byte-exactly too.
        let text = "completed \ndouble  space\n \n";
        let bin = encode(text).unwrap();
        assert_eq!(decode(&bin).unwrap(), text);
    }

    #[test]
    fn every_truncation_of_a_document_is_rejected() {
        let bin = encode(&live_snapshot_text()).unwrap();
        for cut in 0..bin.len() {
            assert!(
                decode(&bin[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn hostile_length_operands_cannot_balloon_memory() {
        let mut bin = Vec::from(format!("{BINSNAP_HEADER}\n").as_bytes());
        bin.push(super::OP_STR);
        // Claim a 2^60-byte token with 2 bytes of input behind it.
        bin.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10]);
        bin.extend_from_slice(b"xx");
        assert!(decode(&bin).is_err());

        let mut bin = Vec::from(format!("{BINSNAP_HEADER}\n").as_bytes());
        bin.push(super::OP_BITS);
        bin.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F]);
        assert!(decode(&bin).is_err());
    }

    #[test]
    fn trailing_garbage_and_unknown_opcodes_are_rejected() {
        let mut bin = encode("end\n").unwrap();
        bin.push(0x00);
        assert!(decode(&bin).is_err());

        let mut bin = Vec::from(format!("{BINSNAP_HEADER}\n").as_bytes());
        bin.push(0x05);
        bin.push(super::OP_END);
        assert!(decode(&bin).is_err());
    }
}
