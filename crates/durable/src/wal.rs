//! The `ltc-wal v2` write-ahead event log.
//!
//! A log is a directory of numbered *segments* (`wal-00000000.log`,
//! `wal-00000001.log`, …). Each segment is NDJSON — one record per
//! line, `\n`-delimited, at most [`MAX_RECORD`] bytes — opening with a
//! header line that names the format and anchors the segment in the
//! global sequence:
//!
//! ```text
//! {"wal":"ltc-wal","v":2,"segment":3,"base_seq":8192}
//! ```
//!
//! Every state-changing session operation becomes one record, stamped
//! with the next sequence number and sealed with a CRC-32 of its own
//! bytes. Floats cross into the log as 16-digit hex bit patterns — the
//! same discipline as the `ltc-proto` wire format, reusing its codec —
//! so replay is bit-exact:
//!
//! ```text
//! {"seq":0,"op":"submit","x":"4049000000000000","y":"4049000000000000","acc":"3feccccccccccccd","crc":"c4763cc0"}
//! {"seq":1,"op":"post","x":"4024000000000000","y":"4034000000000000","crc":"f50b04f7"}
//! {"seq":2,"op":"rebalance","crc":"9e37983e"}
//! ```
//!
//! The `crc` member is always the record's final member: it covers the
//! line with the member itself spliced out (everything before
//! `,"crc":…` plus the closing `}`), so verification needs no
//! re-encoding. Segments headed `"v":1` — logs written before the
//! checksum existed — still load; their records simply carry no `crc`
//! and get no verification beyond the sequence check. Under a `v2`
//! header a missing or mismatched `crc` on an *interior* record is
//! corruption (bit rot that JSON parsing alone would miss — a flipped
//! hex digit still parses, but replays different bits); on the final
//! record of the final segment it is a torn tail, repaired by
//! truncation like any other tear.
//!
//! Sequence numbers are contiguous across segments: segment `n + 1`
//! begins at exactly the sequence after segment `n`'s last record.
//! Segments rotate at checkpoints, so "every segment below the current
//! one is covered by the newest checkpoint" holds by construction and
//! compaction is plain file deletion.
//!
//! ## Crash anatomy
//!
//! [`WalWriter::append`] encodes each record *before* the operation is
//! applied; how far it travels before `append` returns is the
//! [`SyncPolicy`]'s call. `Always` and `Every(n)` hand every record to
//! the kernel synchronously, so a process crash (`kill -9`) loses
//! nothing acknowledged; `Os` buffers in user space and reaches the
//! kernel at the session's quiesce points (drain, snapshot,
//! checkpoint, shutdown), trading a bounded loss window between
//! quiesce points for a syscall-free hot path. Host power loss can
//! additionally lose the unfsynced tail under any policy, and either
//! way the log ends in a clean prefix plus at most one torn final
//! record. [`scan`] detects that torn tail — a final line with no
//! terminating newline, or one that no longer parses, in the *last*
//! segment only — and reports it for truncation; the same damage
//! anywhere else is corruption and refuses to load. The tear can even
//! land inside a just-rotated segment's *header* (rotation writes the
//! header before fsyncing it): such a segment never durably began, so
//! it is reported as a tear with `valid_len == 0` and repaired by
//! deleting the file.

use crate::DurableError;
use ltc_core::model::{Task, Worker};
use ltc_proto::json::{self, Json};
use ltc_proto::wire;
use ltc_spatial::Point;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// Format name in every segment header.
pub const WAL_NAME: &str = "ltc-wal";

/// Format version written in every new segment header (`v2`: every
/// record seals itself with a [`crc32`] member).
pub const WAL_VERSION: u64 = 2;

/// The checksum-less original format. Still readable: a `v1`-headed
/// segment's records carry no `crc` and get none checked.
pub const WAL_VERSION_V1: u64 = 1;

/// Upper bound on one log line, delimiter included — the same cap as an
/// `ltc-proto v1` frame, enforced *while reading* so a hostile or
/// garbage segment cannot balloon memory.
pub const MAX_RECORD: usize = 1 << 26;

/// How eagerly appended records are forced toward stable storage. Two
/// thresholds matter: reaching the *kernel* (survives a process crash,
/// `kill -9` included) and reaching the *platter* via `fsync` (survives
/// host power loss).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Kernel handoff and `fsync` after every record. Maximum
    /// durability, maximum cost.
    Always,
    /// Kernel handoff after every record, `fsync` after every `n`
    /// (`n ≥ 1`; `0` behaves as `1`). A process crash loses nothing; a
    /// power cut loses at most the last `n` records.
    Every(u64),
    /// Buffer in user space and let the session's own quiesce points —
    /// [`sync`](WalWriter::sync), called by drain, checkpoint, and
    /// shutdown — push to the kernel (a full buffer flushes early).
    /// The cheapest policy: the hot path makes no syscall at all. A
    /// crash between quiesce points can lose the buffered tail; every
    /// record acknowledged *and drained* is still crash-safe.
    Os,
}

/// One logged session operation. The record is written *before* the
/// operation is applied; replay re-issues it through the ordinary
/// session API, where a deterministic rejection replays as the same
/// rejection.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A worker check-in ([`Session::submit_worker`]).
    ///
    /// [`Session::submit_worker`]: ltc_core::service::Session::submit_worker
    Submit {
        /// The checked-in worker.
        worker: Worker,
    },
    /// A task post, with its accuracy row when the caller supplied one
    /// ([`Session::post_task`] / [`post_task_with_accuracies`]).
    ///
    /// [`Session::post_task`]: ltc_core::service::Session::post_task
    /// [`post_task_with_accuracies`]: ltc_core::service::Session::post_task_with_accuracies
    Post {
        /// The posted task.
        task: Task,
        /// The `Acc(w, t)` row for table-model sessions.
        row: Option<Vec<f64>>,
    },
    /// A shard-stripe rebalance ([`Session::rebalance`]). Logged even
    /// when nothing moves: the decision to *consider* moving is part of
    /// the deterministic operation sequence.
    ///
    /// [`Session::rebalance`]: ltc_core::service::Session::rebalance
    Rebalance,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.log"))
}

/// The reflected CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) lookup
/// table, built at compile time — the offline build has no checksum
/// crate, and 256 entries buy byte-at-a-time throughput on the append
/// hot path.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = crc;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// The CRC-32 (IEEE) of `bytes` — what a `v2` record's `crc` member
/// stores, computed over the record line with the member itself
/// spliced out.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(!0, bytes)
}

/// Byte length of the `,"crc":"xxxxxxxx"}` suffix closing every `v2`
/// record line.
const CRC_SUFFIX_LEN: usize = 18;

/// Seals an encoded record (a complete `{…}` line) with its `crc`
/// member: pops the closing brace, appends `,"crc":"<8 hex>"}` where
/// the checksum covers the original line bytes.
fn push_record_crc(out: &mut String, body_start: usize) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let crc = crc32(&out.as_bytes()[body_start..]);
    debug_assert_eq!(out.as_bytes().last(), Some(&b'}'));
    out.pop();
    out.push_str(",\"crc\":\"");
    for i in 0..8 {
        out.push(HEX[((crc >> (28 - 4 * i)) & 0xF) as usize] as char);
    }
    out.push_str("\"}");
}

/// Checks a `v2` record line's `crc` seal without decoding it. The
/// member is always the line's final member, so the covered bytes are
/// everything before the suffix plus the closing brace.
fn verify_record_crc(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    if bytes.len() < CRC_SUFFIX_LEN {
        return Err("record is missing its \"crc\" seal".into());
    }
    let (covered, suffix) = bytes.split_at(bytes.len() - CRC_SUFFIX_LEN);
    if !suffix.starts_with(b",\"crc\":\"") || !suffix.ends_with(b"\"}") {
        return Err("record is missing its \"crc\" seal".into());
    }
    let stored = std::str::from_utf8(&suffix[8..16])
        .ok()
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or("record carries an unparsable \"crc\"")?;
    let actual = !crc32_update(crc32_update(!0, covered), b"}");
    if stored != actual {
        return Err(format!(
            "crc mismatch: record stores {stored:08x}, its bytes hash to {actual:08x}"
        ));
    }
    Ok(())
}

fn header_line(segment: u64, base_seq: u64) -> String {
    format!("{{\"wal\":\"{WAL_NAME}\",\"v\":{WAL_VERSION},\"segment\":{segment},\"base_seq\":{base_seq}}}")
}

/// Encodes one record as its NDJSON line, without the trailing `\n`.
pub fn encode_record(seq: u64, record: &WalRecord) -> String {
    let mut out = String::with_capacity(128);
    encode_record_into(&mut out, seq, record);
    out
}

/// Appends a decimal `u64` without going through the `fmt` machinery —
/// the log's append path runs once per submission and is benchmarked
/// against the unlogged service, so every nanosecond here is visible.
fn push_decimal(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Appends an `f64`'s bit pattern as 16 lowercase hex digits — the
/// same discipline as `wire::hex`, minus the allocation.
fn push_hex_bits(out: &mut String, v: f64) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let bits = v.to_bits();
    let mut buf = [0u8; 16];
    for (i, digit) in buf.iter_mut().enumerate() {
        *digit = HEX[((bits >> (60 - 4 * i)) & 0xF) as usize];
    }
    out.push_str(std::str::from_utf8(&buf).expect("hex digits are ASCII"));
}

/// [`encode_record`] into a caller-owned buffer — the hot-path form
/// ([`WalWriter::append`] reuses one buffer so steady-state logging
/// allocates nothing).
fn encode_record_into(out: &mut String, seq: u64, record: &WalRecord) {
    let body_start = out.len();
    out.push_str("{\"seq\":");
    push_decimal(out, seq);
    match record {
        WalRecord::Submit { worker } => {
            out.push_str(",\"op\":\"submit\",\"x\":\"");
            push_hex_bits(out, worker.loc.x);
            out.push_str("\",\"y\":\"");
            push_hex_bits(out, worker.loc.y);
            out.push_str("\",\"acc\":\"");
            push_hex_bits(out, worker.accuracy);
            out.push_str("\"}");
        }
        WalRecord::Post { task, row } => {
            out.push_str(",\"op\":\"post\",\"x\":\"");
            push_hex_bits(out, task.loc.x);
            out.push_str("\",\"y\":\"");
            push_hex_bits(out, task.loc.y);
            out.push('"');
            if let Some(row) = row {
                out.push_str(",\"row\":[");
                for (i, acc) in row.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    push_hex_bits(out, *acc);
                    out.push('"');
                }
                out.push(']');
            }
            out.push('}');
        }
        WalRecord::Rebalance => {
            out.push_str(",\"op\":\"rebalance\"}");
        }
    }
    push_record_crc(out, body_start);
}

/// Decodes one NDJSON record line into its sequence number and
/// operation. Unknown `op` values are an error: a record the reader
/// cannot replay is a record it must not skip.
pub fn decode_record(line: &str) -> Result<(u64, WalRecord), String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let seq = v
        .get("seq")
        .and_then(Json::as_u64)
        .ok_or("record is missing \"seq\"")?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("record is missing \"op\"")?;
    let record = match op {
        "submit" => WalRecord::Submit {
            worker: Worker::new(
                Point::new(wire::unhex("x", v.get("x"))?, wire::unhex("y", v.get("y"))?),
                wire::unhex("acc", v.get("acc"))?,
            ),
        },
        "post" => {
            let task = Task::new(Point::new(
                wire::unhex("x", v.get("x"))?,
                wire::unhex("y", v.get("y"))?,
            ));
            let row = match v.get("row") {
                None => None,
                Some(row) => {
                    let items = row.as_arr().ok_or("\"row\" must be an array")?;
                    let mut accs = Vec::with_capacity(items.len());
                    for item in items {
                        accs.push(wire::unhex("row", Some(item))?);
                    }
                    Some(accs)
                }
            };
            WalRecord::Post { task, row }
        }
        "rebalance" => WalRecord::Rebalance,
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok((seq, record))
}

/// Flushes directory metadata so a just-created or just-renamed file
/// survives power loss. Best-effort: some filesystems refuse to fsync
/// a directory handle, and a refusal only weakens power-loss coverage,
/// never process-crash coverage.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        handle.sync_all().ok();
    }
}

/// The append side of the log. One writer owns the directory's current
/// segment; [`append`](WalWriter::append) stamps sequence numbers,
/// [`rotate`](WalWriter::rotate) starts a fresh segment at a
/// checkpoint, and [`compact`](WalWriter::compact) deletes the covered
/// ones.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    file: io::BufWriter<File>,
    segment: u64,
    next_seq: u64,
    sync: SyncPolicy,
    unsynced: u64,
    line: String,
}

impl WalWriter {
    /// Starts a brand-new segment `index` whose first record will carry
    /// sequence number `base_seq`. Refuses to overwrite an existing
    /// segment file.
    pub fn new_segment(
        dir: &Path,
        index: u64,
        base_seq: u64,
        sync: SyncPolicy,
    ) -> io::Result<Self> {
        let path = segment_path(dir, index);
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.write_all(header_line(index, base_seq).as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        sync_dir(dir);
        Ok(Self {
            dir: dir.to_path_buf(),
            file: io::BufWriter::new(file),
            segment: index,
            next_seq: base_seq,
            sync,
            unsynced: 0,
            line: String::with_capacity(256),
        })
    }

    /// The sequence number the next appended record will carry — also
    /// the count of records ever logged, since sequences start at 0 and
    /// never skip.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The index of the segment currently being appended to.
    pub fn segment(&self) -> u64 {
        self.segment
    }

    /// Appends one record and returns the sequence number it was
    /// stamped with. How far the line travels before this returns —
    /// user-space buffer, kernel, platter — is the [`SyncPolicy`]'s
    /// call; see its variants for the exact ladder.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let seq = self.next_seq;
        self.line.clear();
        encode_record_into(&mut self.line, seq, record);
        self.line.push('\n');
        self.file.write_all(self.line.as_bytes())?;
        self.next_seq += 1;
        self.unsynced += 1;
        match self.sync {
            SyncPolicy::Always => {
                self.file.flush()?;
                self.file.get_ref().sync_data()?;
                self.unsynced = 0;
            }
            SyncPolicy::Every(n) => {
                self.file.flush()?;
                if self.unsynced >= n.max(1) {
                    self.file.get_ref().sync_data()?;
                    self.unsynced = 0;
                }
            }
            SyncPolicy::Os => {}
        }
        Ok(seq)
    }

    /// Pushes every buffered record to the kernel without forcing an
    /// fsync. After this, no *process* crash can lose an appended
    /// record; power loss still can, which is exactly the trade the
    /// [`SyncPolicy::Os`] caller signed up for. The session's quiesce
    /// points (drain, snapshot) call this.
    pub fn handoff(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    /// Forces everything appended so far to stable storage, whatever
    /// the policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Seals the current segment (with a final fsync) and starts the
    /// next one. The new segment's `base_seq` is exactly
    /// [`next_seq`](WalWriter::next_seq), keeping the global sequence
    /// contiguous.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        let next = WalWriter::new_segment(&self.dir, self.segment + 1, self.next_seq, self.sync)?;
        *self = next;
        Ok(())
    }

    /// Deletes every segment below the current one and returns how many
    /// were removed. Sound only when the newest checkpoint covers the
    /// current segment's `base_seq` — which the checkpoint flow
    /// guarantees by rotating first.
    pub fn compact(&mut self) -> io::Result<u64> {
        let mut removed = 0;
        for info in list_segments(&self.dir).map_err(io::Error::other)? {
            if info.index < self.segment {
                fs::remove_file(&info.path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            sync_dir(&self.dir);
        }
        Ok(removed)
    }
}

/// One segment file found on disk, identified by its validated header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment index (from the filename, confirmed by the header).
    pub index: u64,
    /// Sequence number of the segment's first record.
    pub base_seq: u64,
    /// Path to the segment file.
    pub path: PathBuf,
    /// Format version the header announced ([`WAL_VERSION_V1`] records
    /// carry no `crc`; [`WAL_VERSION`] seals every record).
    pub version: u64,
}

/// Reads one `\n`-terminated line of at most [`MAX_RECORD`] bytes.
/// Returns the line without its delimiter, whether the delimiter was
/// present, and the bytes consumed (delimiter included).
fn read_record_line<R: BufRead>(reader: &mut R) -> io::Result<Option<(String, bool, u64)>> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(MAX_RECORD as u64)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    let terminated = buf.last() == Some(&b'\n');
    if !terminated && n >= MAX_RECORD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("log record exceeds the {MAX_RECORD}-byte cap"),
        ));
    }
    if terminated {
        buf.pop();
    }
    let line = String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "log record is not UTF-8"))?;
    Ok(Some((line, terminated, n as u64)))
}

/// Segment files present in the directory, by name only, in index
/// order. Headers are *not* validated here.
fn segment_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurableError> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(index) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            found.push((index, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Reads and validates one segment header. `Ok(None)` means the header
/// is *physically* torn — file empty, line unterminated, or not JSON —
/// and the caller opted into leniency (a crash can tear the header of
/// a just-rotated final segment, in which case no record ever followed
/// it); with `lenient` false the same damage is a hard error.
/// Semantic problems (wrong version, index mismatch) are hard errors
/// regardless: they mean someone else's data, which repair must never
/// delete.
fn read_header(
    path: &Path,
    index: u64,
    lenient: bool,
) -> Result<Option<(SegmentInfo, u64)>, DurableError> {
    let corrupt = |what: String| DurableError::Corrupt {
        path: path.to_path_buf(),
        what,
    };
    let mut reader = BufReader::new(File::open(path)?);
    let physically_torn = |what: String| {
        if lenient {
            Ok(None)
        } else {
            Err(corrupt(what))
        }
    };
    let Some((line, terminated, consumed)) = read_record_line(&mut reader)? else {
        return physically_torn("empty segment (missing header)".into());
    };
    if !terminated {
        return physically_torn("unterminated header line".into());
    }
    let header = match json::parse(&line) {
        Ok(header) => header,
        Err(e) => return physically_torn(format!("bad header: {e}")),
    };
    let version = match (
        header.get("wal").and_then(Json::as_str),
        header.get("v").and_then(Json::as_u64),
    ) {
        (Some(WAL_NAME), Some(ver @ (WAL_VERSION_V1 | WAL_VERSION))) => ver,
        (Some(WAL_NAME), Some(ver)) => {
            return Err(corrupt(format!("unsupported {WAL_NAME} version {ver}")))
        }
        _ => return Err(corrupt("header does not announce ltc-wal".into())),
    };
    let header_index = header
        .get("segment")
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt("header is missing \"segment\"".into()))?;
    if header_index != index {
        return Err(corrupt(format!(
            "filename says segment {index}, header says {header_index}"
        )));
    }
    let base_seq = header
        .get("base_seq")
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt("header is missing \"base_seq\"".into()))?;
    Ok(Some((
        SegmentInfo {
            index,
            base_seq,
            path: path.to_path_buf(),
            version,
        },
        consumed,
    )))
}

/// Lists the directory's segments in index order, validating each
/// header as it goes (name/version match, filename agrees with the
/// header's own segment index).
pub fn list_segments(dir: &Path) -> Result<Vec<SegmentInfo>, DurableError> {
    let mut segments = Vec::new();
    for (index, path) in segment_files(dir)? {
        let (info, _) = read_header(&path, index, false)?.expect("strict mode never yields None");
        segments.push(info);
    }
    Ok(segments)
}

/// Everything [`scan`] learned about the log.
#[derive(Debug)]
pub struct LogScan {
    /// Every surviving record, in sequence order.
    pub records: Vec<(u64, WalRecord)>,
    /// The sequence number the next appended record must carry. Only
    /// meaningful when [`segments`](LogScan::segments) is non-empty —
    /// if even the final segment's *header* was torn away, the log's
    /// position is whatever the newest checkpoint says.
    pub next_seq: u64,
    /// The segments whose headers were readable, in index order.
    pub segments: Vec<SegmentInfo>,
    /// The index a resuming writer's *next* segment should use: past
    /// every surviving file, reusing a fully-torn one's slot.
    pub next_segment: u64,
    /// A torn final record, if the log ends mid-write: the file to
    /// repair, the length of its valid prefix, and the bytes beyond it.
    /// `valid_len == 0` means the final segment's header itself was
    /// torn and [`repair`] deletes the file outright.
    pub torn: Option<TornTail>,
}

/// A detected torn tail — the one kind of damage recovery repairs
/// rather than refuses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The final segment, where the tear necessarily lives.
    pub path: PathBuf,
    /// File length up to and including the last intact record.
    pub valid_len: u64,
    /// Bytes past the valid prefix that truncation will drop.
    pub torn_bytes: u64,
}

/// Reads every record in the log, in order, verifying the global
/// sequence is contiguous from the first surviving segment's
/// `base_seq`. Damage on the *final* line of the *final* segment — no
/// terminating newline, a line that does not parse, or a wrong
/// sequence stamp — is reported as a [`TornTail`] (and the records
/// before it still returned); the same damage anywhere else is a
/// [`DurableError::Corrupt`].
pub fn scan(dir: &Path) -> Result<LogScan, DurableError> {
    let files = segment_files(dir)?;
    if files.is_empty() {
        return Err(DurableError::NotInitialized(dir.to_path_buf()));
    }
    for pair in files.windows(2) {
        if pair[1].0 != pair[0].0 + 1 {
            return Err(DurableError::Corrupt {
                path: dir.to_path_buf(),
                what: format!(
                    "segment numbering jumps from {} to {}",
                    pair[0].0, pair[1].0
                ),
            });
        }
    }
    let mut records = Vec::new();
    let mut segments: Vec<SegmentInfo> = Vec::with_capacity(files.len());
    let mut next_seq = 0;
    let mut next_segment = 0;
    let mut torn = None;
    let n_files = files.len();
    for (i, (index, path)) in files.into_iter().enumerate() {
        let is_last = i + 1 == n_files;
        let Some((info, header_len)) = read_header(&path, index, is_last)? else {
            // The final segment's header itself is torn: the segment
            // never durably began, so it holds no records and repair
            // deletes it whole. Its index slot is free to reuse.
            torn = Some(TornTail {
                path: path.clone(),
                valid_len: 0,
                torn_bytes: fs::metadata(&path)?.len(),
            });
            next_segment = index;
            break;
        };
        next_segment = index + 1;
        if segments.is_empty() {
            next_seq = info.base_seq;
        } else if info.base_seq != next_seq {
            return Err(DurableError::Corrupt {
                path: info.path.clone(),
                what: format!(
                    "segment declares base_seq {}, but the log reaches it at {next_seq}",
                    info.base_seq
                ),
            });
        }
        segments.push(info.clone());
        let corrupt = |what: String| DurableError::Corrupt {
            path: info.path.clone(),
            what,
        };
        let mut reader = BufReader::new(File::open(&info.path)?);
        let skipped_header = read_record_line(&mut reader)?;
        debug_assert_eq!(skipped_header.map(|h| h.2), Some(header_len));
        let mut offset = header_len;
        while let Some((line, terminated, consumed)) = read_record_line(&mut reader)? {
            let parsed = if !terminated {
                Err("no terminating newline".into())
            } else if info.version >= WAL_VERSION {
                verify_record_crc(&line).and_then(|()| decode_record(&line))
            } else {
                decode_record(&line)
            };
            match parsed {
                Ok((seq, record)) if seq == next_seq => {
                    records.push((seq, record));
                    next_seq += 1;
                    offset += consumed;
                }
                Ok(_) if is_last && reader.fill_buf()?.is_empty() => {
                    // A complete final line stamped with the wrong
                    // sequence: a torn rewrite, not interior damage.
                    torn = Some(TornTail {
                        path: info.path.clone(),
                        valid_len: offset,
                        torn_bytes: consumed,
                    });
                    break;
                }
                Ok((seq, _)) => {
                    return Err(corrupt(format!(
                        "record stamped seq {seq} where {next_seq} was required"
                    )));
                }
                Err(_) if is_last && reader.fill_buf()?.is_empty() => {
                    torn = Some(TornTail {
                        path: info.path.clone(),
                        valid_len: offset,
                        torn_bytes: consumed,
                    });
                    break;
                }
                Err(what) => {
                    return Err(corrupt(format!("undecodable record: {what}")));
                }
            }
        }
    }
    Ok(LogScan {
        records,
        next_seq,
        segments,
        next_segment,
        torn,
    })
}

/// Truncates a torn tail off its segment, making the log end at the
/// last intact record. A tail with `valid_len == 0` is a segment whose
/// *header* was torn — it never held a record, so the whole file goes.
/// Idempotent: re-running on an already-repaired log finds no tear to
/// repair.
pub fn repair(torn: &TornTail) -> io::Result<()> {
    if torn.valid_len == 0 {
        fs::remove_file(&torn.path)?;
        if let Some(dir) = torn.path.parent() {
            sync_dir(dir);
        }
        return Ok(());
    }
    let file = OpenOptions::new().write(true).open(&torn.path)?;
    file.set_len(torn.valid_len)?;
    file.sync_data()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ltc-wal-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Submit {
                worker: Worker::new(Point::new(12.5, -3.75), 0.9),
            },
            WalRecord::Post {
                task: Task::new(Point::new(f64::MIN_POSITIVE, 1e300)),
                row: None,
            },
            WalRecord::Post {
                task: Task::new(Point::new(0.0, -0.0)),
                row: Some(vec![0.5, 1.0, f64::NAN]),
            },
            WalRecord::Rebalance,
        ]
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        for (i, record) in sample_records().into_iter().enumerate() {
            let line = encode_record(i as u64, &record);
            let (seq, back) = decode_record(&line).unwrap();
            assert_eq!(seq, i as u64);
            // NaN breaks PartialEq; compare through the encoding, which
            // is the bit pattern.
            assert_eq!(line, encode_record(seq, &back));
        }
    }

    #[test]
    fn append_scan_round_trips_across_rotation() {
        let dir = temp_dir("rotate");
        let mut w = WalWriter::new_segment(&dir, 0, 0, SyncPolicy::Every(2)).unwrap();
        let records = sample_records();
        for r in &records[..2] {
            w.append(r).unwrap();
        }
        w.rotate().unwrap();
        for r in &records[2..] {
            w.append(r).unwrap();
        }
        assert_eq!(w.next_seq(), 4);
        assert_eq!(w.segment(), 1);

        let log = scan(&dir).unwrap();
        assert_eq!(log.next_seq, 4);
        assert!(log.torn.is_none());
        assert_eq!(log.segments.len(), 2);
        assert_eq!(log.segments[1].base_seq, 2);
        for (i, (seq, r)) in log.records.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(
                encode_record(*seq, r),
                encode_record(*seq, &records[i]),
                "record {i} changed across the log round trip"
            );
        }

        assert_eq!(w.compact().unwrap(), 1);
        let log = scan(&dir).unwrap();
        assert_eq!(log.segments.len(), 1);
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.records[0].0, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_torn_tail_is_detected_and_repaired_never_misparsed() {
        let dir = temp_dir("torn");
        let mut w = WalWriter::new_segment(&dir, 0, 0, SyncPolicy::Os).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, 0);
        let intact = fs::read(&path).unwrap();

        // Chop the file at every possible byte length; every prefix
        // must either scan clean or scan as torn — never as corrupt,
        // and never misparse the tail into a wrong record.
        let header_len = intact.iter().position(|&b| b == b'\n').unwrap() + 1;
        for cut in header_len..=intact.len() {
            fs::write(&path, &intact[..cut]).unwrap();
            let log = scan(&dir).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            let clean: u64 = intact[header_len..cut]
                .iter()
                .filter(|&&b| b == b'\n')
                .count() as u64;
            assert_eq!(log.next_seq, clean, "cut at {cut}");
            match &log.torn {
                Some(tail) => {
                    assert_eq!(tail.torn_bytes as usize + tail.valid_len as usize, cut);
                    repair(tail).unwrap();
                    let repaired = scan(&dir).unwrap();
                    assert!(repaired.torn.is_none());
                    assert_eq!(repaired.next_seq, clean);
                }
                None => assert!(
                    cut == intact.len() || intact[cut - 1] == b'\n',
                    "cut at {cut} should have torn"
                ),
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_torn_final_segment_header_deletes_the_file_on_repair() {
        let dir = temp_dir("torn-header");
        let mut w = WalWriter::new_segment(&dir, 0, 0, SyncPolicy::Os).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.rotate().unwrap();
        drop(w);
        let tail_path = segment_path(&dir, 1);
        let header = fs::read(&tail_path).unwrap();

        // Chop the fresh segment inside its header at every length,
        // including zero. Each cut must scan as a whole-file tear that
        // repair resolves by deleting the segment, leaving segment 0's
        // records intact and the torn index slot free for reuse.
        for cut in 0..header.len() {
            fs::write(&tail_path, &header[..cut]).unwrap();
            let log = scan(&dir).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(log.records.len(), 4, "cut at {cut}");
            assert_eq!(log.next_seq, 4, "cut at {cut}");
            assert_eq!(log.next_segment, 1, "cut at {cut}");
            let tail = log.torn.as_ref().unwrap_or_else(|| {
                panic!("cut at {cut} must be a torn header");
            });
            assert_eq!(tail.valid_len, 0);
            assert_eq!(tail.torn_bytes as usize, cut);
            repair(tail).unwrap();
            let repaired = scan(&dir).unwrap();
            assert!(repaired.torn.is_none());
            assert_eq!(repaired.next_seq, 4);
            assert_eq!(repaired.next_segment, 1);
        }

        // A torn header on a *sole* segment deletes the whole log;
        // recovery then trusts the newest checkpoint for its position.
        fs::write(&tail_path, &header).unwrap();
        fs::remove_file(segment_path(&dir, 0)).unwrap();
        fs::write(&tail_path, &header[..header.len() - 1]).unwrap();
        let log = scan(&dir).unwrap();
        assert!(log.segments.is_empty());
        assert_eq!(log.next_segment, 1);
        repair(log.torn.as_ref().unwrap()).unwrap();
        match scan(&dir) {
            Err(DurableError::NotInitialized(_)) => {}
            other => panic!("an emptied log directory is uninitialized, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_damage_is_corruption_not_a_torn_tail() {
        let dir = temp_dir("interior");
        let mut w = WalWriter::new_segment(&dir, 0, 0, SyncPolicy::Os).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside the *second* record (not the last line).
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let second_start = header_len
            + bytes[header_len..]
                .iter()
                .position(|&b| b == b'\n')
                .unwrap()
            + 1;
        bytes[second_start + 2] = b'#';
        fs::write(&path, &bytes).unwrap();
        match scan(&dir) {
            Err(DurableError::Corrupt { .. }) => {}
            other => panic!("interior damage must refuse to load, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_discontinuities_between_segments_refuse_to_load() {
        let dir = temp_dir("gap");
        let mut w = WalWriter::new_segment(&dir, 0, 0, SyncPolicy::Os).unwrap();
        w.append(&WalRecord::Rebalance).unwrap();
        drop(w);
        // Forge segment 1 claiming a base_seq the log never reaches.
        let mut w = WalWriter::new_segment(&dir, 1, 5, SyncPolicy::Os).unwrap();
        w.append(&WalRecord::Rebalance).unwrap();
        drop(w);
        match scan(&dir) {
            Err(DurableError::Corrupt { .. }) => {}
            other => panic!("a sequence gap must refuse to load, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        // The canonical CRC-32 check value: crc32(b"123456789").
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_record_carries_a_valid_final_crc_member() {
        for (i, record) in sample_records().into_iter().enumerate() {
            let line = encode_record(i as u64, &record);
            verify_record_crc(&line).unwrap();
            let stripped = strip_crc(&line);
            assert!(
                !stripped.contains("crc"),
                "crc must be the line's final member"
            );
            assert!(verify_record_crc(&stripped).is_err());
        }
    }

    /// The record line as `ltc-wal` v1 wrote it: the `crc` suffix
    /// spliced out.
    fn strip_crc(line: &str) -> String {
        assert!(line.len() > CRC_SUFFIX_LEN && line.ends_with("\"}"));
        format!("{}}}", &line[..line.len() - CRC_SUFFIX_LEN])
    }

    /// Hand-writes a v1 segment — header announcing `"v":1` and crc-less
    /// record lines — as an ltc-wal v1 writer would have left it.
    fn write_v1_segment(dir: &Path, index: u64, base_seq: u64, records: &[WalRecord]) {
        let mut bytes = format!(
            "{{\"wal\":\"{WAL_NAME}\",\"v\":{WAL_VERSION_V1},\"segment\":{index},\"base_seq\":{base_seq}}}\n"
        );
        for (i, r) in records.iter().enumerate() {
            bytes.push_str(&strip_crc(&encode_record(base_seq + i as u64, r)));
            bytes.push('\n');
        }
        fs::write(segment_path(dir, index), bytes).unwrap();
    }

    #[test]
    fn v1_segments_still_load_and_resumed_logs_mix_versions() {
        let dir = temp_dir("v1-mixed");
        let records = sample_records();
        write_v1_segment(&dir, 0, 0, &records[..2]);
        let log = scan(&dir).unwrap();
        assert_eq!(log.next_seq, 2);
        assert!(log.torn.is_none());
        assert_eq!(log.segments[0].version, WAL_VERSION_V1);

        // Resume appends into a fresh (v2) segment, as recovery does.
        let mut w = WalWriter::new_segment(&dir, 1, 2, SyncPolicy::Os).unwrap();
        for r in &records[2..] {
            w.append(r).unwrap();
        }
        drop(w);
        let log = scan(&dir).unwrap();
        assert_eq!(log.next_seq, 4);
        assert!(log.torn.is_none());
        assert_eq!(
            log.segments.iter().map(|s| s.version).collect::<Vec<_>>(),
            vec![WAL_VERSION_V1, WAL_VERSION]
        );
        for (i, (seq, r)) in log.records.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(encode_record(*seq, r), encode_record(*seq, &records[i]));
        }

        // A crc-less line under a v2 header, by contrast, is corruption.
        let v2_path = segment_path(&dir, 1);
        let text = fs::read_to_string(&v2_path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[1] = strip_crc(&lines[1]);
        fs::write(&v2_path, format!("{}\n", lines.join("\n"))).unwrap();
        match scan(&dir) {
            Err(DurableError::Corrupt { what, .. }) => assert!(what.contains("crc")),
            other => panic!("a v2 record without a crc must refuse to load, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_bit_rot_that_still_parses_is_caught_by_the_crc() {
        let dir = temp_dir("bitrot");
        let mut w = WalWriter::new_segment(&dir, 0, 0, SyncPolicy::Os).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload hex digit in the *first* record: the line
        // still parses as JSON with the right seq, so only the crc can
        // tell — this exact damage loaded silently under v1.
        let x_pos = bytes
            .windows(5)
            .position(|w| w == b"\"x\":\"")
            .map(|p| p + 5)
            .unwrap();
        bytes[x_pos] = if bytes[x_pos] == b'0' { b'1' } else { b'0' };
        fs::write(&path, &bytes).unwrap();
        match scan(&dir) {
            Err(DurableError::Corrupt { what, .. }) => {
                assert!(what.contains("crc mismatch"), "got: {what}")
            }
            other => panic!("interior bit rot must refuse to load, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_on_the_final_line_crc_is_a_repairable_tear() {
        let dir = temp_dir("tail-crc");
        let mut w = WalWriter::new_segment(&dir, 0, 0, SyncPolicy::Os).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        // Corrupt a crc hex digit on the *final* record: damage on the
        // last line is indistinguishable from a torn write, so it must
        // repair, not refuse.
        let flip = bytes.len() - 5;
        bytes[flip] = if bytes[flip] == b'0' { b'1' } else { b'0' };
        fs::write(&path, &bytes).unwrap();
        let log = scan(&dir).unwrap();
        assert_eq!(log.next_seq, 3);
        let tail = log.torn.expect("a final-line crc failure is a tear");
        repair(&tail).unwrap();
        let repaired = scan(&dir).unwrap();
        assert!(repaired.torn.is_none());
        assert_eq!(repaired.next_seq, 3);
        assert_eq!(repaired.records.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_records_are_rejected_while_reading() {
        let dir = temp_dir("oversized");
        drop(WalWriter::new_segment(&dir, 0, 0, SyncPolicy::Os).unwrap());
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend(vec![b'x'; MAX_RECORD + 10]);
        fs::write(&path, &bytes).unwrap();
        assert!(scan(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
