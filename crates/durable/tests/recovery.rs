//! End-to-end durability tests: the full log → checkpoint → crash →
//! recover lifecycle, deterministic and property-based.
//!
//! The contract under test is the one `docs/DURABILITY.md` promises: a
//! recovered session is **byte-identical**, as `ltc-snapshot v1` text,
//! to an uninterrupted session fed the same prefix of operations — for
//! every policy, shard count, sync policy, checkpoint cadence, snapshot
//! encoding, and crash point, including a crash that tears the final
//! log record (or even a just-rotated segment's header) mid-write.

use ltc_core::model::{ProblemParams, Task, Worker};
use ltc_core::service::{Algorithm, ServiceBuilder, ServiceHandle, Session};
use ltc_core::snapshot::write_snapshot;
use ltc_durable::checkpoint::SnapshotFormat;
use ltc_durable::{recover, DurableHandle, DurableOptions, SyncPolicy};
use ltc_spatial::{BoundingBox, Point};
use proptest::prelude::*;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(name: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "ltc-recovery-test-{name}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn params() -> ProblemParams {
    ProblemParams::builder()
        .epsilon(0.2)
        .capacity(2)
        .d_max(30.0)
        .build()
        .unwrap()
}

fn region() -> BoundingBox {
    BoundingBox::new(Point::ORIGIN, Point::new(1000.0, 1000.0))
}

fn fresh(algo: Algorithm, n_shards: usize) -> ServiceHandle {
    ServiceBuilder::new(params(), region())
        .algorithm(algo)
        .shards(NonZeroUsize::new(n_shards).unwrap())
        .start()
        .unwrap()
}

/// One state-changing session operation — the alphabet the log records.
#[derive(Debug, Clone)]
enum Op {
    Submit(Worker),
    Post(Task),
    Rebalance,
}

/// Applies one op through any [`Session`]. The workloads here stay
/// in-region, so every op must succeed — a failure is a test bug.
fn apply<S: Session>(session: &mut S, op: &Op) {
    let outcome = match op {
        Op::Submit(w) => session.submit_worker(w).map(|_| ()),
        Op::Post(t) => session.post_task(*t).map(|_| ()),
        Op::Rebalance => session.rebalance().map(|_| ()),
    };
    if let Err(e) = outcome {
        panic!("op {op:?} failed: {e}");
    }
}

fn snapshot_text<S: Session>(session: &mut S) -> String {
    let snap = session.snapshot().unwrap();
    let mut out = Vec::new();
    write_snapshot(&snap, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

/// The state an uninterrupted run holds after the first `n` ops.
fn reference_text(algo: Algorithm, n_shards: usize, ops: &[Op], n: usize) -> String {
    let mut handle = fresh(algo, n_shards);
    for op in &ops[..n] {
        apply(&mut handle, op);
    }
    handle.drain().unwrap();
    let text = snapshot_text(&mut handle);
    handle.close().unwrap();
    text
}

/// A deterministic mixed workload over the region.
fn mixed_ops(seed: u64, n_ops: usize) -> Vec<Op> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n_ops)
        .map(|_| {
            let r = next();
            let x = (r % 1000) as f64;
            let y = ((r >> 10) % 1000) as f64;
            match r % 11 {
                0..=3 => Op::Post(Task::new(Point::new(x, y))),
                4 => Op::Rebalance,
                _ => {
                    let acc = 0.7 + 0.29 * ((r >> 20) % 100) as f64 / 100.0;
                    Op::Submit(Worker::new(Point::new(x, y), acc))
                }
            }
        })
        .collect()
}

/// The highest-numbered (current) segment file in a log directory.
fn final_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    segments.pop().expect("log directory holds no segments")
}

/// Clean shutdown → resume replays nothing; the resumed session
/// continues bit-identically to an uninterrupted run, checkpointing and
/// compacting along the way.
#[test]
fn shutdown_resume_continues_bit_identically() {
    let dir = temp_dir("shutdown-resume");
    let algo = Algorithm::Laf;
    let ops = mixed_ops(42, 75);
    let options = DurableOptions {
        sync: SyncPolicy::Every(2),
        checkpoint_every: 8,
        format: SnapshotFormat::Text,
    };

    let mut durable = DurableHandle::create(fresh(algo, 4), &dir, options).unwrap();
    for op in &ops[..50] {
        apply(&mut durable, op);
    }
    assert_eq!(durable.wal_records(), 50);
    let metrics = durable.metrics().unwrap();
    assert_eq!(metrics.wal_records, 50);
    // Genesis plus one every 8 logged ops.
    assert_eq!(metrics.checkpoints, 1 + 50 / 8);
    durable.shutdown().unwrap();

    let (mut durable, report) = DurableHandle::resume(&dir, options).unwrap();
    assert_eq!(report.replayed, 0, "a sealed log replays nothing");
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(report.next_seq, 50);
    for op in &ops[50..] {
        apply(&mut durable, op);
    }
    assert_eq!(durable.wal_records(), 75);
    let text = snapshot_text(&mut durable);
    durable.shutdown().unwrap();

    assert_eq!(text, reference_text(algo, 4, &ops, 75));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Binary checkpoints restore exactly like text ones.
#[test]
fn binary_checkpoints_restore_like_text() {
    let dir = temp_dir("binary-checkpoint");
    let algo = Algorithm::Aam;
    let ops = mixed_ops(7, 40);
    let options = DurableOptions {
        sync: SyncPolicy::Os,
        checkpoint_every: 5,
        format: SnapshotFormat::Binary,
    };
    let mut durable = DurableHandle::create(fresh(algo, 2), &dir, options).unwrap();
    for op in &ops {
        apply(&mut durable, op);
    }
    drop(durable); // crash: no shutdown, no sealing checkpoint

    let recovery = recover(&dir).unwrap();
    assert_eq!(recovery.next_seq, 40);
    let mut handle = recovery.handle;
    let text = snapshot_text(&mut handle);
    handle.close().unwrap();
    assert_eq!(text, reference_text(algo, 2, &ops, 40));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Tabular accuracy rows ride the log and replay bit-exactly (the
/// `row` field of `post` records).
#[test]
fn accuracy_rows_replay_bit_exactly() {
    let inst = ltc_core::toy::toy_instance(0.2);
    let build = || ServiceBuilder::from_instance(&inst).start().unwrap();
    let n_workers = inst.n_workers();
    let rows: Vec<Vec<f64>> = (0..3)
        .map(|t| {
            (0..n_workers)
                .map(|w| 0.70 + 0.04 * ((w + t) % 8) as f64)
                .collect()
        })
        .collect();

    let dir = temp_dir("table-rows");
    let mut durable = DurableHandle::create(
        build(),
        &dir,
        DurableOptions {
            checkpoint_every: 0, // pure replay: everything from the log
            ..DurableOptions::default()
        },
    )
    .unwrap();
    for (t, row) in rows.iter().enumerate() {
        durable
            .post_task_with_accuracies(Task::new(Point::new(t as f64, 1.0)), row)
            .unwrap();
    }
    for worker in inst.workers() {
        durable.submit_worker(worker).unwrap();
    }
    drop(durable); // crash

    let recovery = recover(&dir).unwrap();
    assert_eq!(recovery.checkpoint_seq, 0);
    assert_eq!(recovery.replayed, 3 + n_workers as u64);
    let mut recovered = recovery.handle;
    let recovered_text = snapshot_text(&mut recovered);
    recovered.close().unwrap();

    let mut reference = build();
    for (t, row) in rows.iter().enumerate() {
        reference
            .post_task_with_accuracies(Task::new(Point::new(t as f64, 1.0)), row)
            .unwrap();
    }
    for worker in inst.workers() {
        reference.submit_worker(worker).unwrap();
    }
    reference.drain().unwrap();
    let reference_text = snapshot_text(&mut reference);
    reference.close().unwrap();

    assert_eq!(recovered_text, reference_text);
    std::fs::remove_dir_all(&dir).unwrap();
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..11, 0.0f64..1000.0, 0.0f64..1000.0, 0.70f64..0.99).prop_map(
        |(kind, x, y, p)| match kind {
            0..=3 => Op::Post(Task::new(Point::new(x, y))),
            4 => Op::Rebalance,
            _ => Op::Submit(Worker::new(Point::new(x, y), p)),
        },
    )
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    (0u8..3).prop_map(|which| match which {
        0 => Algorithm::Laf,
        1 => Algorithm::Aam,
        _ => Algorithm::Random { seed: 7 },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE recovery invariant: whatever the workload, policy, shard
    /// count, durability options, and crash point — anywhere in the
    /// log, including mid-record and mid-header — recovery lands
    /// byte-identical to an uninterrupted run over the surviving
    /// prefix. And it is idempotent: recovering twice changes nothing.
    #[test]
    fn any_crash_point_recovers_bit_exactly(
        ops in prop::collection::vec(arb_op(), 1..48),
        algo in arb_algorithm(),
        four_shards in any::<bool>(),
        checkpoint_every in 0u64..6,
        sync_choice in 0u8..3,
        binary in any::<bool>(),
        cut_frac in 0.0f64..=1.0,
    ) {
        let n_shards = if four_shards { 4 } else { 1 };
        let options = DurableOptions {
            sync: match sync_choice {
                0 => SyncPolicy::Always,
                1 => SyncPolicy::Every(3),
                _ => SyncPolicy::Os,
            },
            checkpoint_every,
            format: if binary { SnapshotFormat::Binary } else { SnapshotFormat::Text },
        };
        let dir = temp_dir("proptest");

        let mut durable = DurableHandle::create(fresh(algo, n_shards), &dir, options).unwrap();
        for op in &ops {
            apply(&mut durable, op);
        }
        drop(durable); // crash: no shutdown

        // Chop the current segment at an arbitrary byte offset —
        // modeling power loss mid-write, possibly mid-header.
        let tail = final_segment(&dir);
        let len = std::fs::metadata(&tail).unwrap().len();
        let cut = (len as f64 * cut_frac) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&tail)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let recovery = recover(&dir).unwrap();
        let survived = recovery.next_seq as usize;
        prop_assert!(survived <= ops.len());
        let mut recovered = recovery.handle;
        let recovered_text = snapshot_text(&mut recovered);
        recovered.close().unwrap();

        prop_assert_eq!(&recovered_text, &reference_text(algo, n_shards, &ops, survived));

        // Idempotence: the only mutation was repairing the torn tail,
        // so a second recovery finds nothing to repair and lands in
        // exactly the same state.
        let again = recover(&dir).unwrap();
        prop_assert_eq!(again.truncated_bytes, 0);
        prop_assert_eq!(again.next_seq, recovery.next_seq);
        let mut recovered = again.handle;
        prop_assert_eq!(&snapshot_text(&mut recovered), &recovered_text);
        recovered.close().unwrap();

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
