//! Golden-file coverage for `docs/DURABILITY.md`: the worked example
//! embedded in the document is scanned with the real log reader and
//! re-written through the real `WalWriter`, byte-identically — so the
//! documentation cannot drift from the implementation (a doc edit that
//! breaks the grammar, or a format change that invalidates the doc,
//! fails this test).

use ltc_durable::wal::{self, SyncPolicy, WalWriter};
use std::fs;
use std::path::PathBuf;

const DOC: &str = include_str!("../../../docs/DURABILITY.md");

/// The literal segment inside the "Worked example" section's fenced
/// `text` block.
fn worked_example() -> String {
    let section = DOC
        .split("### Worked example")
        .nth(1)
        .expect("the doc keeps its Worked example section");
    let fenced = section
        .split("```text\n")
        .nth(1)
        .expect("the worked example keeps its ```text fence");
    fenced
        .split("```")
        .next()
        .expect("the fence is closed")
        .to_string()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltc-doc-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn the_docs_worked_example_scans_and_rewrites_byte_identically() {
    let text = worked_example();
    assert!(
        text.starts_with(&format!(
            "{{\"wal\":\"{}\",\"v\":{},",
            wal::WAL_NAME,
            wal::WAL_VERSION
        )),
        "the example must open with the v1 header, got {text:?}"
    );

    // The documented bytes scan with the real reader: four records, a
    // contiguous sequence, no tear.
    let dir = temp_dir("scan");
    fs::write(dir.join("wal-00000000.log"), &text).unwrap();
    let log = wal::scan(&dir).unwrap();
    assert!(log.torn.is_none(), "the example is an intact segment");
    assert_eq!(log.records.len(), 4);
    assert_eq!(log.next_seq, 4);
    assert_eq!(log.segments.len(), 1);
    assert_eq!(log.segments[0].base_seq, 0);

    // Writer(reader(doc)) is byte-identical: the doc shows exactly what
    // the implementation produces, header line included.
    let rewrite = temp_dir("rewrite");
    let mut w = WalWriter::new_segment(&rewrite, 0, 0, SyncPolicy::Os).unwrap();
    for (seq, record) in &log.records {
        assert_eq!(w.append(record).unwrap(), *seq);
    }
    w.sync().unwrap();
    drop(w);
    let rewritten = fs::read_to_string(rewrite.join("wal-00000000.log")).unwrap();
    assert_eq!(
        rewritten, text,
        "the documented bytes drifted from the writer"
    );

    // And the documented tear policy holds on the example itself: chop
    // the final record mid-line and the log scans as torn — the three
    // intact records survive — then repairs back to a clean prefix.
    let intact = text.as_bytes();
    fs::write(dir.join("wal-00000000.log"), &intact[..intact.len() - 5]).unwrap();
    let torn = wal::scan(&dir).unwrap();
    assert_eq!(torn.next_seq, 3);
    wal::repair(torn.torn.as_ref().expect("a mid-line cut is a tear")).unwrap();
    let repaired = wal::scan(&dir).unwrap();
    assert!(repaired.torn.is_none());
    assert_eq!(repaired.next_seq, 3);

    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&rewrite).unwrap();
}
