//! The `ltc` command-line tool. All logic lives in the library crate so
//! it can be unit-tested; this file only bridges to the process.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    std::process::exit(ltc_cli::run(&argv, &mut stdout));
}
