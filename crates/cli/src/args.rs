//! Argument parsing for the `ltc` tool (std-only, no CLI framework).

use std::fmt;

/// Usage text shown by `ltc help` and on parse errors.
pub const USAGE: &str = "\
ltc — Latency-oriented Task Completion via spatial crowdsourcing (ICDE'18)

USAGE:
  ltc generate --preset <synthetic|newyork|tokyo> [--scale N] [--seed S]
               [--epsilon E] [--out FILE]
  ltc run      --input FILE --algo <aam|laf|random|mcf-ltc|base-off> [--stats]
  ltc stream   ( --input FILE --algo <aam|laf|random> [--seed S] [--shards N]
               | --connect HOST:PORT [--session NAME] )
               [--checkins FILE] [--pipeline D] [--window W] [--rebalance N]
               [--snapshot-out FILE] [--metrics-out FILE]
  ltc snapshot ( --input FILE --algo <aam|laf|random> [--seed S] [--shards N]
               | --connect HOST:PORT [--session NAME] ) --out FILE
               [--checkins FILE] [--pipeline D] [--window W] [--rebalance N]
               [--metrics-out FILE]
  ltc resume   --snapshot FILE [--checkins FILE] [--pipeline D]
               [--rebalance N] [--snapshot-out FILE] [--metrics-out FILE]
  ltc serve    --input FILE --algo <aam|laf|random> --addr HOST:PORT
               [--seed S] [--shards N]
               [--max-sessions N [--idle-timeout SECS]]
               [--wal DIR [--sync POLICY]
               [--checkpoint-every N] [--checkpoint-format text|binary]]
  ltc sessions --connect HOST:PORT
  ltc recover  --wal DIR [--snapshot-out FILE]
  ltc exact    --input FILE [--budget NODES]
  ltc simulate --input FILE --algo <...> [--trials N] [--seed S]
  ltc bounds   --input FILE
  ltc help

Datasets are the TSV format of ltc-workload::dataset (`ltc generate` writes
it; omitting --out prints to stdout). `run --stats` adds per-task latency
quantiles, capacity utilization and quality overshoot. `simulate` samples
crowd answers and compares weighted-majority aggregation against plain
majority and EM truth inference.

`stream` serves check-ins through the pipelined service runtime
(persistent shard threads behind bounded mailboxes): tasks and
parameters come from --input (its worker records are ignored), worker
check-ins are read line by line from --checkins (default: stdin) as
`x<TAB>y<TAB>accuracy` (the dataset `worker` record also parses), and each
worker's committed assignments are emitted immediately as one NDJSON line,
ending with a summary line. Check-ins below the spam threshold are
skipped. --shards N partitions the task pool spatially over N engine
shards (default 1; single-shard output is bit-identical to the engine).
--pipeline D keeps up to D check-ins in flight across the shard threads
(default 1 = lockstep, byte-stable output; with D > 1 the stream may
consume up to D-1 extra check-ins past completion — they assign nothing,
but the summary's worker count includes them). --window W requests a
remote submission window: over --connect, up to W check-in frames are
fired before their acknowledgements arrive (clamped to what the server
advertises). The server applies frames in arrival order either way, and
the batch shrinks to ceil(remaining-tasks / capacity) as the instance
nears completion, so the whole output — event lines and summary,
workers-read count included — is byte-identical to --window 1.
In-process sessions are their own acknowledgement, so --window is a
no-op there (granted 1). --rebalance N quiesces
the session every N accepted check-ins and re-splits the shard stripes
by live-task load (task migration is exact, so assignments are
unchanged; skipped rebalances print nothing, applied ones emit a
rebalance NDJSON line).

`snapshot` is `stream` that also writes the service state to --out when
the check-ins are exhausted (or every task completed); `stream
--snapshot-out` does the same. `resume` restores a service from such a
snapshot file and keeps streaming where it left off (random policies
continue their RNG streams bit-exactly). --metrics-out FILE additionally
writes one machine-readable JSON line of final service metrics
(assignments, clamped insertions, rebalances, per-shard load) for bench
harnesses.

`serve` exposes the same session over TCP (`ltc-proto`, see
docs/PROTOCOL.md): it builds the service from --input exactly like
`stream` would, listens on --addr (port 0 picks a free port; the bound
address is printed first), and serves any number of concurrent clients
until one sends a shutdown. `stream --connect HOST:PORT` (and `snapshot
--connect`) then drive that remote session instead of an in-process one
— same NDJSON output, byte for byte; --connect replaces --input/--algo/
--shards/--seed, which the server already owns. A snapshot taken over
--connect is produced server-side at a quiesced point and written
locally.

`serve --max-sessions N` turns the server multi-session (`ltc-proto
v2`): clients may open up to N named sessions (the default session
included), each its own fresh service built from the --input template
with optional per-session algorithm/seed/shards/region overrides, each
with an independent lifecycle. `--idle-timeout SECS` evicts non-default
sessions with no connected client that have been idle at least SECS
seconds (subscribers of an evicted session see a `SessionEvicted`
lifecycle event before their stream ends). `stream --connect --session
NAME` binds the stream to the named session, opening it if it does not
exist yet; `ltc sessions --connect` lists a server's live sessions, one
NDJSON line each. Without --max-sessions the server carries exactly its
one default session (the v1 serving model; `open` is refused).

`serve --wal DIR` makes the served session durable (docs/DURABILITY.md):
every state-changing request is appended to a write-ahead log in DIR
before it is applied, and periodic checkpoints bound the replay work.
--sync picks the fsync policy: `always` (fsync per record), `every=N`
(fsync every N records), or `os` (leave flushing to the kernel; default
— survives process crashes, not host power loss). --checkpoint-every N
checkpoints after every N logged records (default 4096);
--checkpoint-format picks the snapshot encoding (`text` = the golden
`ltc-snapshot v1` form, default; `binary` = the compact encoding). A
DIR that already holds a log resumes it: the dataset is only used on
first initialization. `recover --wal DIR` repairs and replays such a
log without serving: it truncates a torn tail, restores the newest
valid checkpoint, replays the suffix, writes a fresh covering
checkpoint, compacts the log, and prints a summary line (optionally
writing the recovered state to --snapshot-out as `ltc-snapshot v1`
text, resumable with `ltc resume`).";

/// Which arrangement algorithm a command should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoChoice {
    /// Online Average-And-Maximum (Algorithm 3).
    Aam,
    /// Online Largest-Acc*-First (Algorithm 2).
    Laf,
    /// Online random baseline.
    Random,
    /// Offline MCF-LTC (Algorithm 1).
    McfLtc,
    /// Offline fewest-nearby-workers baseline.
    BaseOff,
}

impl AlgoChoice {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "aam" => Ok(AlgoChoice::Aam),
            "laf" => Ok(AlgoChoice::Laf),
            "random" => Ok(AlgoChoice::Random),
            "mcf-ltc" | "mcf" => Ok(AlgoChoice::McfLtc),
            "base-off" | "baseoff" => Ok(AlgoChoice::BaseOff),
            other => Err(ParseError(format!("unknown algorithm `{other}`"))),
        }
    }

    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            AlgoChoice::Aam => "AAM",
            AlgoChoice::Laf => "LAF",
            AlgoChoice::Random => "Random",
            AlgoChoice::McfLtc => "MCF-LTC",
            AlgoChoice::BaseOff => "Base-off",
        }
    }
}

/// Dataset presets of `ltc generate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Table IV synthetic grid.
    Synthetic,
    /// Table V New-York-like check-in stream.
    NewYork,
    /// Table V Tokyo-like check-in stream.
    Tokyo,
}

impl Preset {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "synthetic" => Ok(Preset::Synthetic),
            "newyork" | "new-york" | "ny" => Ok(Preset::NewYork),
            "tokyo" => Ok(Preset::Tokyo),
            other => Err(ParseError(format!("unknown preset `{other}`"))),
        }
    }
}

/// The WAL fsync policy of `ltc serve --wal` (parsed here, interpreted
/// by the `ltc-durable` layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncChoice {
    /// fsync after every appended record.
    Always,
    /// fsync after every N appended records.
    Every(u64),
    /// Never fsync explicitly; the kernel flushes on its own schedule.
    Os,
}

impl SyncChoice {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "always" => Ok(SyncChoice::Always),
            "os" => Ok(SyncChoice::Os),
            other => {
                let n = other.strip_prefix("every=").unwrap_or(other);
                match n.parse::<u64>() {
                    Ok(0) => Err(ParseError("--sync every=N needs N >= 1".into())),
                    Ok(n) => Ok(SyncChoice::Every(n)),
                    Err(_) => Err(ParseError(format!(
                        "unknown sync policy `{other}` (always, os, every=N)"
                    ))),
                }
            }
        }
    }
}

/// The checkpoint snapshot encoding of `ltc serve --wal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFormat {
    /// The golden `ltc-snapshot v1` text form.
    Text,
    /// The compact `ltc-snapshot-bin v1` form.
    Binary,
}

impl CheckpointFormat {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "text" => Ok(CheckpointFormat::Text),
            "binary" | "bin" => Ok(CheckpointFormat::Binary),
            other => Err(ParseError(format!(
                "unknown checkpoint format `{other}` (text, binary)"
            ))),
        }
    }
}

/// The durability options of `ltc serve --wal DIR`.
#[derive(Debug, Clone, PartialEq)]
pub struct WalChoice {
    /// The log directory.
    pub dir: String,
    /// The fsync policy.
    pub sync: SyncChoice,
    /// Checkpoint after every this many logged records (`None` = the
    /// `ltc-durable` default).
    pub checkpoint_every: Option<u64>,
    /// The checkpoint snapshot encoding.
    pub format: CheckpointFormat,
}

/// Where `ltc stream`/`ltc snapshot` get their session from.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamSource {
    /// Build the service in process from a dataset.
    Dataset {
        /// Dataset path providing parameters and tasks (worker records
        /// are ignored).
        input: String,
        /// Online algorithm driving the service.
        algo: AlgoChoice,
        /// RNG seed (only affects `random`).
        seed: u64,
        /// Engine shards the task pool is spatially partitioned over.
        shards: usize,
    },
    /// Drive a remote `ltc serve` session over TCP.
    Connect {
        /// The server address (`HOST:PORT`).
        addr: String,
        /// Named session to bind on a multi-session server (opened on
        /// first use; `None` = the default session, plain `ltc-proto v1`).
        session: Option<String>,
    },
}

/// A fully parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `ltc generate`.
    Generate {
        /// Dataset family.
        preset: Preset,
        /// Down-scaling factor (1 = paper scale).
        scale: usize,
        /// RNG seed override.
        seed: Option<u64>,
        /// Tolerable error rate override.
        epsilon: Option<f64>,
        /// Output path (stdout when `None`).
        out: Option<String>,
    },
    /// `ltc run`.
    Run {
        /// Dataset path.
        input: String,
        /// Algorithm to execute.
        algo: AlgoChoice,
        /// Print extended statistics.
        stats: bool,
    },
    /// `ltc stream` (and `ltc snapshot`, which is `stream` with a
    /// mandatory snapshot destination).
    Stream {
        /// In-process dataset service or remote `ltc serve` session.
        source: StreamSource,
        /// Check-in source (`None` = stdin).
        checkins: Option<String>,
        /// Check-ins kept in flight across the session (1 = lockstep,
        /// byte-stable output).
        pipeline: usize,
        /// Requested remote submission window (1 = lockstep requests;
        /// clamped to what the server grants, always 1 in process).
        window: usize,
        /// Rebalance the shard stripes every this many accepted
        /// check-ins (`None` = never).
        rebalance: Option<u64>,
        /// Where to write the final service snapshot, if anywhere.
        snapshot_out: Option<String>,
        /// Where to write the final machine-readable metrics line, if
        /// anywhere.
        metrics_out: Option<String>,
    },
    /// `ltc resume`.
    Resume {
        /// Snapshot file written by `ltc snapshot`/`stream --snapshot-out`.
        snapshot: String,
        /// Check-in source (`None` = stdin).
        checkins: Option<String>,
        /// Check-ins kept in flight across the session.
        pipeline: usize,
        /// Rebalance the shard stripes every this many accepted
        /// check-ins (`None` = never).
        rebalance: Option<u64>,
        /// Where to write the updated snapshot, if anywhere.
        snapshot_out: Option<String>,
        /// Where to write the final machine-readable metrics line, if
        /// anywhere.
        metrics_out: Option<String>,
    },
    /// `ltc serve`.
    Serve {
        /// Dataset path providing parameters and tasks (worker records
        /// are ignored).
        input: String,
        /// Online algorithm driving the service.
        algo: AlgoChoice,
        /// RNG seed (only affects `random`).
        seed: u64,
        /// Engine shards the task pool is spatially partitioned over.
        shards: usize,
        /// The address to listen on (`HOST:PORT`; port 0 picks one).
        addr: String,
        /// Session capacity: 1 = the fixed single-session server
        /// (`open` refused), N > 1 = clients may open named sessions
        /// up to this many (the default session counts).
        max_sessions: usize,
        /// Evict non-default sessions with no attached client after
        /// this many idle seconds (`None` = never; requires a
        /// multi-session server).
        idle_timeout: Option<u64>,
        /// Durability options (`None` = serve without a WAL).
        wal: Option<WalChoice>,
    },
    /// `ltc sessions`.
    Sessions {
        /// The server address (`HOST:PORT`).
        addr: String,
    },
    /// `ltc recover`.
    Recover {
        /// The WAL directory to repair and replay.
        wal: String,
        /// Where to also write the recovered state as `ltc-snapshot v1`
        /// text, if anywhere.
        snapshot_out: Option<String>,
    },
    /// `ltc exact`.
    Exact {
        /// Dataset path.
        input: String,
        /// Branch-and-bound node budget.
        budget: u64,
    },
    /// `ltc simulate`.
    Simulate {
        /// Dataset path.
        input: String,
        /// Algorithm producing the arrangement.
        algo: AlgoChoice,
        /// Monte-Carlo trials.
        trials: usize,
        /// RNG seed.
        seed: u64,
    },
    /// `ltc bounds`.
    Bounds {
        /// Dataset path.
        input: String,
    },
    /// `ltc help`.
    Help,
}

/// A human-readable argument error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// A tiny flag cursor over `argv`.
struct Flags<'a> {
    rest: &'a [String],
}

impl<'a> Flags<'a> {
    fn value(&mut self, flag: &str) -> Result<Option<&'a str>, ParseError> {
        if let Some(pos) = self.rest.iter().position(|a| a == flag) {
            if pos + 1 >= self.rest.len() {
                return Err(ParseError(format!("{flag} needs a value")));
            }
            Ok(Some(&self.rest[pos + 1]))
        } else {
            Ok(None)
        }
    }

    fn present(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// Every flag must be consumed by the command's known set.
    fn reject_unknown(&self, known: &[&str]) -> Result<(), ParseError> {
        let mut i = 0;
        while i < self.rest.len() {
            let a = &self.rest[i];
            if !a.starts_with("--") {
                return Err(ParseError(format!("unexpected argument `{a}`")));
            }
            if !known.contains(&a.as_str()) {
                return Err(ParseError(format!("unknown flag `{a}`")));
            }
            // Boolean flags take no value; the others take exactly one.
            i += if a == "--stats" { 1 } else { 2 };
        }
        Ok(())
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("invalid {what}: `{s}`")))
}

impl Command {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Self, ParseError> {
        let Some(cmd) = argv.first() else {
            return Ok(Command::Help);
        };
        let mut flags = Flags { rest: &argv[1..] };
        match cmd.as_str() {
            "help" | "--help" | "-h" => Ok(Command::Help),
            "generate" => {
                flags.reject_unknown(&["--preset", "--scale", "--seed", "--epsilon", "--out"])?;
                let preset = Preset::parse(
                    flags
                        .value("--preset")?
                        .ok_or_else(|| ParseError("generate requires --preset".into()))?,
                )?;
                let scale = match flags.value("--scale")? {
                    Some(v) => parse_num::<usize>(v, "scale")?,
                    None => 1,
                };
                if scale == 0 {
                    return Err(ParseError("--scale must be positive".into()));
                }
                let seed = flags
                    .value("--seed")?
                    .map(|v| parse_num(v, "seed"))
                    .transpose()?;
                let epsilon = flags
                    .value("--epsilon")?
                    .map(|v| parse_num(v, "epsilon"))
                    .transpose()?;
                let out = flags.value("--out")?.map(str::to_string);
                Ok(Command::Generate {
                    preset,
                    scale,
                    seed,
                    epsilon,
                    out,
                })
            }
            "run" => {
                flags.reject_unknown(&["--input", "--algo", "--stats"])?;
                Ok(Command::Run {
                    input: required_input(&mut flags)?,
                    algo: AlgoChoice::parse(
                        flags
                            .value("--algo")?
                            .ok_or_else(|| ParseError("run requires --algo".into()))?,
                    )?,
                    stats: flags.present("--stats"),
                })
            }
            "stream" | "snapshot" => {
                let known: &[&str] = if cmd == "stream" {
                    &[
                        "--input",
                        "--algo",
                        "--connect",
                        "--session",
                        "--checkins",
                        "--seed",
                        "--shards",
                        "--pipeline",
                        "--window",
                        "--rebalance",
                        "--snapshot-out",
                        "--metrics-out",
                    ]
                } else {
                    &[
                        "--input",
                        "--algo",
                        "--connect",
                        "--session",
                        "--checkins",
                        "--seed",
                        "--shards",
                        "--pipeline",
                        "--window",
                        "--rebalance",
                        "--out",
                        "--metrics-out",
                    ]
                };
                flags.reject_unknown(known)?;
                let source = parse_stream_source(&mut flags, cmd)?;
                let pipeline = parse_pipeline(&mut flags)?;
                let window = parse_window(&mut flags)?;
                let rebalance = parse_rebalance(&mut flags)?;
                let snapshot_out = if cmd == "stream" {
                    flags.value("--snapshot-out")?.map(str::to_string)
                } else {
                    Some(
                        flags
                            .value("--out")?
                            .ok_or_else(|| ParseError("snapshot requires --out".into()))?
                            .to_string(),
                    )
                };
                Ok(Command::Stream {
                    source,
                    checkins: flags.value("--checkins")?.map(str::to_string),
                    pipeline,
                    window,
                    rebalance,
                    snapshot_out,
                    metrics_out: flags.value("--metrics-out")?.map(str::to_string),
                })
            }
            "resume" => {
                flags.reject_unknown(&[
                    "--snapshot",
                    "--checkins",
                    "--pipeline",
                    "--rebalance",
                    "--snapshot-out",
                    "--metrics-out",
                ])?;
                Ok(Command::Resume {
                    snapshot: flags
                        .value("--snapshot")?
                        .ok_or_else(|| ParseError("resume requires --snapshot FILE".into()))?
                        .to_string(),
                    checkins: flags.value("--checkins")?.map(str::to_string),
                    pipeline: parse_pipeline(&mut flags)?,
                    rebalance: parse_rebalance(&mut flags)?,
                    snapshot_out: flags.value("--snapshot-out")?.map(str::to_string),
                    metrics_out: flags.value("--metrics-out")?.map(str::to_string),
                })
            }
            "serve" => {
                flags.reject_unknown(&[
                    "--input",
                    "--algo",
                    "--addr",
                    "--seed",
                    "--shards",
                    "--max-sessions",
                    "--idle-timeout",
                    "--wal",
                    "--sync",
                    "--checkpoint-every",
                    "--checkpoint-format",
                ])?;
                let StreamSource::Dataset {
                    input,
                    algo,
                    seed,
                    shards,
                } = parse_stream_source(&mut flags, cmd)?
                else {
                    unreachable!("serve does not accept --connect");
                };
                let (max_sessions, idle_timeout) = parse_sessions(&mut flags)?;
                let wal = parse_wal(&mut flags)?;
                if max_sessions > 1 && wal.is_some() {
                    // Only the default session could be durable; refusing
                    // beats silently serving mixed durability guarantees.
                    return Err(ParseError(
                        "--max-sessions does not combine with --wal (dynamically opened \
                         sessions would not be durable)"
                            .into(),
                    ));
                }
                Ok(Command::Serve {
                    input,
                    algo,
                    seed,
                    shards,
                    addr: flags
                        .value("--addr")?
                        .ok_or_else(|| ParseError("serve requires --addr HOST:PORT".into()))?
                        .to_string(),
                    max_sessions,
                    idle_timeout,
                    wal,
                })
            }
            "sessions" => {
                flags.reject_unknown(&["--connect"])?;
                Ok(Command::Sessions {
                    addr: flags
                        .value("--connect")?
                        .ok_or_else(|| ParseError("sessions requires --connect HOST:PORT".into()))?
                        .to_string(),
                })
            }
            "recover" => {
                flags.reject_unknown(&["--wal", "--snapshot-out"])?;
                Ok(Command::Recover {
                    wal: flags
                        .value("--wal")?
                        .ok_or_else(|| ParseError("recover requires --wal DIR".into()))?
                        .to_string(),
                    snapshot_out: flags.value("--snapshot-out")?.map(str::to_string),
                })
            }
            "exact" => {
                flags.reject_unknown(&["--input", "--budget"])?;
                Ok(Command::Exact {
                    input: required_input(&mut flags)?,
                    budget: match flags.value("--budget")? {
                        Some(v) => parse_num(v, "budget")?,
                        None => 20_000_000,
                    },
                })
            }
            "simulate" => {
                flags.reject_unknown(&["--input", "--algo", "--trials", "--seed"])?;
                Ok(Command::Simulate {
                    input: required_input(&mut flags)?,
                    algo: AlgoChoice::parse(
                        flags
                            .value("--algo")?
                            .ok_or_else(|| ParseError("simulate requires --algo".into()))?,
                    )?,
                    trials: match flags.value("--trials")? {
                        Some(v) => parse_num(v, "trials")?,
                        None => 1000,
                    },
                    seed: match flags.value("--seed")? {
                        Some(v) => parse_num(v, "seed")?,
                        None => 42,
                    },
                })
            }
            "bounds" => {
                flags.reject_unknown(&["--input"])?;
                Ok(Command::Bounds {
                    input: required_input(&mut flags)?,
                })
            }
            other => Err(ParseError(format!("unknown command `{other}`"))),
        }
    }
}

/// The `--input --algo [--seed] [--shards]` vs `--connect` choice shared
/// by `stream`, `snapshot`, and (dataset half only) `serve`.
fn parse_stream_source(flags: &mut Flags<'_>, cmd: &str) -> Result<StreamSource, ParseError> {
    if let Some(addr) = flags.value("--connect")? {
        // The server owns the service configuration; accepting these
        // here would silently ignore them.
        for owned in ["--input", "--algo", "--shards", "--seed"] {
            if flags.present(owned) {
                return Err(ParseError(format!(
                    "--connect drives a remote `ltc serve` session, which already \
                     owns the service configuration; drop `{owned}`"
                )));
            }
        }
        return Ok(StreamSource::Connect {
            addr: addr.to_string(),
            session: flags.value("--session")?.map(str::to_string),
        });
    }
    if flags.present("--session") {
        return Err(ParseError(
            "--session names a session on a remote server; it requires --connect".into(),
        ));
    }
    let algo = AlgoChoice::parse(
        flags
            .value("--algo")?
            .ok_or_else(|| ParseError(format!("{cmd} requires --algo")))?,
    )?;
    if !matches!(algo, AlgoChoice::Aam | AlgoChoice::Laf | AlgoChoice::Random) {
        return Err(ParseError(format!(
            "{cmd} requires an online algorithm (aam, laf, random), got `{}`",
            algo.name()
        )));
    }
    let shards = match flags.value("--shards")? {
        Some(v) => parse_num::<usize>(v, "shards")?,
        None => 1,
    };
    if shards == 0 {
        return Err(ParseError("--shards must be positive".into()));
    }
    Ok(StreamSource::Dataset {
        input: required_input(flags)?,
        algo,
        seed: match flags.value("--seed")? {
            Some(v) => parse_num(v, "seed")?,
            None => 0x5EED,
        },
        shards,
    })
}

/// The `--max-sessions N [--idle-timeout SECS]` group of `serve`.
/// `--idle-timeout` is only meaningful on a multi-session server (the
/// default session is never evicted); given without `--max-sessions`
/// it would silently do nothing, so that is an error.
fn parse_sessions(flags: &mut Flags<'_>) -> Result<(usize, Option<u64>), ParseError> {
    let max_sessions = match flags.value("--max-sessions")? {
        Some(v) => {
            let n = parse_num::<usize>(v, "session capacity")?;
            if n == 0 {
                return Err(ParseError("--max-sessions must be positive".into()));
            }
            n
        }
        None => 1,
    };
    let idle_timeout = match flags.value("--idle-timeout")? {
        Some(v) => {
            if max_sessions <= 1 {
                return Err(ParseError(
                    "--idle-timeout requires --max-sessions N (N > 1); a single-session \
                     server never evicts its default session"
                        .into(),
                ));
            }
            let secs = parse_num::<u64>(v, "idle timeout")?;
            if secs == 0 {
                return Err(ParseError("--idle-timeout must be positive".into()));
            }
            Some(secs)
        }
        None => None,
    };
    Ok((max_sessions, idle_timeout))
}

/// The `--wal DIR [--sync POLICY] [--checkpoint-every N]
/// [--checkpoint-format F]` group of `serve`. The satellites are only
/// meaningful with `--wal`; given without it they would silently do
/// nothing, so that is an error.
fn parse_wal(flags: &mut Flags<'_>) -> Result<Option<WalChoice>, ParseError> {
    let Some(dir) = flags.value("--wal")? else {
        for needs_wal in ["--sync", "--checkpoint-every", "--checkpoint-format"] {
            if flags.present(needs_wal) {
                return Err(ParseError(format!("{needs_wal} requires --wal DIR")));
            }
        }
        return Ok(None);
    };
    let sync = match flags.value("--sync")? {
        Some(v) => SyncChoice::parse(v)?,
        None => SyncChoice::Os,
    };
    let checkpoint_every = match flags.value("--checkpoint-every")? {
        Some(v) => {
            let every = parse_num::<u64>(v, "checkpoint interval")?;
            if every == 0 {
                return Err(ParseError("--checkpoint-every must be positive".into()));
            }
            Some(every)
        }
        None => None,
    };
    let format = match flags.value("--checkpoint-format")? {
        Some(v) => CheckpointFormat::parse(v)?,
        None => CheckpointFormat::Text,
    };
    Ok(Some(WalChoice {
        dir: dir.to_string(),
        sync,
        checkpoint_every,
        format,
    }))
}

fn parse_pipeline(flags: &mut Flags<'_>) -> Result<usize, ParseError> {
    let pipeline = match flags.value("--pipeline")? {
        Some(v) => parse_num::<usize>(v, "pipeline depth")?,
        None => 1,
    };
    if pipeline == 0 {
        return Err(ParseError("--pipeline must be positive".into()));
    }
    Ok(pipeline)
}

fn parse_window(flags: &mut Flags<'_>) -> Result<usize, ParseError> {
    let window = match flags.value("--window")? {
        Some(v) => parse_num::<usize>(v, "submission window")?,
        None => 1,
    };
    if window == 0 {
        return Err(ParseError("--window must be positive".into()));
    }
    Ok(window)
}

fn parse_rebalance(flags: &mut Flags<'_>) -> Result<Option<u64>, ParseError> {
    match flags.value("--rebalance")? {
        Some(v) => {
            let every = parse_num::<u64>(v, "rebalance interval")?;
            if every == 0 {
                return Err(ParseError("--rebalance must be positive".into()));
            }
            Ok(Some(every))
        }
        None => Ok(None),
    }
}

fn required_input(flags: &mut Flags<'_>) -> Result<String, ParseError> {
    Ok(flags
        .value("--input")?
        .ok_or_else(|| ParseError("missing --input FILE".into()))?
        .to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn empty_argv_is_help() {
        assert_eq!(Command::parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn generate_with_all_flags() {
        let cmd = Command::parse(&argv(
            "generate --preset newyork --scale 8 --seed 9 --epsilon 0.1 --out f.tsv",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                preset: Preset::NewYork,
                scale: 8,
                seed: Some(9),
                epsilon: Some(0.1),
                out: Some("f.tsv".into()),
            }
        );
    }

    #[test]
    fn generate_defaults() {
        let cmd = Command::parse(&argv("generate --preset synthetic")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                preset: Preset::Synthetic,
                scale: 1,
                seed: None,
                epsilon: None,
                out: None,
            }
        );
    }

    #[test]
    fn run_parses_algo_aliases() {
        for (s, a) in [
            ("aam", AlgoChoice::Aam),
            ("mcf", AlgoChoice::McfLtc),
            ("mcf-ltc", AlgoChoice::McfLtc),
            ("base-off", AlgoChoice::BaseOff),
        ] {
            let cmd = Command::parse(&argv(&format!("run --input x.tsv --algo {s}"))).unwrap();
            assert_eq!(
                cmd,
                Command::Run {
                    input: "x.tsv".into(),
                    algo: a,
                    stats: false
                }
            );
        }
    }

    #[test]
    fn run_stats_flag() {
        let cmd = Command::parse(&argv("run --input x.tsv --algo laf --stats")).unwrap();
        assert!(matches!(cmd, Command::Run { stats: true, .. }));
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(Command::parse(&argv("generate")).is_err());
        assert!(Command::parse(&argv("run --algo aam")).is_err());
        assert!(Command::parse(&argv("run --input x.tsv")).is_err());
        assert!(Command::parse(&argv("simulate --input x.tsv")).is_err());
    }

    #[test]
    fn unknown_flags_and_commands_error() {
        assert!(Command::parse(&argv("frobnicate")).is_err());
        assert!(Command::parse(&argv("run --input x --algo aam --frob 1")).is_err());
        assert!(Command::parse(&argv("bounds --input x positional")).is_err());
    }

    #[test]
    fn dangling_value_errors() {
        assert!(Command::parse(&argv("generate --preset synthetic --scale")).is_err());
    }

    #[test]
    fn zero_scale_rejected() {
        assert!(Command::parse(&argv("generate --preset synthetic --scale 0")).is_err());
    }

    #[test]
    fn stream_parses_with_defaults() {
        let cmd = Command::parse(&argv("stream --input x.tsv --algo aam")).unwrap();
        assert_eq!(
            cmd,
            Command::Stream {
                source: StreamSource::Dataset {
                    input: "x.tsv".into(),
                    algo: AlgoChoice::Aam,
                    seed: 0x5EED,
                    shards: 1,
                },
                checkins: None,
                pipeline: 1,
                window: 1,
                rebalance: None,
                snapshot_out: None,
                metrics_out: None,
            }
        );
        let cmd = Command::parse(&argv(
            "stream --input x.tsv --algo random --checkins c.tsv --seed 7 --shards 4 \
             --pipeline 32 --snapshot-out s.ltc --metrics-out m.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Stream {
                source: StreamSource::Dataset {
                    input: "x.tsv".into(),
                    algo: AlgoChoice::Random,
                    seed: 7,
                    shards: 4,
                },
                checkins: Some("c.tsv".into()),
                pipeline: 32,
                window: 1,
                rebalance: None,
                snapshot_out: Some("s.ltc".into()),
                metrics_out: Some("m.json".into()),
            }
        );
    }

    #[test]
    fn stream_connect_replaces_the_service_configuration() {
        let cmd =
            Command::parse(&argv("stream --connect 127.0.0.1:7171 --checkins c.tsv")).unwrap();
        assert_eq!(
            cmd,
            Command::Stream {
                source: StreamSource::Connect {
                    addr: "127.0.0.1:7171".into(),
                    session: None,
                },
                checkins: Some("c.tsv".into()),
                pipeline: 1,
                window: 1,
                rebalance: None,
                snapshot_out: None,
                metrics_out: None,
            }
        );
        // The server owns the configuration: combining --connect with a
        // dataset flag is an error, not a silent ignore.
        for clash in [
            "stream --connect 127.0.0.1:1 --input x.tsv",
            "stream --connect 127.0.0.1:1 --algo laf",
            "stream --connect 127.0.0.1:1 --shards 4",
            "stream --connect 127.0.0.1:1 --seed 3",
            "serve --connect 127.0.0.1:1 --addr 127.0.0.1:0",
        ] {
            assert!(Command::parse(&argv(clash)).is_err(), "{clash}");
        }
        // snapshot --connect still needs its local --out.
        let cmd = Command::parse(&argv("snapshot --connect 127.0.0.1:7171 --out s.ltc")).unwrap();
        assert!(matches!(
            cmd,
            Command::Stream {
                source: StreamSource::Connect { .. },
                snapshot_out: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn serve_parses_and_requires_addr() {
        let cmd = Command::parse(&argv(
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --shards 4 --seed 9",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                input: "x.tsv".into(),
                algo: AlgoChoice::Laf,
                seed: 9,
                shards: 4,
                addr: "127.0.0.1:0".into(),
                max_sessions: 1,
                idle_timeout: None,
                wal: None,
            }
        );
        assert!(Command::parse(&argv("serve --input x.tsv --algo laf")).is_err());
        assert!(Command::parse(&argv("serve --algo laf --addr 127.0.0.1:0")).is_err());
        assert!(
            Command::parse(&argv(
                "serve --input x.tsv --algo mcf-ltc --addr 127.0.0.1:0"
            ))
            .is_err(),
            "serve requires an online algorithm"
        );
    }

    #[test]
    fn serve_session_group_parses_and_validates() {
        let cmd = Command::parse(&argv(
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --max-sessions 8 --idle-timeout 30",
        ))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Serve {
                max_sessions: 8,
                idle_timeout: Some(30),
                ..
            }
        ));
        for bad in [
            // Idle eviction is meaningless on a single-session server.
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --idle-timeout 30",
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --max-sessions 1 --idle-timeout 30",
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --max-sessions 0",
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --max-sessions 2 --idle-timeout 0",
            // Dynamically opened sessions would not be durable.
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --max-sessions 2 --wal w",
        ] {
            assert!(Command::parse(&argv(bad)).is_err(), "{bad}");
        }
    }

    #[test]
    fn stream_session_flag_requires_connect_and_sessions_parses() {
        let cmd = Command::parse(&argv("stream --connect 127.0.0.1:7171 --session west")).unwrap();
        assert!(matches!(
            cmd,
            Command::Stream {
                source: StreamSource::Connect { ref session, .. },
                ..
            } if session.as_deref() == Some("west")
        ));
        assert!(Command::parse(&argv("stream --input x.tsv --algo laf --session west")).is_err());
        assert_eq!(
            Command::parse(&argv("sessions --connect 127.0.0.1:7171")).unwrap(),
            Command::Sessions {
                addr: "127.0.0.1:7171".into(),
            }
        );
        assert!(Command::parse(&argv("sessions")).is_err());
    }

    #[test]
    fn serve_wal_group_parses_with_defaults_and_overrides() {
        let cmd = Command::parse(&argv(
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --wal w",
        ))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Serve {
                wal: Some(WalChoice {
                    ref dir,
                    sync: SyncChoice::Os,
                    checkpoint_every: None,
                    format: CheckpointFormat::Text,
                }),
                ..
            } if dir == "w"
        ));
        let cmd = Command::parse(&argv(
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --wal w \
             --sync every=64 --checkpoint-every 100 --checkpoint-format binary",
        ))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Serve {
                wal: Some(WalChoice {
                    sync: SyncChoice::Every(64),
                    checkpoint_every: Some(100),
                    format: CheckpointFormat::Binary,
                    ..
                }),
                ..
            }
        ));
    }

    #[test]
    fn sync_policies_parse_and_reject_nonsense() {
        assert_eq!(SyncChoice::parse("always").unwrap(), SyncChoice::Always);
        assert_eq!(SyncChoice::parse("os").unwrap(), SyncChoice::Os);
        assert_eq!(
            SyncChoice::parse("every=32").unwrap(),
            SyncChoice::Every(32)
        );
        assert_eq!(SyncChoice::parse("8").unwrap(), SyncChoice::Every(8));
        assert!(SyncChoice::parse("every=0").is_err());
        assert!(SyncChoice::parse("sometimes").is_err());
    }

    #[test]
    fn wal_satellite_flags_require_wal() {
        for orphan in [
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --sync os",
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --checkpoint-every 10",
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --checkpoint-format text",
        ] {
            assert!(Command::parse(&argv(orphan)).is_err(), "{orphan}");
        }
        assert!(Command::parse(&argv(
            "serve --input x.tsv --algo laf --addr 127.0.0.1:0 --wal w --checkpoint-every 0"
        ))
        .is_err());
    }

    #[test]
    fn recover_parses_and_requires_wal() {
        let cmd = Command::parse(&argv("recover --wal w --snapshot-out s.ltc")).unwrap();
        assert_eq!(
            cmd,
            Command::Recover {
                wal: "w".into(),
                snapshot_out: Some("s.ltc".into()),
            }
        );
        assert!(Command::parse(&argv("recover")).is_err());
        assert!(Command::parse(&argv("recover --snapshot-out s.ltc")).is_err());
    }

    #[test]
    fn rebalance_interval_parses_and_rejects_zero() {
        let cmd = Command::parse(&argv(
            "stream --input x.tsv --algo laf --shards 4 --rebalance 500",
        ))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Stream {
                rebalance: Some(500),
                source: StreamSource::Dataset { shards: 4, .. },
                ..
            }
        ));
        let cmd = Command::parse(&argv("resume --snapshot s.ltc --rebalance 100")).unwrap();
        assert!(matches!(
            cmd,
            Command::Resume {
                rebalance: Some(100),
                ..
            }
        ));
        assert!(Command::parse(&argv("stream --input x.tsv --algo laf --rebalance 0")).is_err());
        assert!(Command::parse(&argv("run --input x.tsv --algo laf --rebalance 5")).is_err());
    }

    #[test]
    fn window_parses_and_rejects_zero() {
        let cmd = Command::parse(&argv("stream --connect 127.0.0.1:7171 --window 256")).unwrap();
        assert!(matches!(cmd, Command::Stream { window: 256, .. }));
        // Accepted (and harmless) in process, where the session grants 1.
        let cmd = Command::parse(&argv("stream --input x.tsv --algo aam --window 16")).unwrap();
        assert!(matches!(cmd, Command::Stream { window: 16, .. }));
        assert!(Command::parse(&argv(
            "snapshot --connect 127.0.0.1:1 --out s.ltc --window 16"
        ))
        .is_ok());
        assert!(Command::parse(&argv("stream --input x.tsv --algo aam --window 0")).is_err());
        // resume drives an in-process session only — no window flag.
        assert!(Command::parse(&argv("resume --snapshot s.ltc --window 4")).is_err());
    }

    #[test]
    fn stream_rejects_offline_algorithms() {
        let err = Command::parse(&argv("stream --input x.tsv --algo mcf-ltc")).unwrap_err();
        assert!(err.to_string().contains("online algorithm"));
        assert!(Command::parse(&argv("stream --algo aam")).is_err());
        assert!(Command::parse(&argv("stream --input x.tsv --algo aam --shards 0")).is_err());
        assert!(Command::parse(&argv("stream --input x.tsv --algo aam --pipeline 0")).is_err());
    }

    #[test]
    fn snapshot_requires_out_and_resume_requires_snapshot() {
        let cmd = Command::parse(&argv("snapshot --input x.tsv --algo laf --out s.ltc")).unwrap();
        assert_eq!(
            cmd,
            Command::Stream {
                source: StreamSource::Dataset {
                    input: "x.tsv".into(),
                    algo: AlgoChoice::Laf,
                    seed: 0x5EED,
                    shards: 1,
                },
                checkins: None,
                pipeline: 1,
                window: 1,
                rebalance: None,
                snapshot_out: Some("s.ltc".into()),
                metrics_out: None,
            }
        );
        assert!(Command::parse(&argv("snapshot --input x.tsv --algo laf")).is_err());

        let cmd = Command::parse(&argv(
            "resume --snapshot s.ltc --checkins c.tsv --pipeline 8 --snapshot-out s2.ltc",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Resume {
                snapshot: "s.ltc".into(),
                checkins: Some("c.tsv".into()),
                pipeline: 8,
                rebalance: None,
                snapshot_out: Some("s2.ltc".into()),
                metrics_out: None,
            }
        );
        assert!(Command::parse(&argv("resume --checkins c.tsv")).is_err());
    }

    #[test]
    fn simulate_defaults() {
        let cmd = Command::parse(&argv("simulate --input d.tsv --algo random")).unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                input: "d.tsv".into(),
                algo: AlgoChoice::Random,
                trials: 1000,
                seed: 42,
            }
        );
    }
}
