//! Execution of parsed `ltc` commands.

use crate::args::{
    AlgoChoice, CheckpointFormat, Command, Preset, StreamSource, SyncChoice, WalChoice,
};
use ltc_core::bounds::{batch_size, latency_lower_bound, latency_upper_bound};
use ltc_core::metrics::ArrangementStats;
use ltc_core::model::{Instance, RunOutcome, Worker};
use ltc_core::offline::{BaseOff, ExactSolver, McfLtc};
use ltc_core::online::{run_online, Aam, Laf, RandomAssign};
use ltc_core::service::{
    Algorithm, Event, EventStream, ServiceBuilder, ServiceError, ServiceHandle, ServiceMetrics,
    Session, StreamEvent, WindowAck,
};
use ltc_core::snapshot as snapshot_format;
use ltc_durable::{DurableHandle, DurableOptions, SnapshotFormat, SyncPolicy};
use ltc_proto::{LtcClient, LtcServer, SessionConfig, SessionFactory, SessionTable};
use ltc_sim::{infer_em, infer_majority, simulate, AnswerSet, EmConfig, GroundTruth};
use ltc_spatial::Point;
use ltc_workload::{dataset, CheckinCityConfig, SyntheticConfig};
use std::error::Error;
use std::io::{BufRead, Write};
use std::num::NonZeroUsize;

type CmdResult = Result<(), Box<dyn Error>>;

/// Executes one parsed command, writing its report to `out`.
pub fn execute(cmd: Command, out: &mut dyn Write) -> CmdResult {
    match cmd {
        Command::Help => unreachable!("handled by the entry point"),
        Command::Generate {
            preset,
            scale,
            seed,
            epsilon,
            out: path,
        } => generate(preset, scale, seed, epsilon, path, out),
        Command::Run { input, algo, stats } => run_algo(&input, algo, stats, out),
        Command::Stream {
            source,
            checkins,
            pipeline,
            window,
            rebalance,
            snapshot_out,
            metrics_out,
        } => stream_cmd(
            &source,
            checkins.as_deref(),
            pipeline,
            window,
            rebalance,
            snapshot_out.as_deref(),
            metrics_out.as_deref(),
            out,
        ),
        Command::Resume {
            snapshot,
            checkins,
            pipeline,
            rebalance,
            snapshot_out,
            metrics_out,
        } => resume_cmd(
            &snapshot,
            checkins.as_deref(),
            pipeline,
            rebalance,
            snapshot_out.as_deref(),
            metrics_out.as_deref(),
            out,
        ),
        Command::Serve {
            input,
            algo,
            seed,
            shards,
            addr,
            max_sessions,
            idle_timeout,
            wal,
        } => serve_cmd(
            &input,
            algo,
            seed,
            shards,
            &addr,
            max_sessions,
            idle_timeout,
            wal,
            out,
        ),
        Command::Sessions { addr } => sessions_cmd(&addr, out),
        Command::Recover { wal, snapshot_out } => recover_cmd(&wal, snapshot_out.as_deref(), out),
        Command::Exact { input, budget } => exact(&input, budget, out),
        Command::Simulate {
            input,
            algo,
            trials,
            seed,
        } => simulate_cmd(&input, algo, trials, seed, out),
        Command::Bounds { input } => bounds(&input, out),
    }
}

fn load(path: &str) -> Result<Instance, Box<dyn Error>> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
    Ok(dataset::read_tsv(std::io::BufReader::new(file))?)
}

fn run_choice(instance: &Instance, algo: AlgoChoice) -> RunOutcome {
    match algo {
        AlgoChoice::Aam => run_online(instance, &mut Aam::new()),
        AlgoChoice::Laf => run_online(instance, &mut Laf::new()),
        AlgoChoice::Random => run_online(instance, &mut RandomAssign::new()),
        AlgoChoice::McfLtc => McfLtc::new().run(instance),
        AlgoChoice::BaseOff => BaseOff::new().run(instance),
    }
}

fn generate(
    preset: Preset,
    scale: usize,
    seed: Option<u64>,
    epsilon: Option<f64>,
    path: Option<String>,
    out: &mut dyn Write,
) -> CmdResult {
    let instance = match preset {
        Preset::Synthetic => {
            let mut cfg = SyntheticConfig::default().scaled_down(scale);
            if let Some(s) = seed {
                cfg.seed = s;
            }
            if let Some(e) = epsilon {
                cfg.epsilon = e;
            }
            cfg.generate()
        }
        Preset::NewYork | Preset::Tokyo => {
            let base = if preset == Preset::NewYork {
                CheckinCityConfig::new_york_like()
            } else {
                CheckinCityConfig::tokyo_like()
            };
            let mut cfg = base.scaled_down(scale);
            if let Some(s) = seed {
                cfg.seed = s;
            }
            if let Some(e) = epsilon {
                cfg.epsilon = e;
            }
            cfg.generate()
        }
    };
    match path {
        Some(p) => {
            let file =
                std::fs::File::create(&p).map_err(|e| format!("cannot create `{p}`: {e}"))?;
            dataset::write_tsv(&instance, std::io::BufWriter::new(file))?;
            writeln!(
                out,
                "wrote {} tasks, {} workers to {p}",
                instance.n_tasks(),
                instance.n_workers()
            )?;
        }
        None => dataset::write_tsv(&instance, &mut *out)?,
    }
    Ok(())
}

fn run_algo(input: &str, algo: AlgoChoice, stats: bool, out: &mut dyn Write) -> CmdResult {
    let instance = load(input)?;
    let started = std::time::Instant::now(); // ltc-lint: allow(L006) informational elapsed-time line in CLI output; assignments never read it
    let outcome = run_choice(&instance, algo);
    let elapsed = started.elapsed().as_secs_f64();
    writeln!(
        out,
        "{} on {} tasks / {} workers (δ = {:.3})",
        algo.name(),
        instance.n_tasks(),
        instance.n_workers(),
        instance.delta()
    )?;
    match outcome.latency() {
        Some(l) => writeln!(out, "latency (max worker index): {l}")?,
        None => writeln!(
            out,
            "INCOMPLETE: the stream ended before all tasks reached δ"
        )?,
    }
    writeln!(
        out,
        "assignments: {}, elapsed: {elapsed:.4}s",
        outcome.arrangement.len()
    )?;
    if stats {
        let s = ArrangementStats::new(&instance, &outcome.arrangement);
        writeln!(out, "recruited workers: {}", s.recruited_workers)?;
        writeln!(
            out,
            "capacity utilization: {:.1}%",
            100.0 * s.capacity_utilization()
        )?;
        if let (Some(p50), Some(p90), Some(mean)) = (
            s.latency_quantile(0.5),
            s.latency_quantile(0.9),
            s.mean_latency(),
        ) {
            writeln!(
                out,
                "per-task latency: mean {mean:.1}, p50 {p50}, p90 {p90}"
            )?;
        }
        if let Some(over) = s.mean_overshoot() {
            writeln!(out, "mean quality overshoot: {over:.3} above δ")?;
        }
    }
    Ok(())
}

/// Parses one check-in line: `x y accuracy` (tab- or space-separated),
/// optionally prefixed with the dataset's `worker` record tag.
fn parse_checkin(line: &str, lineno: usize) -> Result<Worker, String> {
    let mut fields = line.split_whitespace().peekable();
    if fields.peek() == Some(&"worker") {
        fields.next();
    }
    let mut next_f64 = |name: &str| -> Result<f64, String> {
        fields
            .next()
            .ok_or_else(|| format!("check-in line {lineno}: missing `{name}`"))?
            .parse::<f64>()
            .map_err(|e| format!("check-in line {lineno}: bad `{name}`: {e}"))
    };
    let x = next_f64("x")?;
    let y = next_f64("y")?;
    let accuracy = next_f64("accuracy")?;
    let loc = Point::new(x, y);
    if !loc.is_finite() {
        return Err(format!("check-in line {lineno}: non-finite location"));
    }
    if !accuracy.is_finite() || !(0.0..=1.0).contains(&accuracy) {
        return Err(format!(
            "check-in line {lineno}: accuracy {accuracy} outside [0, 1]"
        ));
    }
    Ok(Worker::new(loc, accuracy))
}

/// Appends one worker's events as an NDJSON line (only when something was
/// assigned — idle check-ins stay silent, matching the engine-era format).
fn write_stream_event(out: &mut dyn Write, worker_idx: u64, events: &[Event]) -> CmdResult {
    if !events.iter().any(|e| matches!(e, Event::Assigned { .. })) {
        return Ok(());
    }
    write!(out, "{{\"worker\":{worker_idx},\"assignments\":[")?;
    let mut first = true;
    for e in events {
        if let Event::Assigned {
            task, acc, gain, ..
        } = e
        {
            if !first {
                write!(out, ",")?;
            }
            write!(
                out,
                "{{\"task\":{},\"acc\":{acc:.6},\"contribution\":{gain:.6}}}",
                task.0
            )?;
            first = false;
        }
    }
    write!(out, "],\"newly_completed\":[")?;
    let mut first = true;
    for e in events {
        if let Event::TaskCompleted { task, .. } = e {
            if !first {
                write!(out, ",")?;
            }
            write!(out, "{}", task.0)?;
            first = false;
        }
    }
    writeln!(out, "]}}")?;
    Ok(())
}

/// Maps a CLI algorithm choice onto a service policy.
fn service_algorithm(algo: AlgoChoice, seed: u64) -> Algorithm {
    match algo {
        AlgoChoice::Aam => Algorithm::Aam,
        AlgoChoice::Laf => Algorithm::Laf,
        AlgoChoice::Random => Algorithm::Random { seed },
        AlgoChoice::McfLtc | AlgoChoice::BaseOff => {
            unreachable!("argument parsing restricts streaming to online algorithms")
        }
    }
}

/// Builds the pipelined in-process session `stream`/`snapshot`/`serve`
/// run on a dataset.
fn start_dataset_session(
    input: &str,
    algo: AlgoChoice,
    seed: u64,
    shards: usize,
) -> Result<ServiceHandle, Box<dyn Error>> {
    let instance = load(input)?;
    Ok(ServiceBuilder::from_instance(&instance)
        .algorithm(service_algorithm(algo, seed))
        .shards(NonZeroUsize::new(shards).ok_or("--shards must be positive")?)
        .start()?)
}

/// `ltc stream` / `ltc snapshot`: serve a line-by-line check-in stream
/// through a [`Session`] — the in-process pipelined runtime for
/// `--input`, a remote `ltc serve` process for `--connect`; both run
/// the same [`drive_stream`] code path and emit identical NDJSON.
#[allow(clippy::too_many_arguments)]
fn stream_cmd(
    source: &StreamSource,
    checkins: Option<&str>,
    pipeline: usize,
    window: usize,
    rebalance: Option<u64>,
    snapshot_out: Option<&str>,
    metrics_out: Option<&str>,
    out: &mut dyn Write,
) -> CmdResult {
    let mut session: Box<dyn Session> = match source {
        StreamSource::Dataset {
            input,
            algo,
            seed,
            shards,
        } => Box::new(start_dataset_session(input, *algo, *seed, *shards)?),
        StreamSource::Connect { addr, session } => match session {
            // Windowed submission rides the `v2` `"seq"` member, so a
            // window above 1 upgrades the bare connection to `v2` (still
            // bound to the default session — same NDJSON, byte for byte).
            None if window <= 1 => Box::new(
                LtcClient::connect(addr.as_str())
                    .map_err(|e| format!("cannot reach `{addr}`: {e}"))?,
            ),
            None => Box::new(
                LtcClient::connect_v2(addr.as_str())
                    .map_err(|e| format!("cannot reach `{addr}`: {e}"))?,
            ),
            Some(name) => Box::new(connect_session(addr, name)?),
        },
    };
    drive_stream(
        session.as_mut(),
        checkins,
        pipeline,
        window,
        rebalance,
        snapshot_out,
        metrics_out,
        out,
    )
}

/// `ltc resume`: restore a session from a snapshot file and keep
/// streaming (through the same `dyn Session` path as `stream`).
fn resume_cmd(
    snapshot: &str,
    checkins: Option<&str>,
    pipeline: usize,
    rebalance: Option<u64>,
    snapshot_out: Option<&str>,
    metrics_out: Option<&str>,
    out: &mut dyn Write,
) -> CmdResult {
    let file =
        std::fs::File::open(snapshot).map_err(|e| format!("cannot open `{snapshot}`: {e}"))?;
    let decoded = snapshot_format::read_snapshot(std::io::BufReader::new(file))?;
    let mut session: Box<dyn Session> = Box::new(ServiceHandle::restore(decoded)?);
    drive_stream(
        session.as_mut(),
        checkins,
        pipeline,
        1,
        rebalance,
        snapshot_out,
        metrics_out,
        out,
    )
}

/// Translates the CLI's durability flags into `ltc-durable` terms.
fn durable_options(choice: &WalChoice) -> DurableOptions {
    DurableOptions {
        sync: match choice.sync {
            SyncChoice::Always => SyncPolicy::Always,
            SyncChoice::Every(n) => SyncPolicy::Every(n),
            SyncChoice::Os => SyncPolicy::Os,
        },
        checkpoint_every: choice
            .checkpoint_every
            .unwrap_or(ltc_durable::DEFAULT_CHECKPOINT_EVERY),
        format: match choice.format {
            CheckpointFormat::Text => SnapshotFormat::Text,
            CheckpointFormat::Binary => SnapshotFormat::Binary,
        },
    }
}

/// Builds the session factory a multi-session server opens named
/// sessions through: every session starts from the serve command's
/// dataset template (same problem parameters, region, tasks) with the
/// open request's algorithm/shard/region overrides applied.
fn session_factory(template: ServiceBuilder) -> SessionFactory {
    Box::new(move |config: &SessionConfig| {
        let mut builder = template.clone();
        if let Some(algorithm) = config.algorithm {
            builder = builder.algorithm(algorithm);
        }
        if let Some(shards) = config.shards {
            let shards = NonZeroUsize::new(shards)
                .ok_or_else(|| ServiceError::Session("shards must be positive".into()))?;
            builder = builder.shards(shards);
        }
        if let Some(region) = config.region {
            builder = builder.region(region);
        }
        Ok(Box::new(builder.start()?))
    })
}

/// `ltc serve`: build the service exactly like `stream --input` would
/// and expose it over TCP (`ltc-proto`) until a client requests
/// shutdown. The bound address is printed (and flushed) first, so
/// scripts may bind port 0 and read the real port back.
///
/// With `--max-sessions N` the server carries a [`SessionTable`] with a
/// factory: `ltc-proto v2` clients may open up to N named sessions,
/// each a fresh service built from the dataset template. Idle evictions
/// (`--idle-timeout`) are announced as NDJSON lines on **stderr** (the
/// stdout NDJSON stream belongs to the banner protocol, and the
/// eviction fires on the reaper thread).
///
/// With `--wal DIR` the session is wrapped in a
/// [`DurableHandle`]: a fresh directory is initialized from the
/// dataset, while a directory that already holds a log is *resumed* —
/// recovered, replayed, re-checkpointed — and `--input` is only used
/// if the directory is fresh.
#[allow(clippy::too_many_arguments)]
fn serve_cmd(
    input: &str,
    algo: AlgoChoice,
    seed: u64,
    shards: usize,
    addr: &str,
    max_sessions: usize,
    idle_timeout: Option<u64>,
    wal: Option<WalChoice>,
    out: &mut dyn Write,
) -> CmdResult {
    let bind_failed = |e: std::io::Error| format!("cannot bind `{addr}`: {e}");
    let (server, n_shards, n_tasks, mut notes) = match &wal {
        None => {
            let instance = load(input)?;
            let template = ServiceBuilder::from_instance(&instance)
                .algorithm(service_algorithm(algo, seed))
                .shards(NonZeroUsize::new(shards).ok_or("--shards must be positive")?);
            let handle = template.clone().start()?;
            let (n_shards, n_tasks) = (handle.n_shards(), handle.n_tasks() as u64);
            let server = if max_sessions > 1 {
                let table = SessionTable::with_factory(
                    handle,
                    session_factory(template),
                    max_sessions,
                    idle_timeout.map(std::time::Duration::from_secs),
                )
                .on_evict(|sid| {
                    let mut line = String::from("{\"session_evicted\":true,\"sid\":");
                    ltc_proto::json::push_escaped(&mut line, sid);
                    line.push('}');
                    let mut err = std::io::stderr().lock();
                    writeln!(err, "{line}").ok();
                });
                LtcServer::bind_table(addr, table)
            } else {
                LtcServer::bind(addr, handle)
            }
            .map_err(bind_failed)?;
            (server, n_shards, n_tasks, String::new())
        }
        Some(choice) => {
            let dir = std::path::Path::new(&choice.dir);
            let options = durable_options(choice);
            let mut wal_note = String::from(",\"wal\":");
            ltc_proto::json::push_escaped(&mut wal_note, &choice.dir);
            let session = if DurableHandle::is_initialized(dir) {
                let (session, report) = DurableHandle::resume(dir, options)?;
                wal_note.push_str(&format!(
                    ",\"resumed\":true,\"replayed\":{},\"truncated_bytes\":{}",
                    report.replayed, report.truncated_bytes
                ));
                session
            } else {
                let handle = start_dataset_session(input, algo, seed, shards)?;
                DurableHandle::create(handle, dir, options)?
            };
            let info = session.info();
            let server = LtcServer::bind(addr, session).map_err(bind_failed)?;
            (server, info.n_shards, info.n_tasks, wal_note)
        }
    };
    if max_sessions > 1 {
        notes.push_str(&format!(",\"max_sessions\":{max_sessions}"));
        if let Some(secs) = idle_timeout {
            notes.push_str(&format!(",\"idle_timeout_s\":{secs}"));
        }
    }
    writeln!(
        out,
        "{{\"serve\":true,\"addr\":\"{}\",\"algo\":\"{}\",\"shards\":{n_shards},\
         \"tasks\":{n_tasks}{notes}}}",
        server.local_addr(),
        algo.name()
    )?;
    out.flush()?;
    server.run()?;
    writeln!(out, "{{\"serve_stopped\":true}}")?;
    Ok(())
}

/// Connects an `ltc-proto v2` client bound to the named session,
/// opening it (with the server's template configuration) if the server
/// does not carry it yet. The open is raced against concurrent
/// openers: losing the race falls back to attaching to the winner's
/// session.
fn connect_session(addr: &str, name: &str) -> Result<LtcClient, Box<dyn Error>> {
    let mut client =
        LtcClient::connect_v2(addr).map_err(|e| format!("cannot reach `{addr}`: {e}"))?;
    if client.attach_session(name).is_ok() {
        return Ok(client);
    }
    match client.open_session(name, &SessionConfig::default()) {
        Ok(_) => Ok(client),
        Err(open_err) => {
            // A concurrent opener may have won the race after our
            // attach probe; attaching to its session is the intent.
            client
                .attach_session(name)
                .map_err(|_| format!("cannot bind session `{name}` on `{addr}`: {open_err}"))?;
            Ok(client)
        }
    }
}

/// `ltc sessions`: list a server's live sessions, one NDJSON line per
/// session (name order), plus a `sessions` summary line.
fn sessions_cmd(addr: &str, out: &mut dyn Write) -> CmdResult {
    let mut client =
        LtcClient::connect_v2(addr).map_err(|e| format!("cannot reach `{addr}`: {e}"))?;
    let sessions = client.list_sessions()?;
    for stat in &sessions {
        let mut line = String::from("{\"session\":");
        ltc_proto::json::push_escaped(&mut line, &stat.sid);
        line.push_str(&format!(
            ",\"algo\":\"{}\",\"shards\":{},\"tasks\":{},\"attached\":{}}}",
            stat.algorithm.name(),
            stat.n_shards,
            stat.n_tasks,
            stat.attached
        ));
        writeln!(out, "{line}")?;
    }
    writeln!(out, "{{\"sessions\":true,\"open\":{}}}", sessions.len())?;
    Ok(())
}

/// `ltc recover`: run crash recovery on a `--wal` directory without
/// serving — repair a torn tail, restore the newest checkpoint, replay
/// the log suffix, seal the result under a fresh covering checkpoint,
/// and compact. Idempotent, and exactly what a `serve --wal` restart
/// would do first; running it separately lets an operator inspect the
/// outcome (or export `--snapshot-out` for `ltc resume`) before
/// bringing the service back.
fn recover_cmd(wal: &str, snapshot_out: Option<&str>, out: &mut dyn Write) -> CmdResult {
    let dir = std::path::Path::new(wal);
    let (mut session, report) = DurableHandle::resume(dir, DurableOptions::default())?;
    if let Some(path) = snapshot_out {
        let snap = session.snapshot()?;
        let file =
            std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
        let mut file = std::io::BufWriter::new(file);
        snapshot_format::write_snapshot(&snap, &mut file)?;
        file.flush()?;
    }
    session.shutdown()?;
    let mut dir_json = String::new();
    ltc_proto::json::push_escaped(&mut dir_json, wal);
    writeln!(
        out,
        "{{\"recover\":true,\"wal\":{dir_json},\"checkpoint_seq\":{},\
         \"checkpoints_skipped\":{},\"replayed\":{},\"truncated_bytes\":{},\"next_seq\":{}}}",
        report.checkpoint_seq,
        report.checkpoints_skipped,
        report.replayed,
        report.truncated_bytes,
        report.next_seq
    )?;
    Ok(())
}

/// Blocks until one of *our own* submitted check-ins finishes on the
/// subscription, writes its NDJSON line, and decrements the in-flight
/// count. Returns how many task completions were observed along the way
/// (including ones committed by other clients of a shared remote
/// session, whose worker events are otherwise skipped — this stream
/// only reports the check-ins it submitted, but completion is global).
fn pump_worker_event(
    events: &EventStream,
    mine: &mut std::collections::HashSet<u64>,
    in_flight: &mut usize,
    out: &mut dyn Write,
) -> Result<u64, Box<dyn Error>> {
    let mut completed = 0u64;
    loop {
        let Some(delivery) = events.next_event() else {
            return Err("the session stopped mid-stream".into());
        };
        if let StreamEvent::Worker { worker, events } = delivery {
            completed += events
                .iter()
                .filter(|e| matches!(e, Event::TaskCompleted { .. }))
                .count() as u64;
            if mine.remove(&worker.0) {
                write_stream_event(out, worker.0, &events)?;
                *in_flight -= 1;
                return Ok(completed);
            }
        }
        // Lifecycle notices, task posts, and other clients' check-ins
        // carry no NDJSON line here.
    }
}

/// Writes the final machine-readable metrics line (`--metrics-out`):
/// everything a bench harness wants to scrape, deterministic — no
/// timing fields.
fn write_metrics_line(path: &str, algo: &str, m: &ServiceMetrics) -> CmdResult {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
    let mut file = std::io::BufWriter::new(file);
    write!(
        file,
        "{{\"metrics\":true,\"algo\":\"{algo}\",\"workers\":{},\"assignments\":{},\
         \"tasks\":{},\"completed_tasks\":{},\"clamped_insertions\":{},\"rebalances\":{},\
         \"shard_loads\":[",
        m.n_workers_seen,
        m.n_assignments,
        m.n_tasks,
        m.n_completed,
        m.clamped_insertions,
        m.rebalances
    )?;
    for (i, load) in m.shard_loads.iter().enumerate() {
        if i > 0 {
            write!(file, ",")?;
        }
        write!(file, "{load}")?;
    }
    match m.latency {
        Some(l) => write!(file, "],\"latency\":{l}")?,
        None => write!(file, "],\"latency\":null")?,
    }
    writeln!(
        file,
        ",\"wal_records\":{},\"checkpoints\":{},\"sessions_open\":{},\"sessions_evicted\":{}}}",
        m.wal_records, m.checkpoints, m.sessions_open, m.sessions_evicted
    )?;
    // Surface buffered-write failures (ENOSPC at drop time would
    // otherwise vanish and leave a truncated file behind an exit 0).
    file.flush()?;
    Ok(())
}

/// Collects the worker arrival ids out of a batch of deferred window
/// acknowledgements (`drive_stream` submits no tasks, so only worker
/// acks can appear).
fn register_acks(acks: Vec<WindowAck>, mine: &mut std::collections::HashSet<u64>) {
    for ack in acks {
        if let WindowAck::Worker(id) = ack {
            mine.insert(id.0);
        }
    }
}

/// The shared streaming loop behind `stream`, `snapshot`, and `resume`
/// — written against `dyn Session`, so the in-process runtime and a
/// remote `ltc serve` session run the *same* code path and emit
/// byte-identical NDJSON (differentially tested). Submissions keep up
/// to `pipeline` check-ins in flight (1 = lockstep); each worker's
/// events are written the moment they are delivered, which the session
/// contract guarantees is submission order. Completion is tracked from
/// the delivered events themselves (the session's counters may lag
/// in-flight work, and polling a remote one per line would cost a round
/// trip).
///
/// A `window` above 1 additionally batches *submissions*: up to
/// `max(window, pipeline)` check-ins are fired through
/// [`Session::submit_worker_windowed`] before the loop stops to collect
/// their deferred acknowledgements and pump their events — the acks must
/// land first, because the subscription is filtered by the arrival ids
/// they carry. Near the end of the instance the batch shrinks to
/// `ceil(remaining_tasks / capacity)`, so the window never submits a
/// check-in lockstep would not have read. Output stays byte-identical
/// to lockstep, summary line included: events are still written in
/// submission order, only the request/ack cadence changes.
#[allow(clippy::too_many_arguments)]
fn drive_stream(
    session: &mut dyn Session,
    checkins: Option<&str>,
    pipeline: usize,
    window: usize,
    rebalance_every: Option<u64>,
    snapshot_out: Option<&str>,
    metrics_out: Option<&str>,
    out: &mut dyn Write,
) -> CmdResult {
    let stdin;
    let file;
    let reader: Box<dyn BufRead> = match checkins {
        Some(path) => {
            file = std::fs::File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
            Box::new(std::io::BufReader::new(file))
        }
        None => {
            stdin = std::io::stdin();
            Box::new(stdin.lock())
        }
    };

    let info = session.info();
    let algo_name = info.algorithm.name();
    let min_accuracy = info.params.min_accuracy;
    let capacity = u64::from(info.params.capacity).max(1);
    // One round trip up front: how much of the pool is already done
    // (resumed sessions, or a shared remote session mid-run).
    let opening = session.metrics()?;
    let mut completed_tasks = opening.n_completed;
    let total_tasks = opening.n_tasks;

    // Negotiate the submission window first (a remote session clamps to
    // what its server advertises; in-process sessions grant 1).
    let window = if window > 1 {
        session.set_window(window)?
    } else {
        1
    };
    let depth = pipeline.max(window).max(1);
    let events = session.subscribe()?;
    let started = std::time::Instant::now(); // ltc-lint: allow(L006) informational elapsed-time summary; the event stream and totals are clock-free

    let mut spam_skipped: u64 = 0;
    let mut in_flight: usize = 0;
    let mut accepted: u64 = 0;
    // Arrival ids of our own in-flight submissions: a shared remote
    // session broadcasts every client's events, and this stream must
    // report exactly the check-ins it submitted.
    let mut mine: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for (lineno, line) in reader.lines().enumerate() {
        // With depth 1 every submission has been pumped before this
        // check, so completion is observed exactly like the synchronous
        // facade would; deeper pipelines may overshoot by the in-flight
        // window (the extra check-ins idle and stay silent).
        if completed_tasks >= total_tasks {
            break;
        }
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let worker = parse_checkin(line, lineno + 1)?;
        // The paper's preprocessing: spam workers are ignored entirely
        // (they do not consume an arrival index).
        if worker.accuracy < min_accuracy {
            spam_skipped += 1;
            continue;
        }
        // With a window of 1 this is exactly `submit_worker`: the ack —
        // and the arrival id the event filter needs — comes back
        // immediately. Deeper windows defer acks; they are collected
        // (below) before any event could be pumped against them.
        if let Some(ack) = session.submit_worker_windowed(&worker)? {
            register_acks(vec![ack], &mut mine);
        }
        in_flight += 1;
        accepted += 1;
        if window > 1 {
            // Batch cadence: fire a full window, then settle it — the
            // acks (all buffered by now; firing ran ahead of them) and
            // then the events. Draining the whole batch keeps the next
            // window's sends free of per-submission round trips.
            //
            // The batch is completion-aware: one check-in completes at
            // most `capacity` tasks, so once only `remaining` tasks are
            // open, any submission beyond ceil(remaining / capacity)
            // reads a worker the lockstep cadence could never consume —
            // the batch's earlier check-ins cannot have finished the
            // instance. Capping there keeps the summary's workers-read
            // count exactly equal to lockstep's (`completed_tasks` is
            // exact at fire time: every settle drains the window to
            // empty before the next fire).
            let remaining = total_tasks.saturating_sub(completed_tasks);
            let effective = depth.min(remaining.div_ceil(capacity).max(1) as usize);
            if in_flight >= effective {
                register_acks(session.flush_window()?, &mut mine);
                while in_flight > 0 {
                    completed_tasks += pump_worker_event(&events, &mut mine, &mut in_flight, out)?;
                }
            }
        } else {
            while in_flight >= depth {
                completed_tasks += pump_worker_event(&events, &mut mine, &mut in_flight, out)?;
            }
        }
        if let Some(every) = rebalance_every {
            if accepted.is_multiple_of(every) {
                // Flush the pipeline first so NDJSON lines stay in
                // submission order around the quiesce, then re-split the
                // stripes by live-task load (exact — assignments are
                // unchanged, only placement).
                register_acks(session.flush_window()?, &mut mine);
                while in_flight > 0 {
                    completed_tasks += pump_worker_event(&events, &mut mine, &mut in_flight, out)?;
                }
                if let Some(outcome) = session.rebalance()? {
                    writeln!(
                        out,
                        "{{\"rebalance\":true,\"after_workers\":{accepted},\
                         \"moved_tasks\":{},\"max_mean_ratio\":{:.3}}}",
                        outcome.moved_tasks,
                        outcome.max_mean_ratio()
                    )?;
                }
            }
        }
    }
    register_acks(session.flush_window()?, &mut mine);
    while in_flight > 0 {
        pump_worker_event(&events, &mut mine, &mut in_flight, out)?;
    }
    session.drain()?;

    let elapsed = started.elapsed().as_secs_f64();
    let metrics = session.metrics()?;
    let completed = metrics.all_completed();
    let workers = metrics.n_workers_seen;
    let latency = match metrics.latency {
        Some(l) => l.to_string(),
        None => "null".to_string(),
    };
    writeln!(
        out,
        "{{\"summary\":true,\"algo\":\"{algo_name}\",\"workers\":{workers},\"spam_skipped\":{spam_skipped},\
         \"assignments\":{},\"tasks\":{},\"completed_tasks\":{},\
         \"completed\":{completed},\"latency\":{latency},\"elapsed_s\":{elapsed:.6}}}",
        metrics.n_assignments, metrics.n_tasks, metrics.n_completed,
    )?;
    if let Some(path) = snapshot_out {
        let snapshot = session.snapshot()?;
        let file =
            std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
        snapshot_format::write_snapshot(&snapshot, std::io::BufWriter::new(file))?;
        writeln!(
            out,
            "{{\"snapshot\":\"{path}\",\"shards\":{}}}",
            metrics.shard_loads.len()
        )?;
    }
    if let Some(path) = metrics_out {
        write_metrics_line(path, algo_name, &metrics)?;
    }
    Ok(())
}

fn exact(input: &str, budget: u64, out: &mut dyn Write) -> CmdResult {
    let instance = load(input)?;
    let solver = ExactSolver {
        node_budget: budget,
    };
    match solver.solve(&instance) {
        Some(result) => {
            match result.optimal_latency {
                Some(opt) => writeln!(out, "optimal latency: {opt}")?,
                None => writeln!(out, "INFEASIBLE: no arrangement completes all tasks")?,
            }
            writeln!(out, "search nodes expanded: {}", result.nodes_expanded)?;
        }
        None => writeln!(
            out,
            "node budget ({budget}) exhausted — the instance is too large for the \
             exact solver; try a heuristic via `ltc run`"
        )?,
    }
    Ok(())
}

fn simulate_cmd(
    input: &str,
    algo: AlgoChoice,
    trials: usize,
    seed: u64,
    out: &mut dyn Write,
) -> CmdResult {
    let instance = load(input)?;
    let outcome = run_choice(&instance, algo);
    if !outcome.completed {
        writeln!(out, "warning: {} left tasks unfinished", algo.name())?;
    }
    let truth = GroundTruth::random(instance.n_tasks(), seed);
    let report = simulate(&instance, &outcome.arrangement, &truth, trials, seed ^ 0x51);
    writeln!(
        out,
        "{} over {trials} trials: worst-task error {:.4}, mean {:.4} (ε = {})",
        algo.name(),
        report.max_task_error_rate(),
        report.mean_task_error_rate(),
        instance.params().epsilon
    )?;

    // One sampled round, aggregated three ways.
    let answers = AnswerSet::collect(&instance, &outcome.arrangement, &truth, seed ^ 0xA7);
    let majority = infer_majority(&answers);
    let em = infer_em(&answers, EmConfig::default());
    let err = |labels: &[i8]| {
        let wrong = labels
            .iter()
            .enumerate()
            .filter(|(t, &l)| l != truth.label(*t))
            .count();
        wrong as f64 / labels.len() as f64
    };
    writeln!(
        out,
        "single-round inference error: majority {:.4}, EM {:.4} ({} iters)",
        err(&majority),
        err(&em.labels),
        em.iterations
    )?;
    Ok(())
}

fn bounds(input: &str, out: &mut dyn Write) -> CmdResult {
    let instance = load(input)?;
    writeln!(
        out,
        "Theorem 2 bounds for {} tasks / {} workers (δ = {:.3}, K = {}):",
        instance.n_tasks(),
        instance.n_workers(),
        instance.delta(),
        instance.params().capacity
    )?;
    writeln!(out, "  lower: {:.1}", latency_lower_bound(&instance))?;
    writeln!(out, "  upper: {:.1}", latency_upper_bound(&instance))?;
    writeln!(out, "  MCF-LTC batch size m: {}", batch_size(&instance))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::args::AlgoChoice;
    use ltc_proto::{LtcClient, LtcServer, RunningServer};

    fn run_cli(line: &str) -> (i32, String) {
        let argv: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        let mut buf = Vec::new();
        let code = crate::run(&argv, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("ltc-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_cli("help");
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_fails_with_usage() {
        let (code, out) = run_cli("explode");
        assert_eq!(code, 2);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn generate_run_simulate_bounds_pipeline() {
        let path = temp_path("pipeline.tsv");
        let (code, out) = run_cli(&format!(
            "generate --preset synthetic --scale 256 --seed 3 --out {path}"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("wrote"));

        let (code, out) = run_cli(&format!("run --input {path} --algo aam --stats"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("latency"));
        assert!(out.contains("capacity utilization"));

        let (code, out) = run_cli(&format!("simulate --input {path} --algo laf --trials 50"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("worst-task error"));
        assert!(out.contains("EM"));

        let (code, out) = run_cli(&format!("bounds --input {path}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("lower"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generate_to_stdout() {
        let (code, out) = run_cli("generate --preset newyork --scale 512");
        assert_eq!(code, 0);
        assert!(out.starts_with("# ltc-dataset v1"));
        assert!(out.contains("worker\t"));
    }

    #[test]
    fn exact_on_tiny_instance() {
        let path = temp_path("tiny.tsv");
        // Hand-written tiny dataset: one task, three co-located workers.
        let data = "# ltc-dataset v1\nparams\t0.3\t1\t30\t0.66\ntask\t5\t5\n\
                    worker\t5\t6\t0.95\nworker\t5\t6\t0.95\nworker\t5\t6\t0.95\n";
        std::fs::write(&path, data).unwrap();
        let (code, out) = run_cli(&format!("exact --input {path}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("optimal latency: 3"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_emits_ndjson_and_summary() {
        let data_path = temp_path("stream_data.tsv");
        let checkin_path = temp_path("stream_checkins.tsv");
        // One task, ε = 0.3 ⇒ δ ≈ 2.41; co-located 0.95-accuracy workers
        // contribute ≈ 0.81 each ⇒ 3 accepted check-ins complete it.
        let data = "# ltc-dataset v1\nparams\t0.3\t1\t30\t0.66\ntask\t5\t5\n";
        std::fs::write(&data_path, data).unwrap();
        let checkins =
            "# comment line\n5\t6\t0.95\nworker\t5\t6\t0.95\n5\t6\t0.2\n\n5 6 0.95\n5\t6\t0.95\n";
        std::fs::write(&checkin_path, checkins).unwrap();

        let (code, out) = run_cli(&format!(
            "stream --input {data_path} --algo laf --checkins {checkin_path}"
        ));
        assert_eq!(code, 0, "{out}");
        let lines: Vec<&str> = out.lines().collect();
        // Three assignment events (spam line skipped, 4th check-in unused
        // because the task completes at the 3rd) plus the summary.
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[0].contains("\"worker\":0"));
        assert!(lines[0].contains("\"assignments\":[{\"task\":0"));
        assert!(lines[0].contains("\"newly_completed\":[]"));
        assert!(lines[2].contains("\"newly_completed\":[0]"));
        let summary = lines[3];
        assert!(summary.contains("\"summary\":true"), "{summary}");
        assert!(summary.contains("\"workers\":3"), "{summary}");
        assert!(summary.contains("\"spam_skipped\":1"), "{summary}");
        assert!(summary.contains("\"completed\":true"), "{summary}");
        assert!(summary.contains("\"latency\":3"), "{summary}");
    }

    #[test]
    fn stream_reports_incomplete_on_exhausted_checkins() {
        let data_path = temp_path("stream_incomplete.tsv");
        let checkin_path = temp_path("stream_incomplete_checkins.tsv");
        let data = "# ltc-dataset v1\nparams\t0.1\t1\t30\t0.66\ntask\t5\t5\n";
        std::fs::write(&data_path, data).unwrap();
        std::fs::write(&checkin_path, "5\t6\t0.95\n").unwrap();
        let (code, out) = run_cli(&format!(
            "stream --input {data_path} --algo aam --checkins {checkin_path}"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"completed\":false"), "{out}");
        assert!(out.contains("\"latency\":null"), "{out}");
    }

    #[test]
    fn stream_rejects_malformed_checkins() {
        let data_path = temp_path("stream_bad.tsv");
        let checkin_path = temp_path("stream_bad_checkins.tsv");
        let data = "# ltc-dataset v1\nparams\t0.3\t1\t30\t0.66\ntask\t5\t5\n";
        std::fs::write(&data_path, data).unwrap();
        std::fs::write(&checkin_path, "5\tnot-a-number\t0.9\n").unwrap();
        let (code, out) = run_cli(&format!(
            "stream --input {data_path} --algo laf --checkins {checkin_path}"
        ));
        assert_eq!(code, 1);
        assert!(out.contains("check-in line 1"), "{out}");
    }

    #[test]
    fn stream_random_is_seed_deterministic() {
        let data_path = temp_path("stream_rand.tsv");
        let checkin_path = temp_path("stream_rand_checkins.tsv");
        let mut data = String::from("# ltc-dataset v1\nparams\t0.3\t2\t30\t0.66\n");
        for t in 0..4 {
            data.push_str(&format!("task\t{}\t0\n", t * 3));
        }
        std::fs::write(&data_path, &data).unwrap();
        let mut checkins = String::new();
        for i in 0..40 {
            checkins.push_str(&format!("{}\t1\t0.9\n", (i % 4) * 3));
        }
        std::fs::write(&checkin_path, &checkins).unwrap();
        let run = |seed: u64| {
            run_cli(&format!(
                "stream --input {data_path} --algo random --checkins {checkin_path} --seed {seed}"
            ))
        };
        let (code_a, a) = run(9);
        let (_, b) = run(9);
        let (_, c) = run(10);
        assert_eq!(code_a, 0, "{a}");
        // Strip the timing field before comparing.
        let strip = |s: &str| {
            s.lines()
                .map(|l| l.split(",\"elapsed_s\"").next().unwrap().to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&a), strip(&b));
        assert_ne!(strip(&a), strip(&c));
    }

    #[test]
    fn stream_shards_flag_preserves_laf_output() {
        let data_path = temp_path("stream_shards.tsv");
        let checkin_path = temp_path("stream_shards_checkins.tsv");
        let mut data = String::from("# ltc-dataset v1\nparams\t0.3\t2\t30\t0.66\n");
        for t in 0..8 {
            data.push_str(&format!("task\t{}\t5\n", t * 100));
        }
        std::fs::write(&data_path, &data).unwrap();
        let mut checkins = String::new();
        for i in 0..120 {
            checkins.push_str(&format!("{}\t5\t0.95\n", (i % 8) * 100));
        }
        std::fs::write(&checkin_path, &checkins).unwrap();
        let run = |shards: usize| {
            run_cli(&format!(
                "stream --input {data_path} --algo laf --checkins {checkin_path} \
                 --shards {shards}"
            ))
        };
        let strip = |s: &str| {
            s.lines()
                .map(|l| l.split(",\"elapsed_s\"").next().unwrap().to_string())
                .collect::<Vec<_>>()
        };
        let (code1, one) = run(1);
        let (code4, four) = run(4);
        assert_eq!(code1, 0, "{one}");
        assert_eq!(code4, 0, "{four}");
        // LAF's merge tie-break equals its selection key, so the sharded
        // service commits the same assignments.
        assert_eq!(strip(&one), strip(&four));
        assert!(one.contains("\"completed\":true"), "{one}");
    }

    #[test]
    fn pipelined_stream_emits_the_same_assignment_lines() {
        // Deeper pipelines overlap submissions with processing but must
        // emit byte-identical assignment lines (the summary may count
        // trailing in-flight check-ins, so it is compared field-wise).
        let data_path = temp_path("stream_pipe.tsv");
        let checkin_path = temp_path("stream_pipe_checkins.tsv");
        let mut data = String::from("# ltc-dataset v1\nparams\t0.3\t2\t30\t0.66\n");
        for t in 0..8 {
            data.push_str(&format!("task\t{}\t5\n", t * 60));
        }
        std::fs::write(&data_path, &data).unwrap();
        let mut checkins = String::new();
        for i in 0..200 {
            checkins.push_str(&format!("{}\t6\t0.9{}\n", (i % 8) * 60, i % 9));
        }
        std::fs::write(&checkin_path, &checkins).unwrap();
        for (algo, shards) in [("laf", 1), ("laf", 4), ("aam", 1), ("random", 1)] {
            let run = |pipeline: usize| {
                run_cli(&format!(
                    "stream --input {data_path} --algo {algo} --checkins {checkin_path} \
                     --shards {shards} --pipeline {pipeline}"
                ))
            };
            let (code1, lockstep) = run(1);
            let (code16, deep) = run(16);
            assert_eq!(code1, 0, "{lockstep}");
            assert_eq!(code16, 0, "{deep}");
            let assignment_lines = |s: &str| {
                s.lines()
                    .filter(|l| l.starts_with("{\"worker\""))
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                assignment_lines(&lockstep),
                assignment_lines(&deep),
                "{algo}/{shards}: pipelining changed the assignment stream"
            );
            // The summaries agree on everything decision-relevant.
            let field = |s: &str, key: &str| {
                let line = s.lines().find(|l| l.contains("\"summary\"")).unwrap();
                let start = line.find(key).unwrap_or_else(|| panic!("{key} in {line}"));
                line[start..].split([',', '}']).next().unwrap().to_string()
            };
            for key in ["\"assignments\"", "\"completed_tasks\"", "\"latency\""] {
                assert_eq!(field(&lockstep, key), field(&deep, key), "{algo}/{shards}");
            }
        }
    }

    #[test]
    fn snapshot_then_resume_matches_an_uninterrupted_stream() {
        let data_path = temp_path("snap_data.tsv");
        let all_checkins = temp_path("snap_all.tsv");
        let first_half = temp_path("snap_first.tsv");
        let second_half = temp_path("snap_second.tsv");
        let snap_path = temp_path("snap_state.ltc");
        let mut data = String::from("# ltc-dataset v1\nparams\t0.14\t2\t30\t0.66\n");
        for t in 0..6 {
            data.push_str(&format!("task\t{}\t5\n", t * 40));
        }
        std::fs::write(&data_path, &data).unwrap();
        let lines: Vec<String> = (0..80)
            .map(|i| format!("{}\t6\t0.9{}", (i % 6) * 40, i % 9))
            .collect();
        std::fs::write(&all_checkins, lines.join("\n")).unwrap();
        std::fs::write(&first_half, lines[..30].join("\n")).unwrap();
        std::fs::write(&second_half, lines[30..].join("\n")).unwrap();

        let (code, full) = run_cli(&format!(
            "stream --input {data_path} --algo aam --checkins {all_checkins}"
        ));
        assert_eq!(code, 0, "{full}");

        let (code, first) = run_cli(&format!(
            "snapshot --input {data_path} --algo aam --checkins {first_half} --out {snap_path}"
        ));
        assert_eq!(code, 0, "{first}");
        assert!(first.contains("\"snapshot\""), "{first}");
        let (code, second) = run_cli(&format!(
            "resume --snapshot {snap_path} --checkins {second_half}"
        ));
        assert_eq!(code, 0, "{second}");

        // Interrupted event lines (sans each run's summary/snapshot tail)
        // concatenate to exactly the uninterrupted run's event lines.
        let events = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("{\"worker\""))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        let mut stitched = events(&first);
        stitched.extend(events(&second));
        assert_eq!(events(&full), stitched);
        // And the final summaries agree on everything but timing.
        let summary = |s: &str| {
            s.lines()
                .find(|l| l.contains("\"summary\":true"))
                .unwrap()
                .split(",\"elapsed_s\"")
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(summary(&full), summary(&second));
        for p in [&all_checkins, &first_half, &second_half, &snap_path] {
            std::fs::remove_file(p).ok();
        }
    }

    /// Spawns an `ltc serve`-equivalent server over the dataset (the
    /// `serve` command is a thin wrapper over exactly this).
    fn spawn_server(data_path: &str, shards: usize) -> RunningServer {
        let handle = super::start_dataset_session(data_path, AlgoChoice::Laf, 0x5EED, shards)
            .expect("test dataset builds");
        LtcServer::bind("127.0.0.1:0", handle)
            .unwrap()
            .spawn()
            .unwrap()
    }

    fn write_parity_fixture(data_path: &str, checkin_path: &str) {
        let mut data = String::from("# ltc-dataset v1\nparams\t0.3\t2\t30\t0.66\n");
        for t in 0..8 {
            data.push_str(&format!("task\t{}\t5\n", t * 100));
        }
        std::fs::write(data_path, &data).unwrap();
        let mut checkins = String::new();
        for i in 0..160 {
            checkins.push_str(&format!("{}\t6\t0.9{}\n", (i % 8) * 100, i % 9));
        }
        std::fs::write(checkin_path, &checkins).unwrap();
    }

    fn strip_elapsed(s: &str) -> Vec<String> {
        s.lines()
            .map(|l| l.split(",\"elapsed_s\"").next().unwrap().to_string())
            .collect()
    }

    #[test]
    fn stream_connect_is_byte_identical_to_in_process() {
        // The acceptance criterion of the transport redesign: `ltc
        // stream` driven through LtcClient → TCP → the server produces
        // byte-identical NDJSON to the in-process pipeline, at 1 and 4
        // shards — including the snapshot taken at the end (written
        // server-side over the wire vs. locally).
        let data_path = temp_path("connect_parity.tsv");
        let checkin_path = temp_path("connect_parity_checkins.tsv");
        write_parity_fixture(&data_path, &checkin_path);
        for shards in [1usize, 4] {
            let local_snap = temp_path(&format!("connect_local_{shards}.ltc"));
            let remote_snap = temp_path(&format!("connect_remote_{shards}.ltc"));
            let (code, local) = run_cli(&format!(
                "stream --input {data_path} --algo laf --shards {shards} \
                 --checkins {checkin_path} --snapshot-out {local_snap}"
            ));
            assert_eq!(code, 0, "{local}");

            let server = spawn_server(&data_path, shards);
            let (code, remote) = run_cli(&format!(
                "stream --connect {} --checkins {checkin_path} --snapshot-out {remote_snap}",
                server.addr()
            ));
            assert_eq!(code, 0, "{remote}");
            server.stop().unwrap();

            // Whole-output equality modulo the timing field — the
            // snapshot path differs too, so compare that line's prefix.
            let scrub = |s: &str, snap: &str| {
                strip_elapsed(s)
                    .into_iter()
                    .map(|l| l.replace(snap, "SNAP"))
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                scrub(&local, &local_snap),
                scrub(&remote, &remote_snap),
                "shards={shards}: remote NDJSON diverged from in-process"
            );
            assert!(local.contains("\"completed\":true"), "{local}");
            // The server-side snapshot crossed the wire bit-exactly.
            let a = std::fs::read(&local_snap).unwrap();
            let b = std::fs::read(&remote_snap).unwrap();
            assert_eq!(a, b, "shards={shards}: snapshot files diverged");
            std::fs::remove_file(&local_snap).ok();
            std::fs::remove_file(&remote_snap).ok();
        }
        std::fs::remove_file(&data_path).ok();
        std::fs::remove_file(&checkin_path).ok();
    }

    #[test]
    fn windowed_stream_summary_matches_lockstep() {
        // The windowed driver drains completion-aware: near the end of
        // the instance the batch shrinks to ceil(remaining / capacity),
        // so a deep window submits exactly the check-ins lockstep reads
        // and the closing summary — workers-read count included — is
        // byte-identical, not just the event lines. (Before this, a
        // wide window consumed up to W-1 extra check-ins past
        // completion and the summaries legitimately diverged.)
        let data_path = temp_path("windowed_summary.tsv");
        let checkin_path = temp_path("windowed_summary_checkins.tsv");
        write_parity_fixture(&data_path, &checkin_path);
        let mut outputs = Vec::new();
        for window in [1usize, 256] {
            let server = spawn_server(&data_path, 4);
            let (code, out) = run_cli(&format!(
                "stream --connect {} --checkins {checkin_path} --window {window}",
                server.addr()
            ));
            assert_eq!(code, 0, "window={window}: {out}");
            server.stop().unwrap();
            assert!(out.contains("\"completed\":true"), "{out}");
            outputs.push(strip_elapsed(&out));
        }
        assert_eq!(
            outputs[0], outputs[1],
            "window=256 output (summary included) diverged from lockstep"
        );
        std::fs::remove_file(&data_path).ok();
        std::fs::remove_file(&checkin_path).ok();
    }

    /// Captures serve's output and hands the first line (the address
    /// announcement) to the test the moment it is flushed.
    struct AnnounceWriter {
        buf: Vec<u8>,
        first_line: Option<std::sync::mpsc::Sender<String>>,
    }
    impl std::io::Write for AnnounceWriter {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(data);
            if self.buf.contains(&b'\n') {
                if let Some(tx) = self.first_line.take() {
                    let line = String::from_utf8_lossy(&self.buf);
                    tx.send(line.lines().next().unwrap_or("").to_string()).ok();
                }
            }
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Runs an `ltc serve` command line on a background thread and
    /// returns its announce line (with the resolved `--addr 0` port)
    /// plus the join handle yielding `(exit code, full output)`.
    fn spawn_serve_cli(line: &str) -> (String, std::thread::JoinHandle<(i32, String)>) {
        let (tx, rx) = std::sync::mpsc::channel();
        let argv: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        let serve_thread = std::thread::spawn(move || {
            let mut out = AnnounceWriter {
                buf: Vec::new(),
                first_line: Some(tx),
            };
            let code = crate::run(&argv, &mut out);
            (code, String::from_utf8_lossy(&out.buf).into_owned())
        });
        let announce = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("serve must announce its address");
        assert!(announce.contains("\"serve\":true"), "{announce}");
        (announce, serve_thread)
    }

    fn announced_addr(announce: &str) -> String {
        announce
            .split("\"addr\":\"")
            .nth(1)
            .and_then(|rest| rest.split('\"').next())
            .expect("address in the announce line")
            .to_string()
    }

    #[test]
    fn serve_command_round_trips_on_localhost() {
        // End-to-end through the *CLI* serve command: bind port 0, read
        // the printed address, drive a remote stream, shut the server
        // down over the wire.
        use std::io::Write as _;

        let data_path = temp_path("serve_cmd.tsv");
        let checkin_path = temp_path("serve_cmd_checkins.tsv");
        write_parity_fixture(&data_path, &checkin_path);

        let (announce, serve_thread) = spawn_serve_cli(&format!(
            "serve --input {data_path} --algo laf --shards 2 --addr 127.0.0.1:0"
        ));
        let addr = announced_addr(&announce);

        let (code, out) = run_cli(&format!(
            "stream --connect {addr} --checkins {checkin_path}"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"summary\":true"), "{out}");
        assert!(out.contains("\"completed\":true"), "{out}");

        use ltc_core::service::Session as _;
        let mut closer = LtcClient::connect(addr.as_str()).unwrap();
        closer.shutdown().unwrap();
        let (code, serve_out) = serve_thread.join().unwrap();
        assert_eq!(code, 0, "{serve_out}");
        assert!(serve_out.contains("\"serve_stopped\":true"), "{serve_out}");
        let _ = std::io::sink().flush();
        std::fs::remove_file(&data_path).ok();
        std::fs::remove_file(&checkin_path).ok();
    }

    #[test]
    fn multi_session_serve_isolates_sessions_and_lists_them() {
        // Two named sessions on one `serve --max-sessions` process,
        // each driven through `stream --connect --session`, must emit
        // NDJSON byte-identical to dedicated in-process runs over the
        // same dataset template (fresh arrival ids, no cross-session
        // event leakage — a leaked completion would corrupt the other
        // session's summary counters), and `ltc sessions` must list
        // them.
        let data_path = temp_path("multi_session.tsv");
        let a_checkins = temp_path("multi_session_a.tsv");
        let b_checkins = temp_path("multi_session_b.tsv");
        write_parity_fixture(&data_path, &a_checkins);
        let mut b = String::new();
        for i in 0..60 {
            b.push_str(&format!("{}\t6\t0.9{}\n", ((i * 3) % 8) * 100, i % 7));
        }
        std::fs::write(&b_checkins, &b).unwrap();

        let (announce, serve_thread) = spawn_serve_cli(&format!(
            "serve --input {data_path} --algo laf --addr 127.0.0.1:0 --max-sessions 3"
        ));
        assert!(announce.contains("\"max_sessions\":3"), "{announce}");
        let addr = announced_addr(&announce);

        let (code, west) = run_cli(&format!(
            "stream --connect {addr} --session west --checkins {a_checkins}"
        ));
        assert_eq!(code, 0, "{west}");
        let (code, east) = run_cli(&format!(
            "stream --connect {addr} --session east --checkins {b_checkins}"
        ));
        assert_eq!(code, 0, "{east}");

        let (code, base_a) = run_cli(&format!(
            "stream --input {data_path} --algo laf --checkins {a_checkins}"
        ));
        assert_eq!(code, 0, "{base_a}");
        let (code, base_b) = run_cli(&format!(
            "stream --input {data_path} --algo laf --checkins {b_checkins}"
        ));
        assert_eq!(code, 0, "{base_b}");
        assert_eq!(strip_elapsed(&west), strip_elapsed(&base_a));
        assert_eq!(strip_elapsed(&east), strip_elapsed(&base_b));

        // A rerun against an existing session *attaches* (arrival ids
        // keep counting where the first run left them).
        let (code, west2) = run_cli(&format!(
            "stream --connect {addr} --session west --checkins {a_checkins}"
        ));
        assert_eq!(code, 0, "{west2}");
        assert_ne!(strip_elapsed(&west2), strip_elapsed(&west));

        let (code, listing) = run_cli(&format!("sessions --connect {addr}"));
        assert_eq!(code, 0, "{listing}");
        let lines: Vec<&str> = listing.lines().collect();
        assert!(
            lines[0].starts_with("{\"session\":\"default\""),
            "{listing}"
        );
        assert!(lines[1].starts_with("{\"session\":\"east\""), "{listing}");
        assert!(lines[2].starts_with("{\"session\":\"west\""), "{listing}");
        assert_eq!(lines[3], "{\"sessions\":true,\"open\":3}", "{listing}");

        use ltc_core::service::Session as _;
        let mut closer = LtcClient::connect(addr.as_str()).unwrap();
        closer.shutdown().unwrap();
        let (code, serve_out) = serve_thread.join().unwrap();
        assert_eq!(code, 0, "{serve_out}");
        assert!(serve_out.contains("\"serve_stopped\":true"), "{serve_out}");
        for p in [&data_path, &a_checkins, &b_checkins] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn sequential_clients_of_one_server_report_only_their_own_checkins() {
        // A shared remote session broadcasts every client's events; each
        // CLI stream must emit NDJSON only for the check-ins it
        // submitted (arrival ids keep counting across clients).
        let data_path = temp_path("multi_client.tsv");
        // One task far from completion (ε = 0.1 ⇒ δ ≈ 4.6; 0.8-accuracy
        // workers contribute 0.36 each, so 5 check-ins cannot finish it).
        let data = "# ltc-dataset v1\nparams\t0.1\t1\t30\t0.66\ntask\t5\t5\n";
        std::fs::write(&data_path, data).unwrap();
        let a_checkins = temp_path("multi_client_a.tsv");
        let b_checkins = temp_path("multi_client_b.tsv");
        std::fs::write(&a_checkins, "5\t6\t0.8\n".repeat(5)).unwrap();
        std::fs::write(&b_checkins, "5\t6\t0.8\n".repeat(5)).unwrap();

        let server = spawn_server(&data_path, 1);
        let (code, a_out) = run_cli(&format!(
            "stream --connect {} --checkins {a_checkins}",
            server.addr()
        ));
        assert_eq!(code, 0, "{a_out}");
        let (code, b_out) = run_cli(&format!(
            "stream --connect {} --checkins {b_checkins}",
            server.addr()
        ));
        assert_eq!(code, 0, "{b_out}");
        server.stop().unwrap();

        let ids = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("{\"worker\""))
                .map(|l| {
                    l.split("\"worker\":")
                        .nth(1)
                        .unwrap()
                        .split(',')
                        .next()
                        .unwrap()
                        .parse::<u64>()
                        .unwrap()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&a_out), vec![0, 1, 2, 3, 4], "{a_out}");
        assert_eq!(ids(&b_out), vec![5, 6, 7, 8, 9], "{b_out}");
        // The second client's summary sees the whole session's counters.
        assert!(b_out.contains("\"workers\":10"), "{b_out}");
        for p in [&data_path, &a_checkins, &b_checkins] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn metrics_out_emits_the_literal_machine_readable_line() {
        let data_path = temp_path("metrics_data.tsv");
        let checkin_path = temp_path("metrics_checkins.tsv");
        let metrics_path = temp_path("metrics_line.json");
        // One task, ε = 0.3 ⇒ δ ≈ 2.41; three 0.95-accuracy co-located
        // check-ins complete it (the spam line is skipped).
        let data = "# ltc-dataset v1\nparams\t0.3\t1\t30\t0.66\ntask\t5\t5\n";
        std::fs::write(&data_path, data).unwrap();
        let checkins = "5\t6\t0.95\n5\t6\t0.2\n5\t6\t0.95\n5\t6\t0.95\n5\t6\t0.95\n";
        std::fs::write(&checkin_path, checkins).unwrap();

        let (code, out) = run_cli(&format!(
            "stream --input {data_path} --algo laf --checkins {checkin_path} \
             --metrics-out {metrics_path}"
        ));
        assert_eq!(code, 0, "{out}");
        let line = std::fs::read_to_string(&metrics_path).unwrap();
        assert_eq!(
            line,
            "{\"metrics\":true,\"algo\":\"LAF\",\"workers\":3,\"assignments\":3,\
             \"tasks\":1,\"completed_tasks\":1,\"clamped_insertions\":0,\"rebalances\":0,\
             \"shard_loads\":[0],\"latency\":3,\"wal_records\":0,\"checkpoints\":0,\
             \"sessions_open\":1,\"sessions_evicted\":0}\n"
        );
        for p in [&data_path, &checkin_path, &metrics_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn resume_rejects_garbage_snapshots() {
        let path = temp_path("garbage.ltc");
        std::fs::write(&path, "not a snapshot\n").unwrap();
        let (code, out) = run_cli(&format!("resume --snapshot {path}"));
        assert_eq!(code, 1);
        assert!(out.contains("snapshot"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let (code, out) = run_cli("run --input /nonexistent/x.tsv --algo aam");
        assert_eq!(code, 1);
        assert!(out.contains("cannot open"));
    }

    #[test]
    fn execute_rejects_help() {
        // `Help` is routed before `execute`; the pipeline still covers it
        // via run(); nothing to assert beyond the entry-point behaviour.
        let (code, _) = run_cli("");
        assert_eq!(code, 0);
    }

    #[test]
    fn recover_command_repairs_a_crashed_wal_directory() {
        use ltc_core::model::{ProblemParams, Task, Worker};
        use ltc_core::service::{Algorithm, ServiceBuilder, Session as _};
        use ltc_core::snapshot::read_snapshot;
        use ltc_durable::{DurableHandle, DurableOptions};
        use ltc_spatial::{BoundingBox, Point};
        use std::num::NonZeroUsize;

        let wal_dir = temp_path("recover_cmd_wal");
        std::fs::remove_dir_all(&wal_dir).ok();
        let params = ProblemParams::builder()
            .epsilon(0.2)
            .capacity(2)
            .d_max(30.0)
            .build()
            .unwrap();
        let region = BoundingBox::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let handle = ServiceBuilder::new(params, region)
            .algorithm(Algorithm::Laf)
            .shards(NonZeroUsize::new(2).unwrap())
            .start()
            .unwrap();
        let mut durable = DurableHandle::create(
            handle,
            std::path::Path::new(&wal_dir),
            DurableOptions {
                checkpoint_every: 3,
                ..DurableOptions::default()
            },
        )
        .unwrap();
        for i in 0..4 {
            durable
                .post_task(Task::new(Point::new(10.0 + 20.0 * i as f64, 40.0)))
                .unwrap();
        }
        for i in 0..6 {
            durable
                .submit_worker(&Worker::new(Point::new(12.0 + 15.0 * i as f64, 42.0), 0.9))
                .unwrap();
        }
        drop(durable); // crash: no shutdown, the log is left mid-flight

        let snap_path = temp_path("recover_cmd.ltc");
        let (code, out) = run_cli(&format!(
            "recover --wal {wal_dir} --snapshot-out {snap_path}"
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"recover\":true"), "{out}");
        assert!(out.contains("\"next_seq\":10"), "{out}");
        let text = std::fs::read_to_string(&snap_path).unwrap();
        assert!(text.starts_with("ltc-snapshot v1\n"), "{text}");
        read_snapshot(text.as_bytes()).expect("recovered snapshot must parse");

        // Recovery seals the log with a covering checkpoint, so a
        // second run replays nothing and lands in the same place.
        let (code, again) = run_cli(&format!("recover --wal {wal_dir}"));
        assert_eq!(code, 0, "{again}");
        assert!(again.contains("\"replayed\":0"), "{again}");
        assert!(again.contains("\"next_seq\":10"), "{again}");

        std::fs::remove_dir_all(&wal_dir).ok();
        std::fs::remove_file(&snap_path).ok();
    }
}
