//! Implementation of the `ltc` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; keeping the logic in a
//! library makes every command unit-testable without spawning processes.
//!
//! ```text
//! ltc generate --preset synthetic --scale 16 --out data.tsv
//! ltc run      --input data.tsv --algo aam --stats
//! ltc stream   --input data.tsv --algo laf --shards 4 --pipeline 32 \
//!              --rebalance 10000 --snapshot-out state.ltc
//! ltc serve    --input data.tsv --algo laf --shards 4 --addr 127.0.0.1:7534
//! ltc stream   --connect 127.0.0.1:7534 --checkins more.tsv
//! ltc resume   --snapshot state.ltc --checkins more.tsv
//! ltc exact    --input data.tsv
//! ltc simulate --input data.tsv --algo laf --trials 1000
//! ltc bounds   --input data.tsv
//! ```
//!
//! `stream`/`snapshot`/`resume` drive a
//! [`Session`](ltc_core::service::Session) — the in-process pipelined
//! [`ServiceHandle`](ltc_core::service::ServiceHandle) runtime for
//! `--input` (persistent shard threads, submission-ordered NDJSON
//! output, exact mid-stream snapshots, optional periodic stripe
//! rebalancing), or a remote `ltc serve` process for `--connect`, with
//! byte-identical output either way (`ltc-proto v1`; see
//! `docs/PROTOCOL.md`). The batch commands (`run`, `exact`, `simulate`,
//! `bounds`) replay recorded instances. See `docs/ARCHITECTURE.md` for
//! the layering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::io::Write;

/// Entry point: parses `argv` and executes the command, writing
/// human-readable output to `out`. Returns the process exit code.
pub fn run(argv: &[String], out: &mut dyn Write) -> i32 {
    match args::Command::parse(argv) {
        Ok(args::Command::Help) => {
            let _ = writeln!(out, "{}", args::USAGE);
            0
        }
        Ok(cmd) => match commands::execute(cmd, out) {
            Ok(()) => 0,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                1
            }
        },
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n\n{}", args::USAGE);
            2
        }
    }
}
