//! Uniform-grid spatial index.
//!
//! Every LTC algorithm enumerates the tasks *within `d_max`* of each
//! arriving worker (the eligibility radius; see `ltc-core`). Task sets are
//! static while workers stream past, so a build-once uniform grid with cell
//! size equal to the query radius is the sweet spot: a radius query touches
//! at most 9 cells and then distance-filters candidates exactly.

use crate::{BoundingBox, Point};

/// A uniform grid over 2-D points carrying ids of type `T`.
///
/// Built once from a point set; supports exact radius queries. Queries with
/// radius larger than the build-time `cell_size` still work (more cells are
/// scanned), so a single index can serve several radii.
///
/// ```
/// use ltc_spatial::{GridIndex, Point};
/// let index = GridIndex::build(10.0, vec![(7u32, Point::new(3.0, 3.0))]);
/// assert_eq!(index.within(Point::ORIGIN, 5.0).collect::<Vec<_>>(), vec![7]);
/// assert!(index.within(Point::ORIGIN, 2.0).next().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_size: f64,
    /// Grid origin (min corner of the data's bounding box).
    origin: Point,
    /// Number of columns / rows.
    cols: usize,
    rows: usize,
    /// CSR-style storage: `starts[c]..starts[c+1]` indexes into `entries`
    /// for cell `c`. Compact and cache-friendly for read-only use.
    starts: Vec<u32>,
    entries: Vec<(T, Point)>,
    len: usize,
}

impl<T: Copy> GridIndex<T> {
    /// Builds an index over `(id, point)` pairs with the given cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite, or if any
    /// point has a non-finite coordinate.
    pub fn build<I>(cell_size: f64, points: I) -> Self
    where
        I: IntoIterator<Item = (T, Point)>,
    {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        let items: Vec<(T, Point)> = points.into_iter().collect();
        for (_, p) in &items {
            assert!(p.is_finite(), "grid index points must be finite, got {p}");
        }
        let bbox = BoundingBox::of_points(items.iter().map(|(_, p)| *p))
            .unwrap_or_else(|| BoundingBox::new(Point::ORIGIN, Point::ORIGIN));
        let origin = bbox.min;
        let cols = ((bbox.width() / cell_size).floor() as usize + 1).max(1);
        let rows = ((bbox.height() / cell_size).floor() as usize + 1).max(1);

        // Bucket into CSR layout: sort entries by cell id, then record the
        // start offset of each cell's run.
        let ncells = cols * rows;
        let cell_of = |p: Point| -> usize {
            let cx = (((p.x - origin.x) / cell_size) as usize).min(cols - 1);
            let cy = (((p.y - origin.y) / cell_size) as usize).min(rows - 1);
            cy * cols + cx
        };
        let len = items.len();
        let mut keyed: Vec<(usize, (T, Point))> = items
            .into_iter()
            .map(|(id, p)| (cell_of(p), (id, p)))
            .collect();
        keyed.sort_unstable_by_key(|(c, _)| *c);
        let mut starts = vec![0u32; ncells + 1];
        for (c, _) in &keyed {
            starts[c + 1] += 1;
        }
        for i in 0..ncells {
            starts[i + 1] += starts[i];
        }
        let entries: Vec<(T, Point)> = keyed.into_iter().map(|(_, e)| e).collect();
        Self {
            cell_size,
            origin,
            cols,
            rows,
            starts,
            entries,
            len,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ids of all points with `distance(center) <= radius`, in unspecified
    /// order. Exact (candidates from the covering cells are filtered by
    /// true Euclidean distance).
    pub fn within(&self, center: Point, radius: f64) -> impl Iterator<Item = T> + '_ {
        self.within_entries(center, radius).map(|(id, _)| id)
    }

    /// Like [`Self::within`] but also yields the stored point.
    pub fn within_entries(
        &self,
        center: Point,
        radius: f64,
    ) -> impl Iterator<Item = (T, Point)> + '_ {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be non-negative and finite, got {radius}"
        );
        let r_sq = radius * radius;
        let (cx0, cy0) = self.cell_coords(Point::new(center.x - radius, center.y - radius));
        let (cx1, cy1) = self.cell_coords(Point::new(center.x + radius, center.y + radius));
        (cy0..=cy1)
            .flat_map(move |cy| (cx0..=cx1).map(move |cx| cy * self.cols + cx))
            .flat_map(move |cell| {
                let lo = self.starts[cell] as usize;
                let hi = self.starts[cell + 1] as usize;
                self.entries[lo..hi].iter().copied()
            })
            .filter(move |(_, p)| p.distance_sq(center) <= r_sq)
    }

    /// Number of points within `radius` of `center`.
    pub fn count_within(&self, center: Point, radius: f64) -> usize {
        self.within(center, radius).count()
    }

    /// Clamped cell coordinates of a (possibly out-of-bounds) point.
    #[inline]
    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x - self.origin.x) / self.cell_size).floor();
        let cy = ((p.y - self.origin.y) / self.cell_size).floor();
        let cx = (cx.max(0.0) as usize).min(self.cols - 1);
        let cy = (cy.max(0.0) as usize).min(self.rows - 1);
        (cx, cy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_within(pts: &[(u32, Point)], center: Point, radius: f64) -> Vec<u32> {
        let mut v: Vec<u32> = pts
            .iter()
            .filter(|(_, p)| p.distance(center) <= radius)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_index_queries_cleanly() {
        let idx: GridIndex<u32> = GridIndex::build(1.0, std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.count_within(Point::new(3.0, 3.0), 100.0), 0);
    }

    #[test]
    fn single_point() {
        let idx = GridIndex::build(2.0, vec![(1u32, Point::new(1.0, 1.0))]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.within(Point::ORIGIN, 2.0).collect::<Vec<_>>(), vec![1]);
        assert!(idx.within(Point::ORIGIN, 1.0).next().is_none());
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let idx = GridIndex::build(5.0, vec![(9u32, Point::new(3.0, 4.0))]);
        // distance exactly 5.0
        assert_eq!(idx.count_within(Point::ORIGIN, 5.0), 1);
        assert_eq!(idx.count_within(Point::ORIGIN, 4.999), 0);
    }

    #[test]
    fn duplicate_locations_all_returned() {
        let p = Point::new(2.0, 2.0);
        let idx = GridIndex::build(1.0, vec![(1u32, p), (2, p), (3, p)]);
        let mut got: Vec<_> = idx.within(p, 0.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn query_radius_larger_than_cell_size() {
        let pts: Vec<(u32, Point)> = (0..100)
            .map(|i| (i, Point::new((i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0)))
            .collect();
        let idx = GridIndex::build(2.0, pts.iter().copied());
        let center = Point::new(13.0, 13.0);
        for radius in [0.5, 3.0, 7.5, 40.0] {
            let mut got: Vec<u32> = idx.within(center, radius).collect();
            got.sort_unstable();
            assert_eq!(got, brute_within(&pts, center, radius), "radius {radius}");
        }
    }

    #[test]
    fn queries_outside_bounding_box() {
        let pts = [(0u32, Point::new(10.0, 10.0)), (1, Point::new(12.0, 10.0))];
        let idx = GridIndex::build(1.0, pts.iter().copied());
        // Center far outside the data extent.
        assert_eq!(idx.count_within(Point::new(-100.0, -100.0), 10.0), 0);
        assert_eq!(idx.count_within(Point::new(-100.0, -100.0), 1000.0), 2);
    }

    #[test]
    fn collinear_points_on_one_row() {
        let pts: Vec<(u32, Point)> = (0..20).map(|i| (i, Point::new(i as f64, 0.0))).collect();
        let idx = GridIndex::build(4.0, pts.iter().copied());
        let mut got: Vec<u32> = idx.within(Point::new(10.0, 0.0), 2.5).collect();
        got.sort_unstable();
        assert_eq!(got, brute_within(&pts, Point::new(10.0, 0.0), 2.5));
    }

    #[test]
    #[should_panic(expected = "cell_size must be positive")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::build(0.0, vec![(0u32, Point::ORIGIN)]);
    }

    #[test]
    #[should_panic(expected = "radius must be non-negative")]
    fn negative_radius_panics() {
        let idx = GridIndex::build(1.0, vec![(0u32, Point::ORIGIN)]);
        let _ = idx.within(Point::ORIGIN, -1.0).count();
    }
}
