//! Uniform-grid spatial index with eviction support.
//!
//! Every LTC algorithm enumerates the tasks *within `d_max`* of each
//! arriving worker (the eligibility radius; see `ltc-core`). Workers
//! stream past a task set that only ever *shrinks* — once a task reaches
//! its quality threshold it stops being a candidate forever — so the
//! index supports `remove` (and `insert`, for dynamically posted tasks):
//! the streaming engine evicts completed tasks instead of re-filtering
//! them on every query, keeping the hot path proportional to the
//! *remaining* work.
//!
//! # Storage layout
//!
//! Cells are stored CSR-style: one flat entry slab plus a per-cell
//! directory of `(start, capacity, length)` triples, so a radius query
//! (at most 9 cells when the cell size equals the radius) walks
//! contiguous memory instead of chasing one heap pointer per cell. The
//! mutation story keeps the slab flat without ever rebuilding it
//! per-insert:
//!
//! * **insert** into a cell with spare capacity writes in place; a full
//!   cell *relocates* its block to the end of the slab with doubled
//!   capacity (amortized O(1), like `Vec` growth), leaving the old block
//!   as dead space;
//! * **remove** is a swap-remove inside the cell's live prefix;
//! * **retain** compacts each cell's live prefix in place;
//! * dead space is reclaimed by an amortized **compaction** (triggered
//!   once dead slots outnumber the live slab) that re-packs every cell
//!   contiguously, reusing a retained spare slab instead of allocating.
//!
//! Per-cell entry *order* is exactly what a `Vec`-per-cell layout would
//! produce for the same operation sequence (append on insert,
//! swap-remove, order-preserving retain), which the differential suite
//! against [`reference::ReferenceGrid`] checks element-for-element.

use crate::{BoundingBox, Point};

#[cfg(any(test, feature = "grid-reference"))]
pub mod reference;

/// Smallest capacity a cell block gets on its first relocation.
const MIN_CELL_CAP: usize = 4;

/// Upper bound on allocated cells (~12 MB of directory).
const MAX_CELLS: usize = 1 << 20;

/// The grid geometry: origin, effective cell size, and cell counts.
/// Copied into locals by the rebuild passes so geometry math never
/// borrows the (mutably borrowed) storage.
#[derive(Debug, Clone, Copy)]
struct Layout {
    cell_size: f64,
    origin: Point,
    cols: usize,
    rows: usize,
}

impl Layout {
    /// Lays a grid out over `bounds`, coarsening the cell size (doubling
    /// it) until the cell count fits under [`MAX_CELLS`].
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    fn new(cell_size: f64, bounds: BoundingBox) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        let mut cell_size = cell_size;
        let (mut cols, mut rows);
        loop {
            // Compare against the cap in f64 before casting: a huge
            // extent (e.g. growth over a far-away task) would saturate
            // the cast at `usize::MAX` and make the `+ 1` overflow.
            let fcols = (bounds.width() / cell_size).floor();
            let frows = (bounds.height() / cell_size).floor();
            if fcols < MAX_CELLS as f64 && frows < MAX_CELLS as f64 {
                cols = (fcols as usize + 1).max(1);
                rows = (frows as usize + 1).max(1);
                if cols * rows <= MAX_CELLS {
                    break;
                }
            }
            cell_size *= 2.0;
        }
        Self {
            cell_size,
            origin: bounds.min,
            cols,
            rows,
        }
    }

    /// Whether a point falls inside the laid-out cell grid without
    /// clamping.
    #[inline]
    fn in_extent(&self, p: Point) -> bool {
        let cx = ((p.x - self.origin.x) / self.cell_size).floor();
        let cy = ((p.y - self.origin.y) / self.cell_size).floor();
        (0.0..self.cols as f64).contains(&cx) && (0.0..self.rows as f64).contains(&cy)
    }

    /// Row-major cell index of a (possibly out-of-extent) point.
    #[inline]
    fn cell_of(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cols + cx
    }

    /// Clamped cell coordinates of a (possibly out-of-bounds) point.
    #[inline]
    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x - self.origin.x) / self.cell_size).floor();
        let cy = ((p.y - self.origin.y) / self.cell_size).floor();
        let cx = (cx.max(0.0) as usize).min(self.cols - 1);
        let cy = (cy.max(0.0) as usize).min(self.rows - 1);
        (cx, cy)
    }
}

/// A uniform grid over 2-D points carrying ids of type `T`.
///
/// Built from a point set; supports exact radius queries, point
/// insertion, and removal. Queries with radius larger than the build-time
/// `cell_size` still work (more cells are scanned), so a single index can
/// serve several radii.
///
/// The grid's extent is fixed at build time (the bounding box of the
/// initial points, or the box passed to [`GridIndex::with_bounds`]).
/// Points outside the extent are clamped into the border cells; queries
/// clamp the same way, so results stay exact — out-of-extent points only
/// cost extra distance checks in the border cells.
///
/// ```
/// use ltc_spatial::{GridIndex, Point};
/// let mut index = GridIndex::build(10.0, vec![(7u32, Point::new(3.0, 3.0))]);
/// assert_eq!(index.within(Point::ORIGIN, 5.0).collect::<Vec<_>>(), vec![7]);
/// index.remove(7, Point::new(3.0, 3.0));
/// assert!(index.within(Point::ORIGIN, 5.0).next().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_size: f64,
    /// Grid origin (min corner of the build-time bounding box).
    origin: Point,
    /// The bounds the grid was *asked* to cover (the laid-out extent
    /// rounds these up to whole cells). Rebuilding with exactly these
    /// bounds reproduces the layout — durable state records them so
    /// restore is a fixed point (see [`GridIndex::requested_bounds`]).
    requested: BoundingBox,
    /// Number of columns / rows.
    cols: usize,
    rows: usize,
    /// Per-cell block start in `slab`, row-major.
    starts: Vec<u32>,
    /// Per-cell block capacity.
    caps: Vec<u32>,
    /// Per-cell live length (`lens[c] <= caps[c]`).
    lens: Vec<u32>,
    /// The flat entry slab. A cell's live entries are
    /// `slab[starts[c]..starts[c] + lens[c]]`; the rest of its block is
    /// slack holding stale copies (`T: Copy`, nothing to drop).
    slab: Vec<(T, Point)>,
    /// Slab slots belonging to no cell's block (abandoned by
    /// relocation); compaction resets this to zero.
    dead: usize,
    len: usize,
    /// Cumulative count of insertions that fell outside the build-time
    /// extent and were clamped into a border cell — telemetry for
    /// detecting a bad region guess (see [`GridIndex::n_clamped_insertions`]).
    clamped: u64,
    /// Retained scratch slab for compaction and rebucketing, so adaptive
    /// growth and slab maintenance reuse capacity instead of
    /// re-allocating per-cell storage from scratch.
    spare: Vec<(T, Point)>,
}

impl<T: Copy> GridIndex<T> {
    /// Builds an index over `(id, point)` pairs with the given cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite, or if
    /// any point has a non-finite coordinate.
    pub fn build<I>(cell_size: f64, points: I) -> Self
    where
        I: IntoIterator<Item = (T, Point)>,
    {
        let items: Vec<(T, Point)> = points.into_iter().collect();
        for (_, p) in &items {
            assert!(p.is_finite(), "grid index points must be finite, got {p}");
        }
        let bbox = BoundingBox::of_points(items.iter().map(|(_, p)| *p))
            .unwrap_or_else(|| BoundingBox::new(Point::ORIGIN, Point::ORIGIN));
        let mut index = Self::with_bounds(cell_size, bbox);
        // Bulk counting-sort load: the initial layout is perfectly
        // packed (every cell's capacity equals its length), unlike a
        // per-point insert loop, which would fragment the slab with
        // relocations before the first query runs.
        index.spare = items;
        index.place_spare(true);
        index
    }

    /// Builds an empty index covering `bounds`. Use this when points will
    /// arrive incrementally (e.g. dynamically posted tasks) and the
    /// service region is known up front.
    ///
    /// The cell count is capped (at ~1M cells): for a huge region with a
    /// tiny `cell_size`, cells are transparently coarsened (doubled until
    /// the grid fits) instead of eagerly allocating gigabytes of empty
    /// buckets. Queries stay exact — coarser cells only mean more
    /// distance checks per query.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn with_bounds(cell_size: f64, bounds: BoundingBox) -> Self {
        let layout = Layout::new(cell_size, bounds);
        let n_cells = layout.cols * layout.rows;
        Self {
            cell_size: layout.cell_size,
            origin: layout.origin,
            requested: bounds,
            cols: layout.cols,
            rows: layout.rows,
            starts: vec![0; n_cells],
            caps: vec![0; n_cells],
            lens: vec![0; n_cells],
            slab: Vec::new(),
            dead: 0,
            len: 0,
            clamped: 0,
            spare: Vec::new(),
        }
    }

    /// The grid geometry as a detached value (so rebuild passes can do
    /// cell math while the storage is mutably borrowed).
    #[inline]
    fn layout(&self) -> Layout {
        Layout {
            cell_size: self.cell_size,
            origin: self.origin,
            cols: self.cols,
            rows: self.rows,
        }
    }

    /// The effective cell size (the requested size, possibly coarsened by
    /// the cell-count cap; see [`GridIndex::with_bounds`]).
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The extent the grid was laid out over: origin plus `cols × rows`
    /// cells. Contains the build-time bounds (cell counts round up), and
    /// rebuilding an index with these bounds preserves exact query
    /// results.
    #[inline]
    pub fn bounds(&self) -> BoundingBox {
        BoundingBox::new(
            self.origin,
            Point::new(
                self.origin.x + self.cell_size * self.cols as f64,
                self.origin.y + self.cell_size * self.rows as f64,
            ),
        )
    }

    /// The bounds the grid was asked to cover ([`GridIndex::with_bounds`]
    /// / [`GridIndex::rebucket`] argument; for [`GridIndex::build`], the
    /// points' bounding box). Unlike [`GridIndex::bounds`] — which
    /// rounds up to whole cells and therefore *grows* when fed back in —
    /// rebuilding with these bounds reproduces the layout exactly, so
    /// durable state (engine snapshots) records them.
    #[inline]
    pub fn requested_bounds(&self) -> BoundingBox {
        self.requested
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cumulative count of [`GridIndex::insert`] calls whose point lay
    /// outside the build-time extent and was clamped into a border cell.
    /// Queries stay exact either way, but a growing count means the
    /// declared region under-covers the workload and border buckets are
    /// absorbing extra distance checks — an operator signal to rebuild
    /// with better bounds. The counter is monotone (removals do not
    /// decrement it) and is not persisted by snapshots.
    #[inline]
    pub fn n_clamped_insertions(&self) -> u64 {
        self.clamped
    }

    /// Overwrites the clamp counter with a recorded value — the restore
    /// half of durable clamp telemetry. Rebuilding an index from durable
    /// state re-inserts only the *live* entries, so the re-counted value
    /// under-states the cumulative history (evicted entries and clamps
    /// against earlier, smaller extents are gone); callers restoring an
    /// engine pass the persisted counter through here so the telemetry —
    /// and any growth threshold armed on it — continues where it left
    /// off instead of silently resetting.
    #[inline]
    pub fn restore_clamp_counter(&mut self, clamped: u64) {
        self.clamped = clamped;
    }

    /// Inserts a point. Points outside the build-time extent are clamped
    /// into border cells (queries stay exact; see the type-level docs).
    ///
    /// Amortized O(1): the cell either has slack (write in place) or its
    /// block is relocated to the slab's end with doubled capacity.
    ///
    /// # Panics
    ///
    /// Panics if the point has a non-finite coordinate.
    pub fn insert(&mut self, id: T, point: Point) {
        assert!(
            point.is_finite(),
            "grid index points must be finite, got {point}"
        );
        if !self.in_extent(point) {
            self.clamped += 1;
        }
        let cell = self.cell_of(point);
        let live = self.lens[cell] as usize;
        if live < self.caps[cell] as usize {
            self.slab[self.starts[cell] as usize + live] = (id, point);
            self.lens[cell] = (live + 1) as u32;
        } else {
            self.relocate_and_push(cell, (id, point));
        }
        self.len += 1;
    }

    /// Moves `cell`'s full block to the end of the slab with doubled
    /// capacity and appends `entry`. The old block becomes dead space,
    /// reclaimed by [`Self::maybe_compact`].
    fn relocate_and_push(&mut self, cell: usize, entry: (T, Point)) {
        let start = self.starts[cell] as usize;
        let live = self.lens[cell] as usize;
        let old_cap = self.caps[cell] as usize;
        let new_cap = (old_cap * 2).max(MIN_CELL_CAP);
        let new_start = self.slab.len();
        assert!(
            new_start + new_cap <= u32::MAX as usize,
            "grid slab exceeds u32 addressing"
        );
        self.slab.reserve(new_cap);
        self.slab.extend_from_within(start..start + live);
        self.slab.push(entry);
        // Fill the slack so the slab's length always covers every
        // block's capacity (`T: Copy`, stale copies are inert).
        self.slab.resize(new_start + new_cap, entry);
        self.starts[cell] = new_start as u32;
        self.caps[cell] = new_cap as u32;
        self.lens[cell] = (live + 1) as u32;
        self.dead += old_cap;
        self.maybe_compact();
    }

    /// Re-packs the slab once dead space dominates. The thresholds keep
    /// the O(cells + len) re-pack amortized: dead slots are created a
    /// block at a time by relocations that already paid O(block), and a
    /// re-pack runs only after at least half the slab (and a constant
    /// floor, and an n_cells/8 floor for sparse huge grids) has died.
    fn maybe_compact(&mut self) {
        let n_cells = self.cols * self.rows;
        if self.dead > 64 && self.dead * 2 > self.slab.len() && self.dead * 8 > n_cells {
            self.gather_spare();
            self.place_spare(false);
        }
    }

    /// Copies every cell's live entries into `spare`, cell-major (the
    /// iteration order of [`Self::entries`]).
    fn gather_spare(&mut self) {
        self.spare.clear();
        self.spare.reserve(self.len);
        for c in 0..self.cols * self.rows {
            let s = self.starts[c] as usize;
            let l = self.lens[c] as usize;
            self.spare.extend_from_slice(&self.slab[s..s + l]);
        }
    }

    /// Rebuilds the slab and directory from `spare` by counting sort:
    /// count per cell into `lens`, prefix-sum into `starts`, then place
    /// (using `caps` as cursors). The result is perfectly packed
    /// (`caps == lens`, no dead space). Reuses every buffer's capacity.
    ///
    /// `count_clamps` makes entries outside the extent count as fresh
    /// clamped insertions (rebucket semantics); internal compaction
    /// passes `false` — maintenance must not inflate telemetry.
    fn place_spare(&mut self, count_clamps: bool) {
        let layout = self.layout();
        let n_cells = layout.cols * layout.rows;
        assert!(
            self.spare.len() <= u32::MAX as usize,
            "grid slab exceeds u32 addressing"
        );
        self.lens.clear();
        self.lens.resize(n_cells, 0);
        for &(_, p) in &self.spare {
            self.lens[layout.cell_of(p)] += 1;
        }
        self.starts.clear();
        self.starts.resize(n_cells, 0);
        let mut acc = 0u32;
        for c in 0..n_cells {
            self.starts[c] = acc;
            acc += self.lens[c];
        }
        self.caps.clear();
        self.caps.resize(n_cells, 0);
        self.slab.clear();
        if let Some(&filler) = self.spare.first() {
            self.slab.resize(self.spare.len(), filler);
        }
        for &(id, p) in &self.spare {
            if count_clamps && !layout.in_extent(p) {
                self.clamped += 1;
            }
            let c = layout.cell_of(p);
            let cursor = &mut self.caps[c];
            self.slab[(self.starts[c] + *cursor) as usize] = (id, p);
            *cursor += 1;
        }
        // The cursors ran up to the lengths: every block is exactly full.
        debug_assert_eq!(self.caps, self.lens);
        self.dead = 0;
        self.len = self.spare.len();
    }

    /// Removes one entry with this id stored at `point` (the location it
    /// was inserted with). Returns whether an entry was removed.
    ///
    /// `O(bucket)`: only the point's own cell is searched (a swap-remove
    /// inside the cell's live prefix).
    pub fn remove(&mut self, id: T, point: Point) -> bool
    where
        T: PartialEq,
    {
        if !point.is_finite() {
            return false;
        }
        let cell = self.cell_of(point);
        let s = self.starts[cell] as usize;
        let l = self.lens[cell] as usize;
        let bucket = &mut self.slab[s..s + l];
        match bucket.iter().position(|(other, _)| *other == id) {
            Some(pos) => {
                bucket.swap(pos, l - 1);
                self.lens[cell] = (l - 1) as u32;
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Iterates every stored `(id, point)` entry, in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = (T, Point)> + '_ {
        (0..self.cols * self.rows).flat_map(move |c| {
            let s = self.starts[c] as usize;
            let l = self.lens[c] as usize;
            self.slab[s..s + l].iter().copied()
        })
    }

    /// Re-lays the grid out over new geometry, re-inserting every live
    /// entry exactly — the adaptive-growth operation for an index whose
    /// build-time region guess turned out to under-cover the workload.
    ///
    /// Queries are exact before and after (bucketing only affects how
    /// many candidates are distance-checked), so rebucketing can never
    /// change a query result — callers may grow the extent at any point
    /// without affecting decisions built on top of the index.
    ///
    /// The rebuild reuses the index's retained buffers (directory and
    /// slabs), so repeated growth steps allocate only when the new
    /// geometry or population outgrows every previous one.
    ///
    /// The clamp counter ([`GridIndex::n_clamped_insertions`]) carries
    /// over and keeps counting: entries still outside the *new* extent
    /// count as fresh clamped insertions, so the telemetry stays a
    /// cumulative measure of how often the laid-out extent was missed.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn rebucket(&mut self, cell_size: f64, bounds: BoundingBox) {
        let layout = Layout::new(cell_size, bounds);
        self.gather_spare();
        self.cell_size = layout.cell_size;
        self.origin = layout.origin;
        self.requested = bounds;
        self.cols = layout.cols;
        self.rows = layout.rows;
        self.place_spare(true);
    }

    /// Keeps only the entries satisfying the predicate (order-preserving
    /// within each cell, like `Vec::retain`).
    pub fn retain(&mut self, mut keep: impl FnMut(T, Point) -> bool) {
        let mut len = 0;
        for c in 0..self.cols * self.rows {
            let s = self.starts[c] as usize;
            let l = self.lens[c] as usize;
            let mut kept = 0usize;
            for r in 0..l {
                let entry = self.slab[s + r];
                if keep(entry.0, entry.1) {
                    self.slab[s + kept] = entry;
                    kept += 1;
                }
            }
            self.lens[c] = kept as u32;
            len += kept;
        }
        self.len = len;
    }

    /// Ids of all points with `distance(center) <= radius`, in unspecified
    /// order. Exact (candidates from the covering cells are filtered by
    /// true Euclidean distance).
    pub fn within(&self, center: Point, radius: f64) -> impl Iterator<Item = T> + '_ {
        self.within_entries(center, radius).map(|(id, _)| id)
    }

    /// Like [`Self::within`] but also yields the stored point.
    pub fn within_entries(
        &self,
        center: Point,
        radius: f64,
    ) -> impl Iterator<Item = (T, Point)> + '_ {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be non-negative and finite, got {radius}"
        );
        let r_sq = radius * radius;
        let (cx0, cy0) = self.cell_coords(Point::new(center.x - radius, center.y - radius));
        let (cx1, cy1) = self.cell_coords(Point::new(center.x + radius, center.y + radius));
        (cy0..=cy1)
            .flat_map(move |cy| (cx0..=cx1).map(move |cx| cy * self.cols + cx))
            .flat_map(move |cell| {
                let s = self.starts[cell] as usize;
                let l = self.lens[cell] as usize;
                self.slab[s..s + l].iter().copied()
            })
            .filter(move |(_, p)| p.distance_sq(center) <= r_sq)
    }

    /// Calls `f` for every stored `(id, point)` with
    /// `distance(center) <= radius` — the loop form of
    /// [`Self::within_entries`], used by the per-check-in hot path (the
    /// closure compiles to a tight nested loop over contiguous cell
    /// blocks, with no iterator-adaptor state).
    ///
    /// Visit order is the same as [`Self::within_entries`]'s yield order.
    // ltc-lint: hot-path
    pub fn for_each_within_entries(&self, center: Point, radius: f64, mut f: impl FnMut(T, Point)) {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be non-negative and finite, got {radius}"
        );
        let r_sq = radius * radius;
        let (cx0, cy0) = self.cell_coords(Point::new(center.x - radius, center.y - radius));
        let (cx1, cy1) = self.cell_coords(Point::new(center.x + radius, center.y + radius));
        for cy in cy0..=cy1 {
            let row = cy * self.cols;
            for cx in cx0..=cx1 {
                let cell = row + cx;
                let s = self.starts[cell] as usize;
                let l = self.lens[cell] as usize;
                for &(id, p) in &self.slab[s..s + l] {
                    if p.distance_sq(center) <= r_sq {
                        f(id, p);
                    }
                }
            }
        }
    }

    /// Number of points within `radius` of `center`.
    pub fn count_within(&self, center: Point, radius: f64) -> usize {
        self.within(center, radius).count()
    }

    /// Whether a point falls inside the laid-out cell grid without
    /// clamping.
    #[inline]
    fn in_extent(&self, p: Point) -> bool {
        self.layout().in_extent(p)
    }

    /// Row-major cell index of a (possibly out-of-extent) point.
    #[inline]
    fn cell_of(&self, p: Point) -> usize {
        self.layout().cell_of(p)
    }

    /// Clamped cell coordinates of a (possibly out-of-bounds) point.
    #[inline]
    fn cell_coords(&self, p: Point) -> (usize, usize) {
        self.layout().cell_coords(p)
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceGrid;
    use super::*;
    use proptest::prelude::*;

    fn brute_within(pts: &[(u32, Point)], center: Point, radius: f64) -> Vec<u32> {
        let mut v: Vec<u32> = pts
            .iter()
            .filter(|(_, p)| p.distance(center) <= radius)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_index_queries_cleanly() {
        let idx: GridIndex<u32> = GridIndex::build(1.0, std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.count_within(Point::new(3.0, 3.0), 100.0), 0);
    }

    #[test]
    fn single_point() {
        let idx = GridIndex::build(2.0, vec![(1u32, Point::new(1.0, 1.0))]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.within(Point::ORIGIN, 2.0).collect::<Vec<_>>(), vec![1]);
        assert!(idx.within(Point::ORIGIN, 1.0).next().is_none());
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let idx = GridIndex::build(5.0, vec![(9u32, Point::new(3.0, 4.0))]);
        // distance exactly 5.0
        assert_eq!(idx.count_within(Point::ORIGIN, 5.0), 1);
        assert_eq!(idx.count_within(Point::ORIGIN, 4.999), 0);
    }

    #[test]
    fn duplicate_locations_all_returned() {
        let p = Point::new(2.0, 2.0);
        let idx = GridIndex::build(1.0, vec![(1u32, p), (2, p), (3, p)]);
        let mut got: Vec<_> = idx.within(p, 0.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn query_radius_larger_than_cell_size() {
        let pts: Vec<(u32, Point)> = (0..100)
            .map(|i| (i, Point::new((i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0)))
            .collect();
        let idx = GridIndex::build(2.0, pts.iter().copied());
        let center = Point::new(13.0, 13.0);
        for radius in [0.5, 3.0, 7.5, 40.0] {
            let mut got: Vec<u32> = idx.within(center, radius).collect();
            got.sort_unstable();
            assert_eq!(got, brute_within(&pts, center, radius), "radius {radius}");
        }
    }

    #[test]
    fn queries_outside_bounding_box() {
        let pts = [(0u32, Point::new(10.0, 10.0)), (1, Point::new(12.0, 10.0))];
        let idx = GridIndex::build(1.0, pts.iter().copied());
        // Center far outside the data extent.
        assert_eq!(idx.count_within(Point::new(-100.0, -100.0), 10.0), 0);
        assert_eq!(idx.count_within(Point::new(-100.0, -100.0), 1000.0), 2);
    }

    #[test]
    fn collinear_points_on_one_row() {
        let pts: Vec<(u32, Point)> = (0..20).map(|i| (i, Point::new(i as f64, 0.0))).collect();
        let idx = GridIndex::build(4.0, pts.iter().copied());
        let mut got: Vec<u32> = idx.within(Point::new(10.0, 0.0), 2.5).collect();
        got.sort_unstable();
        assert_eq!(got, brute_within(&pts, Point::new(10.0, 0.0), 2.5));
    }

    #[test]
    fn remove_evicts_and_readd_restores() {
        let p = Point::new(5.0, 5.0);
        let mut idx = GridIndex::build(3.0, vec![(1u32, p), (2, Point::new(6.0, 5.0))]);
        assert!(idx.remove(1, p));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.within(p, 2.0).collect::<Vec<_>>(), vec![2]);
        // Removing again is a no-op.
        assert!(!idx.remove(1, p));
        // Re-adding restores visibility.
        idx.insert(1, p);
        let mut got: Vec<u32> = idx.within(p, 2.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn remove_with_wrong_location_misses() {
        let mut idx = GridIndex::build(
            1.0,
            vec![(1u32, Point::new(0.5, 0.5)), (2, Point::new(20.0, 20.0))],
        );
        // A location in a different cell cannot find entry 1.
        assert!(!idx.remove(1, Point::new(20.0, 20.0)));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn retain_filters_by_predicate() {
        let pts: Vec<(u32, Point)> = (0..30).map(|i| (i, Point::new(i as f64, 0.0))).collect();
        let mut idx = GridIndex::build(4.0, pts.iter().copied());
        idx.retain(|id, _| id % 3 == 0);
        assert_eq!(idx.len(), 10);
        let mut got: Vec<u32> = idx.within(Point::new(15.0, 0.0), 100.0).collect();
        got.sort_unstable();
        assert_eq!(got, (0..30).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn with_bounds_accepts_out_of_extent_inserts() {
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(10.0, 10.0));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(2.0, bounds);
        idx.insert(1, Point::new(5.0, 5.0));
        // Far outside the declared extent: clamped into a border cell but
        // still found exactly.
        idx.insert(2, Point::new(100.0, 100.0));
        assert_eq!(idx.within(Point::new(100.0, 100.0), 1.0).next(), Some(2));
        assert_eq!(idx.within(Point::new(5.0, 5.0), 1.0).next(), Some(1));
        assert_eq!(idx.count_within(Point::new(50.0, 50.0), 10.0), 0);
        assert!(idx.remove(2, Point::new(100.0, 100.0)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn huge_region_coarsens_instead_of_exploding() {
        // A country-sized region with a tiny cell would naively need
        // ~1e9 cells; the cap coarsens cells instead of allocating them.
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(1.0e6, 1.0e6));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(30.0, bounds);
        assert!(idx.cols * idx.rows <= 1 << 20);
        // Queries stay exact at the coarser granularity.
        idx.insert(1, Point::new(987_654.0, 123_456.0));
        idx.insert(2, Point::new(987_700.0, 123_456.0));
        assert_eq!(
            idx.within(Point::new(987_654.0, 123_456.0), 10.0)
                .collect::<Vec<_>>(),
            vec![1]
        );
        let mut both: Vec<u32> = idx.within(Point::new(987_677.0, 123_456.0), 50.0).collect();
        both.sort_unstable();
        assert_eq!(both, vec![1, 2]);
        assert!(idx.remove(1, Point::new(987_654.0, 123_456.0)));
        assert_eq!(idx.count_within(Point::new(987_654.0, 123_456.0), 10.0), 0);
    }

    #[test]
    fn astronomical_bounds_coarsen_without_overflow() {
        // A width this large would saturate a float→usize cast; the
        // coarsening loop must compare in f64 and keep doubling instead
        // of overflowing on the `+ 1` (debug builds panic on overflow).
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(1.0e21, 1.0));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(30.0, bounds);
        assert!(idx.cols * idx.rows <= 1 << 20);
        idx.insert(1, Point::new(1.0e21, 0.5));
        assert_eq!(idx.within(Point::new(1.0e21, 0.5), 10.0).next(), Some(1));
    }

    #[test]
    fn clamped_insertions_are_counted() {
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(10.0, 10.0));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(2.0, bounds);
        assert_eq!(idx.n_clamped_insertions(), 0);
        idx.insert(1, Point::new(5.0, 5.0));
        assert_eq!(idx.n_clamped_insertions(), 0, "in-extent insert is free");
        idx.insert(2, Point::new(100.0, 5.0));
        idx.insert(3, Point::new(-1.0, 5.0));
        idx.insert(4, Point::new(5.0, 1.0e6));
        assert_eq!(idx.n_clamped_insertions(), 3);
        // The counter is telemetry: removal does not decrement it.
        assert!(idx.remove(2, Point::new(100.0, 5.0)));
        assert_eq!(idx.n_clamped_insertions(), 3);
        // Build from points never clamps (the extent is their bbox).
        let built = GridIndex::build(
            1.0,
            vec![(1u32, Point::new(0.0, 0.0)), (2, Point::new(9.0, 9.0))],
        );
        assert_eq!(built.n_clamped_insertions(), 0);
    }

    #[test]
    fn rebucket_preserves_entries_and_grows_the_extent() {
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(10.0, 10.0));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(2.0, bounds);
        idx.insert(1, Point::new(5.0, 5.0));
        idx.insert(2, Point::new(100.0, 100.0)); // clamps
        idx.insert(3, Point::new(120.0, 90.0)); // clamps
        assert_eq!(idx.n_clamped_insertions(), 2);

        let grown = BoundingBox::new(Point::ORIGIN, Point::new(130.0, 130.0));
        idx.rebucket(2.0, grown);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.bounds().min, Point::ORIGIN);
        assert!(idx.bounds().max.x >= 130.0 && idx.bounds().max.y >= 130.0);
        // The counter carried over, and the re-inserted entries now fit.
        assert_eq!(idx.n_clamped_insertions(), 2);
        idx.insert(4, Point::new(125.0, 5.0));
        assert_eq!(idx.n_clamped_insertions(), 2, "in-extent after growth");
        // Queries stay exact over the new layout.
        let mut got: Vec<u32> = idx.within(Point::new(110.0, 95.0), 15.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![2, 3]);
        assert_eq!(idx.within(Point::new(5.0, 5.0), 1.0).next(), Some(1));
        assert!(idx.remove(2, Point::new(100.0, 100.0)));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn rebucket_recounts_still_clamped_entries() {
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(10.0, 10.0));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(2.0, bounds);
        idx.insert(1, Point::new(100.0, 100.0)); // clamps
        assert_eq!(idx.n_clamped_insertions(), 1);
        // Growing to a box that still excludes the entry re-counts it.
        idx.rebucket(2.0, BoundingBox::new(Point::ORIGIN, Point::new(50.0, 50.0)));
        assert_eq!(idx.n_clamped_insertions(), 2);
        // Growing enough stops the counting.
        idx.rebucket(
            2.0,
            BoundingBox::new(Point::ORIGIN, Point::new(200.0, 200.0)),
        );
        assert_eq!(idx.n_clamped_insertions(), 2);
        assert_eq!(idx.within(Point::new(100.0, 100.0), 1.0).next(), Some(1));
    }

    #[test]
    fn entries_yield_every_stored_point() {
        let pts: Vec<(u32, Point)> = (0..25)
            .map(|i| (i, Point::new((i % 5) as f64 * 7.0, (i / 5) as f64 * 7.0)))
            .collect();
        let idx = GridIndex::build(4.0, pts.iter().copied());
        let mut got: Vec<(u32, Point)> = idx.entries().collect();
        got.sort_unstable_by_key(|(id, _)| *id);
        assert_eq!(got, pts);
    }

    #[test]
    fn heavy_insert_remove_churn_stays_exact() {
        // Drive the relocation + compaction machinery hard on one cell
        // region and verify queries against brute force throughout.
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(16.0, 16.0));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(4.0, bounds);
        let mut live: Vec<(u32, Point)> = Vec::new();
        let mut next_id = 0u32;
        for round in 0..50 {
            for i in 0..40 {
                let p = Point::new(((round * 7 + i) % 17) as f64, ((i * 3) % 17) as f64);
                idx.insert(next_id, p);
                live.push((next_id, p));
                next_id += 1;
            }
            // Remove every third live entry.
            let mut k = 0;
            live.retain(|&(id, p)| {
                k += 1;
                if k % 3 == 0 {
                    assert!(idx.remove(id, p));
                    false
                } else {
                    true
                }
            });
            assert_eq!(idx.len(), live.len());
            let center = Point::new((round % 16) as f64, 8.0);
            for radius in [0.0, 2.5, 6.0, 30.0] {
                let mut got: Vec<u32> = idx.within(center, radius).collect();
                got.sort_unstable();
                assert_eq!(got, brute_within(&live, center, radius));
            }
        }
    }

    #[test]
    fn for_each_matches_iterator_order() {
        let pts: Vec<(u32, Point)> = (0..60)
            .map(|i| (i, Point::new((i % 12) as f64, (i / 12) as f64 * 2.0)))
            .collect();
        let idx = GridIndex::build(3.0, pts.iter().copied());
        let center = Point::new(5.0, 4.0);
        let via_iter: Vec<(u32, Point)> = idx.within_entries(center, 4.5).collect();
        let mut via_loop = Vec::new();
        idx.for_each_within_entries(center, 4.5, |id, p| via_loop.push((id, p)));
        assert_eq!(via_iter, via_loop);
    }

    #[test]
    #[should_panic(expected = "cell_size must be positive")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::build(0.0, vec![(0u32, Point::ORIGIN)]);
    }

    #[test]
    #[should_panic(expected = "radius must be non-negative")]
    fn negative_radius_panics() {
        let idx = GridIndex::build(1.0, vec![(0u32, Point::ORIGIN)]);
        let _ = idx.within(Point::ORIGIN, -1.0).count();
    }

    // ---- differential suite: CSR layout vs the reference Vec-of-Vec ----

    /// One random operation against both layouts.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(f64, f64),
        /// Remove the i-th (mod len) live id, by its insert location.
        Remove(usize),
        RetainMod(u32),
        Query(f64, f64, f64),
        Rebucket(f64, f64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Weighted choice by discriminant (the offline proptest shim has
        // no `prop_oneof!`): 4× insert, 2× remove, 1× retain, 3× query,
        // 1× rebucket.
        (
            0u32..11,
            -40.0..140.0f64,
            -40.0..140.0f64,
            0.0..60.0f64,
            0usize..256,
            2u32..6,
        )
            .prop_map(|(d, x, y, r, i, m)| match d {
                0..=3 => Op::Insert(x, y),
                4..=5 => Op::Remove(i),
                6 => Op::RetainMod(m),
                7..=9 => Op::Query(x, y, r),
                _ => Op::Rebucket(4.0 + r / 2.0, 60.0 + (x + 40.0) * 2.0),
            })
    }

    proptest! {
        /// Every operation sequence leaves the CSR grid and the reference
        /// layout observationally identical — including element *order*
        /// of queries and full-entry iteration, which is what makes the
        /// CSR swap bit-invisible to everything built on top.
        #[test]
        fn csr_matches_reference_layout(ops in prop::collection::vec(op_strategy(), 1..120)) {
            let bounds = BoundingBox::new(Point::ORIGIN, Point::new(100.0, 100.0));
            let mut csr: GridIndex<u32> = GridIndex::with_bounds(10.0, bounds);
            let mut reference: ReferenceGrid<u32> = ReferenceGrid::with_bounds(10.0, bounds);
            let mut live: Vec<(u32, Point)> = Vec::new();
            let mut next_id = 0u32;
            for op in ops {
                match op {
                    Op::Insert(x, y) => {
                        let p = Point::new(x, y);
                        csr.insert(next_id, p);
                        reference.insert(next_id, p);
                        live.push((next_id, p));
                        next_id += 1;
                    }
                    Op::Remove(i) => {
                        if !live.is_empty() {
                            let (id, p) = live.swap_remove(i % live.len());
                            prop_assert!(csr.remove(id, p));
                            prop_assert!(reference.remove(id, p));
                        }
                    }
                    Op::RetainMod(m) => {
                        csr.retain(|id, _| id % m == 0);
                        reference.retain(|id, _| id % m == 0);
                        live.retain(|(id, _)| id % m == 0);
                    }
                    Op::Query(x, y, r) => {
                        let c = Point::new(x, y);
                        let a: Vec<(u32, Point)> = csr.within_entries(c, r).collect();
                        let b: Vec<(u32, Point)> = reference.within_entries(c, r).collect();
                        prop_assert_eq!(a, b);
                        let a_ids: Vec<u32> = csr.within(c, r).collect();
                        let b_ids: Vec<u32> = reference.within(c, r).collect();
                        prop_assert_eq!(a_ids, b_ids);
                    }
                    Op::Rebucket(cs, ext) => {
                        let b = BoundingBox::new(Point::ORIGIN, Point::new(ext, ext));
                        csr.rebucket(cs, b);
                        reference.rebucket(cs, b);
                    }
                }
                prop_assert_eq!(csr.len(), reference.len());
                prop_assert_eq!(csr.is_empty(), reference.is_empty());
                prop_assert_eq!(csr.n_clamped_insertions(), reference.n_clamped_insertions());
                prop_assert_eq!(csr.cell_size(), reference.cell_size());
                let a: Vec<(u32, Point)> = csr.entries().collect();
                let b: Vec<(u32, Point)> = reference.entries().collect();
                prop_assert_eq!(a, b);
            }
        }
    }
}
