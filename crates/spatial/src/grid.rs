//! Uniform-grid spatial index with eviction support.
//!
//! Every LTC algorithm enumerates the tasks *within `d_max`* of each
//! arriving worker (the eligibility radius; see `ltc-core`). Workers
//! stream past a task set that only ever *shrinks* — once a task reaches
//! its quality threshold it stops being a candidate forever — so the
//! index supports `remove` (and `insert`, for dynamically posted tasks):
//! the streaming engine evicts completed tasks instead of re-filtering
//! them on every query, keeping the hot path proportional to the
//! *remaining* work.
//!
//! Storage is one bucket (`Vec`) per cell with cell size equal to the
//! query radius: a radius query touches at most 9 cells and then
//! distance-filters candidates exactly, and removal is a swap-remove in
//! one bucket.

use crate::{BoundingBox, Point};

/// A uniform grid over 2-D points carrying ids of type `T`.
///
/// Built from a point set; supports exact radius queries, point
/// insertion, and removal. Queries with radius larger than the build-time
/// `cell_size` still work (more cells are scanned), so a single index can
/// serve several radii.
///
/// The grid's extent is fixed at build time (the bounding box of the
/// initial points, or the box passed to [`GridIndex::with_bounds`]).
/// Points outside the extent are clamped into the border cells; queries
/// clamp the same way, so results stay exact — out-of-extent points only
/// cost extra distance checks in the border cells.
///
/// ```
/// use ltc_spatial::{GridIndex, Point};
/// let mut index = GridIndex::build(10.0, vec![(7u32, Point::new(3.0, 3.0))]);
/// assert_eq!(index.within(Point::ORIGIN, 5.0).collect::<Vec<_>>(), vec![7]);
/// index.remove(7, Point::new(3.0, 3.0));
/// assert!(index.within(Point::ORIGIN, 5.0).next().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_size: f64,
    /// Grid origin (min corner of the build-time bounding box).
    origin: Point,
    /// The bounds the grid was *asked* to cover (the laid-out extent
    /// rounds these up to whole cells). Rebuilding with exactly these
    /// bounds reproduces the layout — durable state records them so
    /// restore is a fixed point (see [`GridIndex::requested_bounds`]).
    requested: BoundingBox,
    /// Number of columns / rows.
    cols: usize,
    rows: usize,
    /// One bucket per cell, row-major. Buckets are unordered; removal is
    /// a swap-remove.
    cells: Vec<Vec<(T, Point)>>,
    len: usize,
    /// Cumulative count of insertions that fell outside the build-time
    /// extent and were clamped into a border cell — telemetry for
    /// detecting a bad region guess (see [`GridIndex::n_clamped_insertions`]).
    clamped: u64,
}

impl<T: Copy> GridIndex<T> {
    /// Builds an index over `(id, point)` pairs with the given cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite, or if
    /// any point has a non-finite coordinate.
    pub fn build<I>(cell_size: f64, points: I) -> Self
    where
        I: IntoIterator<Item = (T, Point)>,
    {
        let items: Vec<(T, Point)> = points.into_iter().collect();
        for (_, p) in &items {
            assert!(p.is_finite(), "grid index points must be finite, got {p}");
        }
        let bbox = BoundingBox::of_points(items.iter().map(|(_, p)| *p))
            .unwrap_or_else(|| BoundingBox::new(Point::ORIGIN, Point::ORIGIN));
        let mut index = Self::with_bounds(cell_size, bbox);
        for (id, p) in items {
            index.insert(id, p);
        }
        index
    }

    /// Builds an empty index covering `bounds`. Use this when points will
    /// arrive incrementally (e.g. dynamically posted tasks) and the
    /// service region is known up front.
    ///
    /// The cell count is capped (at ~1M cells): for a huge region with a
    /// tiny `cell_size`, cells are transparently coarsened (doubled until
    /// the grid fits) instead of eagerly allocating gigabytes of empty
    /// buckets. Queries stay exact — coarser cells only mean more
    /// distance checks per query.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn with_bounds(cell_size: f64, bounds: BoundingBox) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        /// Upper bound on allocated cells (~24 MB of bucket headers).
        const MAX_CELLS: usize = 1 << 20;
        let mut cell_size = cell_size;
        let (mut cols, mut rows);
        loop {
            // Compare against the cap in f64 before casting: a huge
            // extent (e.g. growth over a far-away task) would saturate
            // the cast at `usize::MAX` and make the `+ 1` overflow.
            let fcols = (bounds.width() / cell_size).floor();
            let frows = (bounds.height() / cell_size).floor();
            if fcols < MAX_CELLS as f64 && frows < MAX_CELLS as f64 {
                cols = (fcols as usize + 1).max(1);
                rows = (frows as usize + 1).max(1);
                if cols * rows <= MAX_CELLS {
                    break;
                }
            }
            cell_size *= 2.0;
        }
        Self {
            cell_size,
            origin: bounds.min,
            requested: bounds,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            len: 0,
            clamped: 0,
        }
    }

    /// The effective cell size (the requested size, possibly coarsened by
    /// the cell-count cap; see [`GridIndex::with_bounds`]).
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The extent the grid was laid out over: origin plus `cols × rows`
    /// cells. Contains the build-time bounds (cell counts round up), and
    /// rebuilding an index with these bounds preserves exact query
    /// results.
    #[inline]
    pub fn bounds(&self) -> BoundingBox {
        BoundingBox::new(
            self.origin,
            Point::new(
                self.origin.x + self.cell_size * self.cols as f64,
                self.origin.y + self.cell_size * self.rows as f64,
            ),
        )
    }

    /// The bounds the grid was asked to cover ([`GridIndex::with_bounds`]
    /// / [`GridIndex::rebucket`] argument; for [`GridIndex::build`], the
    /// points' bounding box). Unlike [`GridIndex::bounds`] — which
    /// rounds up to whole cells and therefore *grows* when fed back in —
    /// rebuilding with these bounds reproduces the layout exactly, so
    /// durable state (engine snapshots) records them.
    #[inline]
    pub fn requested_bounds(&self) -> BoundingBox {
        self.requested
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cumulative count of [`GridIndex::insert`] calls whose point lay
    /// outside the build-time extent and was clamped into a border cell.
    /// Queries stay exact either way, but a growing count means the
    /// declared region under-covers the workload and border buckets are
    /// absorbing extra distance checks — an operator signal to rebuild
    /// with better bounds. The counter is monotone (removals do not
    /// decrement it) and is not persisted by snapshots.
    #[inline]
    pub fn n_clamped_insertions(&self) -> u64 {
        self.clamped
    }

    /// Overwrites the clamp counter with a recorded value — the restore
    /// half of durable clamp telemetry. Rebuilding an index from durable
    /// state re-inserts only the *live* entries, so the re-counted value
    /// under-states the cumulative history (evicted entries and clamps
    /// against earlier, smaller extents are gone); callers restoring an
    /// engine pass the persisted counter through here so the telemetry —
    /// and any growth threshold armed on it — continues where it left
    /// off instead of silently resetting.
    #[inline]
    pub fn restore_clamp_counter(&mut self, clamped: u64) {
        self.clamped = clamped;
    }

    /// Inserts a point. Points outside the build-time extent are clamped
    /// into border cells (queries stay exact; see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if the point has a non-finite coordinate.
    pub fn insert(&mut self, id: T, point: Point) {
        assert!(
            point.is_finite(),
            "grid index points must be finite, got {point}"
        );
        if !self.in_extent(point) {
            self.clamped += 1;
        }
        let cell = self.cell_of(point);
        self.cells[cell].push((id, point));
        self.len += 1;
    }

    /// Removes one entry with this id stored at `point` (the location it
    /// was inserted with). Returns whether an entry was removed.
    ///
    /// `O(bucket)`: only the point's own cell is searched.
    pub fn remove(&mut self, id: T, point: Point) -> bool
    where
        T: PartialEq,
    {
        if !point.is_finite() {
            return false;
        }
        let cell = self.cell_of(point);
        let bucket = &mut self.cells[cell];
        match bucket.iter().position(|(other, _)| *other == id) {
            Some(pos) => {
                bucket.swap_remove(pos);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Iterates every stored `(id, point)` entry, in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = (T, Point)> + '_ {
        self.cells.iter().flat_map(|bucket| bucket.iter().copied())
    }

    /// Re-lays the grid out over new geometry, re-inserting every live
    /// entry exactly — the adaptive-growth operation for an index whose
    /// build-time region guess turned out to under-cover the workload.
    ///
    /// Queries are exact before and after (bucketing only affects how
    /// many candidates are distance-checked), so rebucketing can never
    /// change a query result — callers may grow the extent at any point
    /// without affecting decisions built on top of the index.
    ///
    /// The clamp counter ([`GridIndex::n_clamped_insertions`]) carries
    /// over and keeps counting: entries still outside the *new* extent
    /// count as fresh clamped insertions, so the telemetry stays a
    /// cumulative measure of how often the laid-out extent was missed.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn rebucket(&mut self, cell_size: f64, bounds: BoundingBox) {
        let mut next = Self::with_bounds(cell_size, bounds);
        next.clamped = self.clamped;
        for bucket in std::mem::take(&mut self.cells) {
            for (id, p) in bucket {
                next.insert(id, p);
            }
        }
        *self = next;
    }

    /// Keeps only the entries satisfying the predicate.
    pub fn retain(&mut self, mut keep: impl FnMut(T, Point) -> bool) {
        let mut len = 0;
        for bucket in &mut self.cells {
            bucket.retain(|&(id, p)| keep(id, p));
            len += bucket.len();
        }
        self.len = len;
    }

    /// Ids of all points with `distance(center) <= radius`, in unspecified
    /// order. Exact (candidates from the covering cells are filtered by
    /// true Euclidean distance).
    pub fn within(&self, center: Point, radius: f64) -> impl Iterator<Item = T> + '_ {
        self.within_entries(center, radius).map(|(id, _)| id)
    }

    /// Like [`Self::within`] but also yields the stored point.
    pub fn within_entries(
        &self,
        center: Point,
        radius: f64,
    ) -> impl Iterator<Item = (T, Point)> + '_ {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be non-negative and finite, got {radius}"
        );
        let r_sq = radius * radius;
        let (cx0, cy0) = self.cell_coords(Point::new(center.x - radius, center.y - radius));
        let (cx1, cy1) = self.cell_coords(Point::new(center.x + radius, center.y + radius));
        (cy0..=cy1)
            .flat_map(move |cy| (cx0..=cx1).map(move |cx| cy * self.cols + cx))
            .flat_map(move |cell| self.cells[cell].iter().copied())
            .filter(move |(_, p)| p.distance_sq(center) <= r_sq)
    }

    /// Number of points within `radius` of `center`.
    pub fn count_within(&self, center: Point, radius: f64) -> usize {
        self.within(center, radius).count()
    }

    /// Whether a point falls inside the laid-out cell grid without
    /// clamping.
    #[inline]
    fn in_extent(&self, p: Point) -> bool {
        let cx = ((p.x - self.origin.x) / self.cell_size).floor();
        let cy = ((p.y - self.origin.y) / self.cell_size).floor();
        (0.0..self.cols as f64).contains(&cx) && (0.0..self.rows as f64).contains(&cy)
    }

    /// Row-major cell index of a (possibly out-of-extent) point.
    #[inline]
    fn cell_of(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cols + cx
    }

    /// Clamped cell coordinates of a (possibly out-of-bounds) point.
    #[inline]
    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x - self.origin.x) / self.cell_size).floor();
        let cy = ((p.y - self.origin.y) / self.cell_size).floor();
        let cx = (cx.max(0.0) as usize).min(self.cols - 1);
        let cy = (cy.max(0.0) as usize).min(self.rows - 1);
        (cx, cy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_within(pts: &[(u32, Point)], center: Point, radius: f64) -> Vec<u32> {
        let mut v: Vec<u32> = pts
            .iter()
            .filter(|(_, p)| p.distance(center) <= radius)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_index_queries_cleanly() {
        let idx: GridIndex<u32> = GridIndex::build(1.0, std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.count_within(Point::new(3.0, 3.0), 100.0), 0);
    }

    #[test]
    fn single_point() {
        let idx = GridIndex::build(2.0, vec![(1u32, Point::new(1.0, 1.0))]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.within(Point::ORIGIN, 2.0).collect::<Vec<_>>(), vec![1]);
        assert!(idx.within(Point::ORIGIN, 1.0).next().is_none());
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let idx = GridIndex::build(5.0, vec![(9u32, Point::new(3.0, 4.0))]);
        // distance exactly 5.0
        assert_eq!(idx.count_within(Point::ORIGIN, 5.0), 1);
        assert_eq!(idx.count_within(Point::ORIGIN, 4.999), 0);
    }

    #[test]
    fn duplicate_locations_all_returned() {
        let p = Point::new(2.0, 2.0);
        let idx = GridIndex::build(1.0, vec![(1u32, p), (2, p), (3, p)]);
        let mut got: Vec<_> = idx.within(p, 0.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn query_radius_larger_than_cell_size() {
        let pts: Vec<(u32, Point)> = (0..100)
            .map(|i| (i, Point::new((i % 10) as f64 * 3.0, (i / 10) as f64 * 3.0)))
            .collect();
        let idx = GridIndex::build(2.0, pts.iter().copied());
        let center = Point::new(13.0, 13.0);
        for radius in [0.5, 3.0, 7.5, 40.0] {
            let mut got: Vec<u32> = idx.within(center, radius).collect();
            got.sort_unstable();
            assert_eq!(got, brute_within(&pts, center, radius), "radius {radius}");
        }
    }

    #[test]
    fn queries_outside_bounding_box() {
        let pts = [(0u32, Point::new(10.0, 10.0)), (1, Point::new(12.0, 10.0))];
        let idx = GridIndex::build(1.0, pts.iter().copied());
        // Center far outside the data extent.
        assert_eq!(idx.count_within(Point::new(-100.0, -100.0), 10.0), 0);
        assert_eq!(idx.count_within(Point::new(-100.0, -100.0), 1000.0), 2);
    }

    #[test]
    fn collinear_points_on_one_row() {
        let pts: Vec<(u32, Point)> = (0..20).map(|i| (i, Point::new(i as f64, 0.0))).collect();
        let idx = GridIndex::build(4.0, pts.iter().copied());
        let mut got: Vec<u32> = idx.within(Point::new(10.0, 0.0), 2.5).collect();
        got.sort_unstable();
        assert_eq!(got, brute_within(&pts, Point::new(10.0, 0.0), 2.5));
    }

    #[test]
    fn remove_evicts_and_readd_restores() {
        let p = Point::new(5.0, 5.0);
        let mut idx = GridIndex::build(3.0, vec![(1u32, p), (2, Point::new(6.0, 5.0))]);
        assert!(idx.remove(1, p));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.within(p, 2.0).collect::<Vec<_>>(), vec![2]);
        // Removing again is a no-op.
        assert!(!idx.remove(1, p));
        // Re-adding restores visibility.
        idx.insert(1, p);
        let mut got: Vec<u32> = idx.within(p, 2.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn remove_with_wrong_location_misses() {
        let mut idx = GridIndex::build(
            1.0,
            vec![(1u32, Point::new(0.5, 0.5)), (2, Point::new(20.0, 20.0))],
        );
        // A location in a different cell cannot find entry 1.
        assert!(!idx.remove(1, Point::new(20.0, 20.0)));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn retain_filters_by_predicate() {
        let pts: Vec<(u32, Point)> = (0..30).map(|i| (i, Point::new(i as f64, 0.0))).collect();
        let mut idx = GridIndex::build(4.0, pts.iter().copied());
        idx.retain(|id, _| id % 3 == 0);
        assert_eq!(idx.len(), 10);
        let mut got: Vec<u32> = idx.within(Point::new(15.0, 0.0), 100.0).collect();
        got.sort_unstable();
        assert_eq!(got, (0..30).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn with_bounds_accepts_out_of_extent_inserts() {
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(10.0, 10.0));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(2.0, bounds);
        idx.insert(1, Point::new(5.0, 5.0));
        // Far outside the declared extent: clamped into a border cell but
        // still found exactly.
        idx.insert(2, Point::new(100.0, 100.0));
        assert_eq!(idx.within(Point::new(100.0, 100.0), 1.0).next(), Some(2));
        assert_eq!(idx.within(Point::new(5.0, 5.0), 1.0).next(), Some(1));
        assert_eq!(idx.count_within(Point::new(50.0, 50.0), 10.0), 0);
        assert!(idx.remove(2, Point::new(100.0, 100.0)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn huge_region_coarsens_instead_of_exploding() {
        // A country-sized region with a tiny cell would naively need
        // ~1e9 cells; the cap coarsens cells instead of allocating them.
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(1.0e6, 1.0e6));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(30.0, bounds);
        assert!(idx.cols * idx.rows <= 1 << 20);
        // Queries stay exact at the coarser granularity.
        idx.insert(1, Point::new(987_654.0, 123_456.0));
        idx.insert(2, Point::new(987_700.0, 123_456.0));
        assert_eq!(
            idx.within(Point::new(987_654.0, 123_456.0), 10.0)
                .collect::<Vec<_>>(),
            vec![1]
        );
        let mut both: Vec<u32> = idx.within(Point::new(987_677.0, 123_456.0), 50.0).collect();
        both.sort_unstable();
        assert_eq!(both, vec![1, 2]);
        assert!(idx.remove(1, Point::new(987_654.0, 123_456.0)));
        assert_eq!(idx.count_within(Point::new(987_654.0, 123_456.0), 10.0), 0);
    }

    #[test]
    fn astronomical_bounds_coarsen_without_overflow() {
        // A width this large would saturate a float→usize cast; the
        // coarsening loop must compare in f64 and keep doubling instead
        // of overflowing on the `+ 1` (debug builds panic on overflow).
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(1.0e21, 1.0));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(30.0, bounds);
        assert!(idx.cols * idx.rows <= 1 << 20);
        idx.insert(1, Point::new(1.0e21, 0.5));
        assert_eq!(idx.within(Point::new(1.0e21, 0.5), 10.0).next(), Some(1));
    }

    #[test]
    fn clamped_insertions_are_counted() {
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(10.0, 10.0));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(2.0, bounds);
        assert_eq!(idx.n_clamped_insertions(), 0);
        idx.insert(1, Point::new(5.0, 5.0));
        assert_eq!(idx.n_clamped_insertions(), 0, "in-extent insert is free");
        idx.insert(2, Point::new(100.0, 5.0));
        idx.insert(3, Point::new(-1.0, 5.0));
        idx.insert(4, Point::new(5.0, 1.0e6));
        assert_eq!(idx.n_clamped_insertions(), 3);
        // The counter is telemetry: removal does not decrement it.
        assert!(idx.remove(2, Point::new(100.0, 5.0)));
        assert_eq!(idx.n_clamped_insertions(), 3);
        // Build from points never clamps (the extent is their bbox).
        let built = GridIndex::build(
            1.0,
            vec![(1u32, Point::new(0.0, 0.0)), (2, Point::new(9.0, 9.0))],
        );
        assert_eq!(built.n_clamped_insertions(), 0);
    }

    #[test]
    fn rebucket_preserves_entries_and_grows_the_extent() {
        let bounds = BoundingBox::new(Point::ORIGIN, Point::new(10.0, 10.0));
        let mut idx: GridIndex<u32> = GridIndex::with_bounds(2.0, bounds);
        idx.insert(1, Point::new(5.0, 5.0));
        idx.insert(2, Point::new(100.0, 100.0)); // clamps
        idx.insert(3, Point::new(120.0, 90.0)); // clamps
        assert_eq!(idx.n_clamped_insertions(), 2);

        let grown = BoundingBox::new(Point::ORIGIN, Point::new(130.0, 130.0));
        idx.rebucket(2.0, grown);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.bounds().min, Point::ORIGIN);
        assert!(idx.bounds().max.x >= 130.0 && idx.bounds().max.y >= 130.0);
        // The counter carried over, and the re-inserted entries now fit.
        assert_eq!(idx.n_clamped_insertions(), 2);
        idx.insert(4, Point::new(125.0, 5.0));
        assert_eq!(idx.n_clamped_insertions(), 2, "in-extent after growth");
        // Queries stay exact over the new layout.
        let mut got: Vec<u32> = idx.within(Point::new(110.0, 95.0), 15.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![2, 3]);
        assert_eq!(idx.within(Point::new(5.0, 5.0), 1.0).next(), Some(1));
        assert!(idx.remove(2, Point::new(100.0, 100.0)));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn entries_yield_every_stored_point() {
        let pts: Vec<(u32, Point)> = (0..25)
            .map(|i| (i, Point::new((i % 5) as f64 * 7.0, (i / 5) as f64 * 7.0)))
            .collect();
        let idx = GridIndex::build(4.0, pts.iter().copied());
        let mut got: Vec<(u32, Point)> = idx.entries().collect();
        got.sort_unstable_by_key(|(id, _)| *id);
        assert_eq!(got, pts);
    }

    #[test]
    #[should_panic(expected = "cell_size must be positive")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::build(0.0, vec![(0u32, Point::ORIGIN)]);
    }

    #[test]
    #[should_panic(expected = "radius must be non-negative")]
    fn negative_radius_panics() {
        let idx = GridIndex::build(1.0, vec![(0u32, Point::ORIGIN)]);
        let _ = idx.within(Point::ORIGIN, -1.0).count();
    }
}
