//! Convex hulls and uniform sampling inside them.
//!
//! The paper places the tasks of the real-world datasets "with the
//! coordinates of POIs ... within the convex region of the workers"
//! (Sec. V-A). The check-in workload generator reproduces that recipe, so
//! this module provides hull construction (Andrew's monotone chain),
//! containment tests and area-uniform sampling inside a convex polygon.

use crate::point::cross;
use crate::Point;
use rand::Rng;

/// Computes the convex hull of a point set with Andrew's monotone chain.
///
/// Returns hull vertices in counter-clockwise order without repeating the
/// first vertex. Collinear boundary points are dropped (strict hull).
/// Degenerate inputs are handled: fewer than three distinct points return
/// the distinct points themselves (sorted), and fully collinear inputs
/// return the two extreme points.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("hull input must not contain NaN")
            .then(
                a.y.partial_cmp(&b.y)
                    .expect("hull input must not contain NaN"),
            )
    });
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return pts;
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point == first point
    if hull.len() < 3 {
        // All points collinear: keep the two extremes.
        return vec![pts[0], pts[n - 1]];
    }
    hull
}

/// A convex polygon with counter-clockwise vertices, as produced by
/// [`convex_hull`].
#[derive(Debug, Clone)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
    /// Prefix sums of triangle-fan areas, used for area-uniform sampling.
    fan_area_prefix: Vec<f64>,
}

impl ConvexPolygon {
    /// Builds the convex hull of `points` and wraps it.
    ///
    /// Returns `None` when the hull is degenerate (fewer than 3 vertices,
    /// i.e. the points are collinear or fewer than 3 are distinct).
    pub fn from_points(points: &[Point]) -> Option<Self> {
        let vertices = convex_hull(points);
        if vertices.len() < 3 {
            return None;
        }
        let anchor = vertices[0];
        let mut prefix = Vec::with_capacity(vertices.len() - 2);
        let mut acc = 0.0;
        for i in 1..vertices.len() - 1 {
            acc += triangle_area(anchor, vertices[i], vertices[i + 1]);
            prefix.push(acc);
        }
        Some(Self {
            vertices,
            fan_area_prefix: prefix,
        })
    }

    /// The hull vertices, counter-clockwise.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Total polygon area.
    pub fn area(&self) -> f64 {
        *self
            .fan_area_prefix
            .last()
            .expect("a convex polygon has at least one fan triangle")
    }

    /// Whether `p` lies inside the polygon (boundary inclusive, with a tiny
    /// numeric tolerance).
    pub fn contains(&self, p: Point) -> bool {
        const EPS: f64 = 1e-9;
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if cross(a, b, p) < -EPS {
                return false;
            }
        }
        true
    }

    /// Samples a point uniformly (by area) inside the polygon.
    ///
    /// Picks a fan triangle proportionally to its area, then samples the
    /// triangle with the standard `(1 − √u)` barycentric trick.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let total = self.area();
        let target = rng.gen::<f64>() * total;
        let idx = match self
            .fan_area_prefix
            .binary_search_by(|a| a.partial_cmp(&target).expect("areas are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.fan_area_prefix.len() - 1),
        };
        let a = self.vertices[0];
        let b = self.vertices[idx + 1];
        let c = self.vertices[idx + 2];
        let r1: f64 = rng.gen();
        let r2: f64 = rng.gen();
        let sqrt_r1 = r1.sqrt();
        let u = 1.0 - sqrt_r1;
        let v = sqrt_r1 * (1.0 - r2);
        let w = sqrt_r1 * r2;
        Point::new(u * a.x + v * b.x + w * c.x, u * a.y + v * b.y + w * c.y)
    }
}

#[inline]
fn triangle_area(a: Point, b: Point, c: Point) -> f64 {
    cross(a, b, c).abs() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let mut pts = square();
        pts.push(Point::new(0.5, 0.5));
        pts.push(Point::new(0.25, 0.75));
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        for corner in square() {
            assert!(hull.contains(&corner), "missing corner {corner}");
        }
    }

    #[test]
    fn hull_drops_collinear_boundary_points() {
        let mut pts = square();
        pts.push(Point::new(0.5, 0.0)); // on the bottom edge
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
    }

    #[test]
    fn hull_of_collinear_points_is_extremes() {
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::new(i as f64, 2.0 * i as f64))
            .collect();
        let hull = convex_hull(&pts);
        assert_eq!(hull, vec![Point::new(0.0, 0.0), Point::new(4.0, 8.0)]);
    }

    #[test]
    fn hull_of_few_points() {
        assert!(convex_hull(&[]).is_empty());
        let one = vec![Point::new(1.0, 1.0)];
        assert_eq!(convex_hull(&one), one);
        let two = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        assert_eq!(convex_hull(&two).len(), 2);
    }

    #[test]
    fn hull_dedups_identical_points() {
        let p = Point::new(3.0, 3.0);
        assert_eq!(convex_hull(&[p, p, p]), vec![p]);
    }

    #[test]
    fn hull_is_counter_clockwise() {
        let mut pts = square();
        pts.push(Point::new(0.5, 0.5));
        let hull = convex_hull(&pts);
        let n = hull.len();
        for i in 0..n {
            let turn = cross(hull[i], hull[(i + 1) % n], hull[(i + 2) % n]);
            assert!(turn > 0.0, "hull must turn left at every vertex");
        }
    }

    #[test]
    fn polygon_area_of_unit_square() {
        let poly = ConvexPolygon::from_points(&square()).unwrap();
        assert!((poly.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn polygon_contains_interior_and_boundary() {
        let poly = ConvexPolygon::from_points(&square()).unwrap();
        assert!(poly.contains(Point::new(0.5, 0.5)));
        assert!(poly.contains(Point::new(0.0, 0.0)));
        assert!(poly.contains(Point::new(0.5, 0.0)));
        assert!(!poly.contains(Point::new(1.5, 0.5)));
        assert!(!poly.contains(Point::new(-0.1, 0.5)));
    }

    #[test]
    fn degenerate_polygon_is_none() {
        let pts: Vec<Point> = (0..4).map(|i| Point::new(i as f64, i as f64)).collect();
        assert!(ConvexPolygon::from_points(&pts).is_none());
        assert!(ConvexPolygon::from_points(&[]).is_none());
    }

    #[test]
    fn samples_fall_inside_polygon() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(5.0, 4.0),
            Point::new(1.0, 5.0),
            Point::new(-1.0, 2.0),
        ];
        let poly = ConvexPolygon::from_points(&pts).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let p = poly.sample_uniform(&mut rng);
            assert!(poly.contains(p), "sample {p} escaped the polygon");
        }
    }

    #[test]
    fn sampling_is_roughly_area_uniform() {
        // Split the unit square at x = 0.5 and check the sample proportion.
        let poly = ConvexPolygon::from_points(&square()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let left = (0..n)
            .filter(|_| poly.sample_uniform(&mut rng).x < 0.5)
            .count();
        let frac = left as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "left fraction was {frac}");
    }
}
