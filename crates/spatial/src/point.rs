//! 2-D points and distance helpers.

use std::fmt;

/// A location on the 2-D plane.
///
/// The paper models both task locations `l_t` and worker locations `l_w`
/// as points on a Euclidean plane (a 1000×1000 grid where one unit is
/// 10 m in the synthetic datasets). Coordinates are `f64` so the same type
/// serves grid coordinates and projected geographic coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other` (the paper's `‖l_w, l_t‖`).
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance — cheaper when only comparisons are
    /// needed (radius filters compare against `r²`).
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns true when both coordinates are finite (no NaN/∞). The LTC
    /// model validation rejects non-finite locations up front so the
    /// algorithms can assume well-formed geometry.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

/// Cross product of vectors `(b - a)` and `(c - a)`.
///
/// Positive when `a → b → c` turns counter-clockwise; the convex-hull
/// construction and the point-in-polygon test are built on this predicate.
#[inline]
pub(crate) fn cross(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(4.0, -0.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(7.25, -3.5);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 9.0);
        let b = Point::new(4.0, 2.0);
        assert_eq!(a.min(b), Point::new(1.0, 2.0));
        assert_eq!(a.max(b), Point::new(4.0, 9.0));
    }

    #[test]
    fn cross_sign_encodes_turn_direction() {
        let a = Point::ORIGIN;
        let b = Point::new(1.0, 0.0);
        // Left turn.
        assert!(cross(a, b, Point::new(1.0, 1.0)) > 0.0);
        // Right turn.
        assert!(cross(a, b, Point::new(1.0, -1.0)) < 0.0);
        // Collinear.
        assert_eq!(cross(a, b, Point::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn finiteness_check() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn from_tuple() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
    }
}
