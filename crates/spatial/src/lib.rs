//! 2-D geometry substrate for the LTC spatial-crowdsourcing library.
//!
//! The LTC algorithms (ICDE 2018) repeatedly answer one spatial question:
//! *"which tasks are within `d_max` of this worker?"*. This crate provides
//! the primitives for that query and for dataset generation:
//!
//! * [`Point`] — a 2-D location with Euclidean distance helpers,
//! * [`BoundingBox`] — axis-aligned extents,
//! * [`GridIndex`] — a uniform-grid spatial index with radius queries,
//!   eviction, clamp telemetry, and exact rebucketing for adaptive
//!   growth,
//! * [`ShardRouter`] — tile→shard striping for the sharded service
//!   front-end (`ltc-core`'s service layer): equal-width by default,
//!   with explicit load-balanced stripe layouts for rebalancing,
//! * [`convex_hull`] / [`ConvexPolygon`] — hull construction, containment
//!   tests and uniform sampling inside a hull (used by the check-in
//!   workload generator to place tasks "within the convex region of the
//!   workers", paper Sec. V-A).
//!
//! # Example
//!
//! ```
//! use ltc_spatial::{GridIndex, Point};
//!
//! let pts = vec![Point::new(1.0, 1.0), Point::new(5.0, 5.0), Point::new(50.0, 50.0)];
//! let index = GridIndex::build(3.0, pts.iter().copied().enumerate().map(|(i, p)| (i, p)));
//! let near: Vec<usize> = index.within(Point::new(0.0, 0.0), 3.0).collect();
//! assert_eq!(near, vec![0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod grid;
mod hull;
mod kdtree;
mod point;
mod shard;

pub use bbox::BoundingBox;
#[cfg(feature = "grid-reference")]
pub use grid::reference::ReferenceGrid;
pub use grid::GridIndex;
pub use hull::{convex_hull, ConvexPolygon};
pub use kdtree::KdTree;
pub use point::Point;
pub use shard::ShardRouter;
