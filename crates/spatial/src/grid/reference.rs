//! The pre-CSR `Vec`-of-`Vec` grid layout, kept as the differential
//! reference for the flat-slab [`GridIndex`](super::GridIndex).
//!
//! This is the storage scheme the index used before the hot-path
//! optimization pass: one heap-allocated bucket per cell. It is compiled
//! only for tests (and under the `grid-reference` feature) and exists so
//! property tests can drive random operation sequences against both
//! layouts and assert observational equality — including element order,
//! which is what makes the CSR layout bit-invisible to the assignment
//! engine built on top.

use super::Layout;
use crate::{BoundingBox, Point};

/// The reference `Vec`-of-`Vec` uniform grid. Same observable behavior
/// as [`GridIndex`](super::GridIndex) (shared geometry code, same
/// operation semantics), different storage.
#[derive(Debug, Clone)]
pub struct ReferenceGrid<T> {
    cell_size: f64,
    origin: Point,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<(T, Point)>>,
    len: usize,
    clamped: u64,
}

impl<T: Copy> ReferenceGrid<T> {
    /// Builds an empty index covering `bounds` (same coarsening as the
    /// CSR grid — the geometry code is shared).
    pub fn with_bounds(cell_size: f64, bounds: BoundingBox) -> Self {
        let layout = Layout::new(cell_size, bounds);
        Self {
            cell_size: layout.cell_size,
            origin: layout.origin,
            cols: layout.cols,
            rows: layout.rows,
            cells: vec![Vec::new(); layout.cols * layout.rows],
            len: 0,
            clamped: 0,
        }
    }

    /// The effective (possibly coarsened) cell size.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cumulative clamped-insertion count (see the CSR grid's docs).
    #[inline]
    pub fn n_clamped_insertions(&self) -> u64 {
        self.clamped
    }

    /// Inserts a point, clamping out-of-extent points into border cells.
    pub fn insert(&mut self, id: T, point: Point) {
        assert!(
            point.is_finite(),
            "grid index points must be finite, got {point}"
        );
        if !self.layout().in_extent(point) {
            self.clamped += 1;
        }
        let cell = self.layout().cell_of(point);
        self.cells[cell].push((id, point));
        self.len += 1;
    }

    /// Removes one entry with this id stored at `point`.
    pub fn remove(&mut self, id: T, point: Point) -> bool
    where
        T: PartialEq,
    {
        if !point.is_finite() {
            return false;
        }
        let cell = self.layout().cell_of(point);
        let bucket = &mut self.cells[cell];
        match bucket.iter().position(|(other, _)| *other == id) {
            Some(pos) => {
                bucket.swap_remove(pos);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Iterates every stored `(id, point)` entry, cell-major.
    pub fn entries(&self) -> impl Iterator<Item = (T, Point)> + '_ {
        self.cells.iter().flat_map(|bucket| bucket.iter().copied())
    }

    /// Re-lays the grid out over new geometry (the historical
    /// rebuild-from-scratch implementation).
    pub fn rebucket(&mut self, cell_size: f64, bounds: BoundingBox) {
        let mut next = Self::with_bounds(cell_size, bounds);
        next.clamped = self.clamped;
        for bucket in std::mem::take(&mut self.cells) {
            for (id, p) in bucket {
                next.insert(id, p);
            }
        }
        *self = next;
    }

    /// Keeps only the entries satisfying the predicate.
    pub fn retain(&mut self, mut keep: impl FnMut(T, Point) -> bool) {
        let mut len = 0;
        for bucket in &mut self.cells {
            bucket.retain(|&(id, p)| keep(id, p));
            len += bucket.len();
        }
        self.len = len;
    }

    /// Ids of all points with `distance(center) <= radius`.
    pub fn within(&self, center: Point, radius: f64) -> impl Iterator<Item = T> + '_ {
        self.within_entries(center, radius).map(|(id, _)| id)
    }

    /// Like [`Self::within`] but also yields the stored point.
    pub fn within_entries(
        &self,
        center: Point,
        radius: f64,
    ) -> impl Iterator<Item = (T, Point)> + '_ {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be non-negative and finite, got {radius}"
        );
        let r_sq = radius * radius;
        let layout = self.layout();
        let (cx0, cy0) = layout.cell_coords(Point::new(center.x - radius, center.y - radius));
        let (cx1, cy1) = layout.cell_coords(Point::new(center.x + radius, center.y + radius));
        (cy0..=cy1)
            .flat_map(move |cy| (cx0..=cx1).map(move |cx| cy * self.cols + cx))
            .flat_map(move |cell| self.cells[cell].iter().copied())
            .filter(move |(_, p)| p.distance_sq(center) <= r_sq)
    }

    #[inline]
    fn layout(&self) -> Layout {
        Layout {
            cell_size: self.cell_size,
            origin: self.origin,
            cols: self.cols,
            rows: self.rows,
        }
    }
}
