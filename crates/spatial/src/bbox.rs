//! Axis-aligned bounding boxes.

use crate::Point;

/// An axis-aligned rectangle, used to describe dataset extents (the
/// synthetic workloads live on a `[0, 1000] × [0, 1000]` grid) and to size
/// the uniform grid index.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoundingBox {
    /// Corner with the smallest coordinates.
    pub min: Point,
    /// Corner with the largest coordinates.
    pub max: Point,
}

impl BoundingBox {
    /// A box spanning the two corner points (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The smallest box containing every point of the iterator, or `None`
    /// for an empty iterator.
    pub fn of_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut bb = BoundingBox {
            min: first,
            max: first,
        };
        for p in iter {
            bb.min = bb.min.min(p);
            bb.max = bb.max.max(p);
        }
        Some(bb)
    }

    /// Width (x-extent) of the box.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y-extent) of the box.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Whether `p` lies inside the box (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The smallest box containing both boxes.
    pub fn union(&self, other: BoundingBox) -> Self {
        BoundingBox {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Grows the box by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Self {
        BoundingBox {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_are_normalized() {
        let bb = BoundingBox::new(Point::new(5.0, -1.0), Point::new(-2.0, 3.0));
        assert_eq!(bb.min, Point::new(-2.0, -1.0));
        assert_eq!(bb.max, Point::new(5.0, 3.0));
        assert_eq!(bb.width(), 7.0);
        assert_eq!(bb.height(), 4.0);
    }

    #[test]
    fn of_points_covers_all() {
        let pts = [
            Point::new(1.0, 2.0),
            Point::new(-3.0, 8.0),
            Point::new(4.0, 0.0),
        ];
        let bb = BoundingBox::of_points(pts).unwrap();
        for p in pts {
            assert!(bb.contains(p));
        }
        assert_eq!(bb.min, Point::new(-3.0, 0.0));
        assert_eq!(bb.max, Point::new(4.0, 8.0));
    }

    #[test]
    fn of_points_empty_is_none() {
        assert!(BoundingBox::of_points(std::iter::empty()).is_none());
    }

    #[test]
    fn contains_is_boundary_inclusive() {
        let bb = BoundingBox::new(Point::ORIGIN, Point::new(1.0, 1.0));
        assert!(bb.contains(Point::new(0.0, 0.0)));
        assert!(bb.contains(Point::new(1.0, 1.0)));
        assert!(bb.contains(Point::new(0.5, 0.5)));
        assert!(!bb.contains(Point::new(1.0001, 0.5)));
    }

    #[test]
    fn union_covers_both_boxes() {
        let a = BoundingBox::new(Point::ORIGIN, Point::new(2.0, 5.0));
        let b = BoundingBox::new(Point::new(-1.0, 1.0), Point::new(1.0, 9.0));
        let u = a.union(b);
        assert_eq!(u.min, Point::new(-1.0, 0.0));
        assert_eq!(u.max, Point::new(2.0, 9.0));
        assert_eq!(a.union(a), a);
    }

    #[test]
    fn expanded_adds_margin() {
        let bb = BoundingBox::new(Point::ORIGIN, Point::new(1.0, 1.0)).expanded(2.0);
        assert_eq!(bb.min, Point::new(-2.0, -2.0));
        assert_eq!(bb.max, Point::new(3.0, 3.0));
    }
}
