//! Tile→shard routing for spatially partitioned services.
//!
//! A sharded LTC deployment partitions its task pool by location so that
//! independent regions can be served by independent engines (and
//! threads). The natural partition boundary is the same uniform tiling
//! [`GridIndex`](crate::GridIndex) queries run on: this module maps tile
//! coordinates to shard ids.
//!
//! The mapping is **striped by tile column**: the region's columns are
//! split into `n_shards` contiguous runs of (nearly) equal width. Stripes
//! keep routing monotone in `x`, which gives the two properties a
//! check-in front-end needs:
//!
//! * a point routes to exactly one shard in O(1), and
//! * the shards whose territory a query disk can touch form one
//!   *contiguous* range of shard ids ([`ShardRouter::shards_within`]) —
//!   usually a single shard when the stripe width is large against the
//!   query radius, so most check-ins are handled entirely shard-locally.
//!
//! Out-of-region points clamp into the border stripes, mirroring
//! [`GridIndex`](crate::GridIndex)'s clamping: routing never fails, it
//! only degrades for points outside the declared service region.

use crate::{BoundingBox, Point};

/// Maps locations (via their grid-tile column) to shard ids.
///
/// ```
/// use ltc_spatial::{BoundingBox, Point, ShardRouter};
/// let region = BoundingBox::new(Point::ORIGIN, Point::new(1000.0, 1000.0));
/// let router = ShardRouter::new(4, 30.0, region);
/// let shard = router.shard_of(Point::new(10.0, 500.0));
/// assert_eq!(shard, 0);
/// assert_eq!(router.shard_of(Point::new(990.0, 500.0)), 3);
/// // A query disk near a stripe boundary may touch two shards.
/// let range = router.shards_within(Point::new(250.0, 500.0), 30.0);
/// assert!(range.contains(&router.shard_of(Point::new(250.0, 500.0))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardRouter {
    n_shards: usize,
    /// Tile size the striping is quantized to.
    cell_size: f64,
    /// Left edge of the tiled region.
    origin_x: f64,
    /// Total tile columns over the region width.
    cols: usize,
}

impl ShardRouter {
    /// A router striping `region`'s tile columns (tiles of `cell_size`)
    /// over `n_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or `cell_size` is not strictly
    /// positive and finite.
    pub fn new(n_shards: usize, cell_size: f64, region: BoundingBox) -> Self {
        assert!(n_shards > 0, "a router needs at least one shard");
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        let cols = ((region.width() / cell_size).floor() as usize + 1).max(n_shards);
        Self {
            n_shards,
            cell_size,
            origin_x: region.min.x,
            cols,
        }
    }

    /// Number of shards routed over.
    #[inline]
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The tile column of a point, clamped into the region.
    #[inline]
    fn col_of(&self, x: f64) -> usize {
        let c = ((x - self.origin_x) / self.cell_size).floor();
        (c.max(0.0) as usize).min(self.cols - 1)
    }

    /// The shard owning a tile column: contiguous stripes of
    /// `ceil(cols / n_shards)` columns.
    #[inline]
    fn shard_of_col(&self, col: usize) -> usize {
        (col * self.n_shards / self.cols).min(self.n_shards - 1)
    }

    /// The shard owning a point (exactly one; out-of-region points clamp
    /// into the border stripes).
    #[inline]
    pub fn shard_of(&self, point: Point) -> usize {
        self.shard_of_col(self.col_of(point.x))
    }

    /// The contiguous range of shards whose territory intersects the disk
    /// `‖p − center‖ ≤ radius`. Conservative at tile granularity: every
    /// shard owning a point of the disk is included, but a returned shard
    /// may own no disk point (its tiles merely overlap the bounding
    /// interval).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or non-finite.
    pub fn shards_within(&self, center: Point, radius: f64) -> std::ops::RangeInclusive<usize> {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be non-negative and finite, got {radius}"
        );
        let lo = self.shard_of_col(self.col_of(center.x - radius));
        let hi = self.shard_of_col(self.col_of(center.x + radius));
        lo..=hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(n: usize) -> ShardRouter {
        ShardRouter::new(
            n,
            30.0,
            BoundingBox::new(Point::ORIGIN, Point::new(1000.0, 1000.0)),
        )
    }

    #[test]
    fn single_shard_owns_everything() {
        let r = router(1);
        for x in [-100.0, 0.0, 500.0, 999.0, 5000.0] {
            assert_eq!(r.shard_of(Point::new(x, 0.0)), 0);
            assert_eq!(r.shards_within(Point::new(x, 0.0), 30.0), 0..=0);
        }
    }

    #[test]
    fn stripes_are_monotone_and_cover_all_shards() {
        let r = router(4);
        let mut last = 0;
        let mut seen = [false; 4];
        for i in 0..=1000 {
            let s = r.shard_of(Point::new(i as f64, 0.0));
            assert!(s >= last, "routing must be monotone in x");
            assert!(s < 4);
            seen[s] = true;
            last = s;
        }
        assert!(seen.iter().all(|&s| s), "every shard owns some territory");
    }

    #[test]
    fn disk_range_contains_every_point_shard() {
        let r = router(8);
        for cx in 0..100 {
            let center = Point::new(cx as f64 * 10.0, 500.0);
            let range = r.shards_within(center, 45.0);
            // Sample points of the disk; each must route into the range.
            for dx in [-45.0, -30.0, 0.0, 30.0, 45.0] {
                let s = r.shard_of(Point::new(center.x + dx, center.y));
                assert!(
                    range.contains(&s),
                    "point shard {s} outside range {range:?} at cx {cx}"
                );
            }
        }
    }

    #[test]
    fn interior_disks_stay_shard_local() {
        let r = router(4);
        // Stripe width is 250; a 30-radius disk at a stripe center
        // touches exactly one shard.
        let range = r.shards_within(Point::new(125.0, 500.0), 30.0);
        assert_eq!(range.clone().count(), 1);
        assert_eq!(range, 0..=0);
    }

    #[test]
    fn out_of_region_points_clamp_to_border_shards() {
        let r = router(4);
        assert_eq!(r.shard_of(Point::new(-1e6, 0.0)), 0);
        assert_eq!(r.shard_of(Point::new(1e6, 0.0)), 3);
    }

    #[test]
    fn more_shards_than_columns_still_routes() {
        // A tiny region with huge cells: cols is clamped up to n_shards
        // so every shard id stays reachable and routing stays total.
        let r = ShardRouter::new(
            8,
            100.0,
            BoundingBox::new(Point::ORIGIN, Point::new(10.0, 10.0)),
        );
        let s = r.shard_of(Point::new(5.0, 5.0));
        assert!(s < 8);
        assert!(r.shards_within(Point::new(5.0, 5.0), 3.0).all(|i| i < 8));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(
            0,
            1.0,
            BoundingBox::new(Point::ORIGIN, Point::new(1.0, 1.0)),
        );
    }
}
