//! Tile→shard routing for spatially partitioned services.
//!
//! A sharded LTC deployment partitions its task pool by location so that
//! independent regions can be served by independent engines (and
//! threads). The natural partition boundary is the same uniform tiling
//! [`GridIndex`](crate::GridIndex) queries run on: this module maps tile
//! coordinates to shard ids.
//!
//! The mapping is **striped by tile column**: the region's columns are
//! split into `n_shards` contiguous runs. A freshly built router
//! ([`ShardRouter::new`]) stripes the columns into (nearly) equal widths;
//! a router can also be laid out with *explicit* stripe boundaries
//! ([`ShardRouter::with_layout`]), which is how load-aware rebalancing
//! re-splits the columns by observed task mass
//! ([`ShardRouter::balanced_starts`]) and how a persisted stripe layout
//! is restored from a snapshot. Stripes keep routing monotone in `x`,
//! which gives the two properties a check-in front-end needs:
//!
//! * a point routes to exactly one shard in O(log shards), and
//! * the shards whose territory a query disk can touch form one
//!   *contiguous* range of shard ids ([`ShardRouter::shards_within`]) —
//!   usually a single shard when the stripe width is large against the
//!   query radius, so most check-ins are handled entirely shard-locally.
//!
//! Out-of-region points clamp into the border stripes, mirroring
//! [`GridIndex`](crate::GridIndex)'s clamping: routing never fails, it
//! only degrades for points outside the declared service region. When
//! that degradation shows up as persistent load skew, rebalancing can
//! extend the tiled extent (`with_layout` accepts any origin/column
//! count) so border mass gets real columns of its own.

use crate::{BoundingBox, Point};

/// Maps locations (via their grid-tile column) to shard ids.
///
/// ```
/// use ltc_spatial::{BoundingBox, Point, ShardRouter};
/// let region = BoundingBox::new(Point::ORIGIN, Point::new(1000.0, 1000.0));
/// let router = ShardRouter::new(4, 30.0, region);
/// let shard = router.shard_of(Point::new(10.0, 500.0));
/// assert_eq!(shard, 0);
/// assert_eq!(router.shard_of(Point::new(990.0, 500.0)), 3);
/// // A query disk near a stripe boundary may touch two shards.
/// let range = router.shards_within(Point::new(250.0, 500.0), 30.0);
/// assert!(range.contains(&router.shard_of(Point::new(250.0, 500.0))));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRouter {
    /// Tile size the striping is quantized to.
    cell_size: f64,
    /// Left edge of the tiled region.
    origin_x: f64,
    /// Total tile columns over the region width.
    cols: usize,
    /// Stripe start column per shard: `starts[0] == 0`, strictly
    /// increasing, every entry `< cols`. Shard `s` owns columns
    /// `starts[s] .. starts[s + 1]` (the last stripe runs to `cols`).
    starts: Vec<usize>,
}

impl ShardRouter {
    /// A router striping `region`'s tile columns (tiles of `cell_size`)
    /// over `n_shards` equal-width shards.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or `cell_size` is not strictly
    /// positive and finite.
    pub fn new(n_shards: usize, cell_size: f64, region: BoundingBox) -> Self {
        assert!(n_shards > 0, "a router needs at least one shard");
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        let cols = Self::cols_over(region.width(), cell_size).max(n_shards);
        Self {
            cell_size,
            origin_x: region.min.x,
            cols,
            starts: Self::uniform_starts(n_shards, cols),
        }
    }

    /// A router with an explicit column layout and stripe boundaries —
    /// the constructor load-aware rebalancing and snapshot restoration
    /// use. `starts[s]` is the first column of shard `s`'s stripe.
    ///
    /// Fails (with a description) unless `cell_size` is positive and
    /// finite, `origin_x` is finite, `cols >= starts.len() >= 1`, and
    /// `starts` begins at 0, is strictly increasing, and stays below
    /// `cols`.
    pub fn with_layout(
        cell_size: f64,
        origin_x: f64,
        cols: usize,
        starts: Vec<usize>,
    ) -> Result<Self, &'static str> {
        if !(cell_size.is_finite() && cell_size > 0.0) {
            return Err("cell_size must be positive and finite");
        }
        if !origin_x.is_finite() {
            return Err("origin_x must be finite");
        }
        if starts.is_empty() {
            return Err("a router needs at least one stripe");
        }
        if starts[0] != 0 {
            return Err("the first stripe must start at column 0");
        }
        if starts.windows(2).any(|w| w[0] >= w[1]) {
            return Err("stripe starts must be strictly increasing");
        }
        if *starts.last().expect("starts is non-empty") >= cols {
            return Err("every stripe needs at least one column");
        }
        Ok(Self {
            cell_size,
            origin_x,
            cols,
            starts,
        })
    }

    /// Column count for a width at a cell size (at least one). Clamped
    /// in f64 before the cast: an astronomical width would saturate the
    /// cast at `usize::MAX` and make the `+ 1` overflow.
    fn cols_over(width: f64, cell_size: f64) -> usize {
        ((width / cell_size).floor().min((1u64 << 52) as f64) as usize + 1).max(1)
    }

    /// Equal-width stripe boundaries: `starts[s] = ceil(s·cols / n)` —
    /// exactly the columns the historical `col·n / cols` formula assigned
    /// to shard `s`, so uniform routers route identically across
    /// versions (snapshots without a stripe record rely on this).
    fn uniform_starts(n_shards: usize, cols: usize) -> Vec<usize> {
        (0..n_shards)
            .map(|s| (s * cols).div_ceil(n_shards))
            .collect()
    }

    /// Whether this router's stripes are the equal-width layout
    /// [`ShardRouter::new`] would produce over the same columns (used to
    /// decide whether a snapshot needs an explicit stripe record).
    pub fn is_uniform(&self) -> bool {
        self.starts == Self::uniform_starts(self.starts.len(), self.cols)
    }

    /// Number of shards routed over.
    #[inline]
    pub fn n_shards(&self) -> usize {
        self.starts.len()
    }

    /// Number of tile columns the stripes partition.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Left edge of the tiled extent.
    #[inline]
    pub fn origin_x(&self) -> f64 {
        self.origin_x
    }

    /// Tile size the striping is quantized to.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The stripe start column of every shard (see
    /// [`ShardRouter::with_layout`] for the invariants).
    #[inline]
    pub fn stripe_starts(&self) -> &[usize] {
        &self.starts
    }

    /// The tile column of an x coordinate, clamped into the tiled extent.
    #[inline]
    pub fn column_of(&self, x: f64) -> usize {
        let c = ((x - self.origin_x) / self.cell_size).floor();
        (c.max(0.0) as usize).min(self.cols - 1)
    }

    /// The shard owning a tile column.
    #[inline]
    fn shard_of_col(&self, col: usize) -> usize {
        // `starts[0] == 0`, so at least one stripe start is `<= col`.
        self.starts.partition_point(|&s| s <= col) - 1
    }

    /// The shard owning a point (exactly one; out-of-region points clamp
    /// into the border stripes).
    #[inline]
    pub fn shard_of(&self, point: Point) -> usize {
        self.shard_of_col(self.column_of(point.x))
    }

    /// The contiguous range of shards whose territory intersects the disk
    /// `‖p − center‖ ≤ radius`. Conservative at tile granularity: every
    /// shard owning a point of the disk is included, but a returned shard
    /// may own no disk point (its tiles merely overlap the bounding
    /// interval).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or non-finite.
    pub fn shards_within(&self, center: Point, radius: f64) -> std::ops::RangeInclusive<usize> {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be non-negative and finite, got {radius}"
        );
        let lo = self.shard_of_col(self.column_of(center.x - radius));
        let hi = self.shard_of_col(self.column_of(center.x + radius));
        lo..=hi
    }

    /// Load-balanced stripe boundaries over per-column mass: stripe `s`
    /// starts at the column where the mass prefix first reaches
    /// `s/n·total`, nudged so every stripe keeps at least one column.
    /// With all-zero mass the split degenerates to equal widths.
    ///
    /// The result always satisfies [`ShardRouter::with_layout`]'s
    /// invariants for `cols = col_mass.len()` (given
    /// `col_mass.len() >= n_shards`). Balance is column-granular: a
    /// single column holding most of the mass cannot be split, so the
    /// caller should compare achieved loads, not assume perfection.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or exceeds the column count.
    pub fn balanced_starts(col_mass: &[u64], n_shards: usize) -> Vec<usize> {
        assert!(n_shards > 0, "a router needs at least one shard");
        let cols = col_mass.len();
        assert!(
            cols >= n_shards,
            "cannot stripe {cols} column(s) over {n_shards} shards"
        );
        let total: u64 = col_mass.iter().sum();
        if total == 0 {
            return Self::uniform_starts(n_shards, cols);
        }
        // prefix[c] = mass of columns [0, c).
        let mut prefix = Vec::with_capacity(cols + 1);
        let mut acc = 0u64;
        prefix.push(0u64);
        for &m in col_mass {
            acc += m;
            prefix.push(acc);
        }
        let mut starts = Vec::with_capacity(n_shards);
        starts.push(0usize);
        for s in 1..n_shards {
            let target = ((total as u128 * s as u128) / n_shards as u128) as u64;
            let cut = prefix.partition_point(|&p| p < target);
            // Keep stripes non-empty on both sides of the cut.
            let lo = starts[s - 1] + 1;
            let hi = cols - (n_shards - s);
            starts.push(cut.clamp(lo, hi));
        }
        starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(n: usize) -> ShardRouter {
        ShardRouter::new(
            n,
            30.0,
            BoundingBox::new(Point::ORIGIN, Point::new(1000.0, 1000.0)),
        )
    }

    #[test]
    fn single_shard_owns_everything() {
        let r = router(1);
        for x in [-100.0, 0.0, 500.0, 999.0, 5000.0] {
            assert_eq!(r.shard_of(Point::new(x, 0.0)), 0);
            assert_eq!(r.shards_within(Point::new(x, 0.0), 30.0), 0..=0);
        }
    }

    #[test]
    fn stripes_are_monotone_and_cover_all_shards() {
        let r = router(4);
        let mut last = 0;
        let mut seen = [false; 4];
        for i in 0..=1000 {
            let s = r.shard_of(Point::new(i as f64, 0.0));
            assert!(s >= last, "routing must be monotone in x");
            assert!(s < 4);
            seen[s] = true;
            last = s;
        }
        assert!(seen.iter().all(|&s| s), "every shard owns some territory");
    }

    #[test]
    fn uniform_starts_match_the_historical_formula() {
        // `new` must route exactly like the pre-stripe-layout formula
        // `min(col·n / cols, n−1)` — persisted snapshots without a stripe
        // record depend on it.
        for n in [1usize, 2, 3, 4, 5, 8] {
            let r = router(n);
            let cols = r.n_cols();
            for col in 0..cols {
                let legacy = (col * n / cols).min(n - 1);
                assert_eq!(
                    r.shard_of_col(col),
                    legacy,
                    "col {col} of {cols} at {n} shards"
                );
            }
            assert!(r.is_uniform());
        }
    }

    #[test]
    fn disk_range_contains_every_point_shard() {
        let r = router(8);
        for cx in 0..100 {
            let center = Point::new(cx as f64 * 10.0, 500.0);
            let range = r.shards_within(center, 45.0);
            // Sample points of the disk; each must route into the range.
            for dx in [-45.0, -30.0, 0.0, 30.0, 45.0] {
                let s = r.shard_of(Point::new(center.x + dx, center.y));
                assert!(
                    range.contains(&s),
                    "point shard {s} outside range {range:?} at cx {cx}"
                );
            }
        }
    }

    #[test]
    fn interior_disks_stay_shard_local() {
        let r = router(4);
        // Stripe width is 250; a 30-radius disk at a stripe center
        // touches exactly one shard.
        let range = r.shards_within(Point::new(125.0, 500.0), 30.0);
        assert_eq!(range.clone().count(), 1);
        assert_eq!(range, 0..=0);
    }

    #[test]
    fn out_of_region_points_clamp_to_border_shards() {
        let r = router(4);
        assert_eq!(r.shard_of(Point::new(-1e6, 0.0)), 0);
        assert_eq!(r.shard_of(Point::new(1e6, 0.0)), 3);
    }

    #[test]
    fn more_shards_than_columns_still_routes() {
        // A tiny region with huge cells: cols is clamped up to n_shards
        // so every shard id stays reachable and routing stays total.
        let r = ShardRouter::new(
            8,
            100.0,
            BoundingBox::new(Point::ORIGIN, Point::new(10.0, 10.0)),
        );
        let s = r.shard_of(Point::new(5.0, 5.0));
        assert!(s < 8);
        assert!(r.shards_within(Point::new(5.0, 5.0), 3.0).all(|i| i < 8));
    }

    #[test]
    fn with_layout_round_trips_and_validates() {
        let r = router(4);
        let again = ShardRouter::with_layout(
            r.cell_size(),
            r.origin_x(),
            r.n_cols(),
            r.stripe_starts().to_vec(),
        )
        .unwrap();
        assert_eq!(r, again);

        let bad = [
            ShardRouter::with_layout(0.0, 0.0, 8, vec![0, 4]),
            ShardRouter::with_layout(1.0, f64::NAN, 8, vec![0, 4]),
            ShardRouter::with_layout(1.0, 0.0, 8, vec![]),
            ShardRouter::with_layout(1.0, 0.0, 8, vec![1, 4]),
            ShardRouter::with_layout(1.0, 0.0, 8, vec![0, 4, 4]),
            ShardRouter::with_layout(1.0, 0.0, 8, vec![0, 8]),
        ];
        assert!(bad.iter().all(Result::is_err));
    }

    #[test]
    fn balanced_starts_split_skewed_mass() {
        // 16 columns, all mass concentrated in columns 10..14.
        let mut mass = vec![0u64; 16];
        for (c, m) in [(10usize, 40u64), (11, 40), (12, 40), (13, 40)] {
            mass[c] = m;
        }
        let starts = ShardRouter::balanced_starts(&mass, 4);
        let r = ShardRouter::with_layout(1.0, 0.0, 16, starts).unwrap();
        // Each hot column gets its own shard.
        let shards: Vec<usize> = (10..14).map(|c| r.shard_of_col(c)).collect();
        assert_eq!(shards, vec![0, 1, 2, 3]);
        assert!(!r.is_uniform());
    }

    #[test]
    fn balanced_starts_degenerate_to_uniform_without_mass() {
        let starts = ShardRouter::balanced_starts(&[0; 12], 3);
        assert_eq!(starts, vec![0, 4, 8]);
    }

    #[test]
    fn balanced_starts_keep_every_stripe_nonempty() {
        // All mass in the last column: earlier stripes still get one
        // column each and routing stays total and monotone.
        let mut mass = vec![0u64; 8];
        mass[7] = 1000;
        let starts = ShardRouter::balanced_starts(&mass, 4);
        let r = ShardRouter::with_layout(1.0, 0.0, 8, starts).unwrap();
        let mut last = 0;
        for c in 0..8 {
            let s = r.shard_of_col(c);
            assert!(s >= last && s < 4);
            last = s;
        }
        assert_eq!(r.shard_of_col(7), 3, "the hot column lands on one shard");
    }

    #[test]
    fn rebalanced_layout_can_extend_past_the_region() {
        // Mass observed beyond the original extent gets real columns once
        // the caller lays the router out over the wider range.
        let r = ShardRouter::with_layout(10.0, -50.0, 20, vec![0, 5, 10, 15]).unwrap();
        assert_eq!(r.origin_x(), -50.0);
        assert_eq!(r.column_of(-50.0), 0);
        assert_eq!(r.column_of(149.0), 19);
        assert_eq!(r.shard_of(Point::new(149.0, 0.0)), 3);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(
            0,
            1.0,
            BoundingBox::new(Point::ORIGIN, Point::new(1.0, 1.0)),
        );
    }
}
