//! A static 2-D KD-tree: the classic alternative to the uniform grid.
//!
//! The grid index ([`crate::GridIndex`]) is ideal for the LTC hot path
//! (fixed-radius queries over uniformly dense tasks), but clustered
//! check-in data and k-nearest-neighbour questions ("which are the 5
//! closest open tasks?") favour a KD-tree. The benchmark suite compares
//! both on the paper's workloads (`micro_substrates` bench).
//!
//! Build is O(n log n) (median splits via `select_nth_unstable`); range
//! and kNN queries are O(√n + m) / O(k·log n) expected on well-spread
//! data.

use crate::Point;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A static KD-tree over `(id, point)` pairs.
///
/// ```
/// use ltc_spatial::{KdTree, Point};
/// let tree = KdTree::build(vec![(1u32, Point::new(0.0, 0.0)), (2, Point::new(9.0, 9.0))]);
/// assert_eq!(tree.within(Point::new(1.0, 1.0), 2.0), vec![1]);
/// assert_eq!(tree.nearest(Point::new(8.0, 8.0), 1), vec![2]);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree<T> {
    /// Nodes in build order; `nodes[i]` splits its subtree at `point`
    /// along axis `depth % 2`.
    nodes: Vec<KdNode<T>>,
    root: Option<u32>,
}

#[derive(Debug, Clone)]
struct KdNode<T> {
    id: T,
    point: Point,
    left: Option<u32>,
    right: Option<u32>,
}

impl<T: Copy> KdTree<T> {
    /// Builds a balanced tree from `(id, point)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any point has a non-finite coordinate.
    pub fn build<I: IntoIterator<Item = (T, Point)>>(points: I) -> Self {
        let mut items: Vec<(T, Point)> = points.into_iter().collect();
        for (_, p) in &items {
            assert!(p.is_finite(), "kd-tree points must be finite, got {p}");
        }
        let mut nodes = Vec::with_capacity(items.len());
        let root = Self::build_rec(&mut items[..], 0, &mut nodes);
        Self { nodes, root }
    }

    fn build_rec(
        items: &mut [(T, Point)],
        depth: usize,
        nodes: &mut Vec<KdNode<T>>,
    ) -> Option<u32> {
        if items.is_empty() {
            return None;
        }
        let axis = depth % 2;
        let mid = items.len() / 2;
        items.select_nth_unstable_by(mid, |a, b| {
            let (ka, kb) = if axis == 0 {
                (a.1.x, b.1.x)
            } else {
                (a.1.y, b.1.y)
            };
            ka.partial_cmp(&kb).expect("finite coordinates")
        });
        let (id, point) = items[mid];
        let idx = nodes.len() as u32;
        nodes.push(KdNode {
            id,
            point,
            left: None,
            right: None,
        });
        let (lo, rest) = items.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = Self::build_rec(lo, depth + 1, nodes);
        let right = Self::build_rec(hi, depth + 1, nodes);
        let node = &mut nodes[idx as usize];
        node.left = left;
        node.right = right;
        Some(idx)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all points with `distance(center) ≤ radius`, in unspecified
    /// order.
    pub fn within(&self, center: Point, radius: f64) -> Vec<T> {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be non-negative and finite, got {radius}"
        );
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.range_rec(root, center, radius * radius, 0, &mut out);
        }
        out
    }

    fn range_rec(&self, idx: u32, center: Point, r_sq: f64, depth: usize, out: &mut Vec<T>) {
        let node = &self.nodes[idx as usize];
        if node.point.distance_sq(center) <= r_sq {
            out.push(node.id);
        }
        let axis_delta = if depth.is_multiple_of(2) {
            center.x - node.point.x
        } else {
            center.y - node.point.y
        };
        let (near, far) = if axis_delta <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.range_rec(n, center, r_sq, depth + 1, out);
        }
        // The far half-plane can only contain hits when the splitting line
        // is closer than the radius.
        if axis_delta * axis_delta <= r_sq {
            if let Some(f) = far {
                self.range_rec(f, center, r_sq, depth + 1, out);
            }
        }
    }

    /// The `k` nearest points to `center`, closest first; fewer when the
    /// tree holds fewer than `k` points. Ties are broken arbitrarily.
    pub fn nearest(&self, center: Point, k: usize) -> Vec<T> {
        if k == 0 || self.nodes.is_empty() {
            return Vec::new();
        }
        // Max-heap of the current k best by distance.
        let mut best: BinaryHeap<NearEntry<T>> = BinaryHeap::with_capacity(k + 1);
        if let Some(root) = self.root {
            self.nearest_rec(root, center, k, 0, &mut best);
        }
        let mut with_dist: Vec<NearEntry<T>> = best.into_vec();
        with_dist.sort_by(|a, b| a.dist_sq.partial_cmp(&b.dist_sq).expect("finite"));
        with_dist.into_iter().map(|e| e.id).collect()
    }

    fn nearest_rec(
        &self,
        idx: u32,
        center: Point,
        k: usize,
        depth: usize,
        best: &mut BinaryHeap<NearEntry<T>>,
    ) {
        let node = &self.nodes[idx as usize];
        let d_sq = node.point.distance_sq(center);
        if best.len() < k {
            best.push(NearEntry {
                dist_sq: d_sq,
                id: node.id,
            });
        } else if d_sq < best.peek().expect("non-empty").dist_sq {
            best.pop();
            best.push(NearEntry {
                dist_sq: d_sq,
                id: node.id,
            });
        }
        let axis_delta = if depth.is_multiple_of(2) {
            center.x - node.point.x
        } else {
            center.y - node.point.y
        };
        let (near, far) = if axis_delta <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.nearest_rec(n, center, k, depth + 1, best);
        }
        let worst = best.peek().map(|e| e.dist_sq).unwrap_or(f64::INFINITY);
        if best.len() < k || axis_delta * axis_delta < worst {
            if let Some(f) = far {
                self.nearest_rec(f, center, k, depth + 1, best);
            }
        }
    }
}

#[derive(Debug)]
struct NearEntry<T> {
    dist_sq: f64,
    id: T,
}

impl<T> PartialEq for NearEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl<T> Eq for NearEntry<T> {}
impl<T> Ord for NearEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist_sq
            .partial_cmp(&other.dist_sq)
            .expect("distances are finite")
    }
}
impl<T> PartialOrd for NearEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_5x5() -> Vec<(u32, Point)> {
        (0..25)
            .map(|i| (i, Point::new((i % 5) as f64, (i / 5) as f64)))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree: KdTree<u32> = KdTree::build(std::iter::empty());
        assert!(tree.is_empty());
        assert!(tree.within(Point::ORIGIN, 100.0).is_empty());
        assert!(tree.nearest(Point::ORIGIN, 3).is_empty());
    }

    #[test]
    fn range_query_matches_brute_force() {
        let pts = grid_5x5();
        let tree = KdTree::build(pts.iter().copied());
        for radius in [0.0, 1.0, 1.5, 3.2, 10.0] {
            let center = Point::new(2.2, 1.8);
            let mut got = tree.within(center, radius);
            got.sort_unstable();
            let mut expect: Vec<u32> = pts
                .iter()
                .filter(|(_, p)| p.distance(center) <= radius)
                .map(|(i, _)| *i)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "radius {radius}");
        }
    }

    #[test]
    fn nearest_returns_closest_first() {
        let tree = KdTree::build(grid_5x5());
        let got = tree.nearest(Point::new(0.1, 0.1), 3);
        assert_eq!(got[0], 0); // (0,0)
        assert_eq!(got.len(), 3);
        // The next two are (1,0) and (0,1) in either order.
        assert!(got[1..].contains(&1) && got[1..].contains(&5));
    }

    #[test]
    fn nearest_with_k_larger_than_tree() {
        let tree = KdTree::build(vec![(7u32, Point::ORIGIN), (8, Point::new(1.0, 0.0))]);
        let got = tree.nearest(Point::ORIGIN, 10);
        assert_eq!(got, vec![7, 8]);
    }

    #[test]
    fn nearest_zero_k() {
        let tree = KdTree::build(grid_5x5());
        assert!(tree.nearest(Point::ORIGIN, 0).is_empty());
    }

    #[test]
    fn duplicate_points_are_kept() {
        let p = Point::new(3.0, 3.0);
        let tree = KdTree::build(vec![(1u32, p), (2, p), (3, p)]);
        let mut got = tree.within(p, 0.0);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(tree.nearest(p, 2).len(), 2);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan_points() {
        KdTree::build(vec![(0u32, Point::new(f64::NAN, 1.0))]);
    }
}
