//! Property-based tests for the spatial substrate.

use ltc_spatial::{convex_hull, ConvexPolygon, GridIndex, KdTree, Point};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// The grid index returns exactly the brute-force result set.
    #[test]
    fn grid_index_matches_brute_force(
        pts in prop::collection::vec(arb_point(), 0..200),
        center in arb_point(),
        radius in 0.0f64..500.0,
        cell in 1.0f64..100.0,
    ) {
        let labelled: Vec<(u32, Point)> = pts.iter().copied().enumerate()
            .map(|(i, p)| (i as u32, p)).collect();
        let idx = GridIndex::build(cell, labelled.iter().copied());
        let mut got: Vec<u32> = idx.within(center, radius).collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = labelled.iter()
            .filter(|(_, p)| p.distance(center) <= radius)
            .map(|(i, _)| *i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Every input point lies inside (or on) the hull polygon.
    #[test]
    fn hull_contains_all_points(pts in prop::collection::vec(arb_point(), 3..100)) {
        if let Some(poly) = ConvexPolygon::from_points(&pts) {
            for p in &pts {
                prop_assert!(poly.contains(*p), "point {} outside its own hull", p);
            }
        }
    }

    /// Hull vertices are a subset of the input points.
    #[test]
    fn hull_vertices_come_from_input(pts in prop::collection::vec(arb_point(), 0..100)) {
        let hull = convex_hull(&pts);
        for v in &hull {
            prop_assert!(pts.iter().any(|p| p == v));
        }
    }

    /// Hulling the hull is a fixed point.
    #[test]
    fn hull_is_idempotent(pts in prop::collection::vec(arb_point(), 0..100)) {
        let h1 = convex_hull(&pts);
        let mut h2 = convex_hull(&h1);
        let mut h1s = h1.clone();
        let key = |p: &Point| (p.x.to_bits(), p.y.to_bits());
        h1s.sort_by_key(key);
        h2.sort_by_key(key);
        prop_assert_eq!(h1s, h2);
    }

    /// Uniform samples stay inside the polygon.
    #[test]
    fn polygon_samples_inside(pts in prop::collection::vec(arb_point(), 3..30), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        if let Some(poly) = ConvexPolygon::from_points(&pts) {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..32 {
                let s = poly.sample_uniform(&mut rng);
                prop_assert!(poly.contains(s));
            }
        }
    }

    /// The KD-tree range query returns exactly the brute-force set.
    #[test]
    fn kdtree_range_matches_brute_force(
        pts in prop::collection::vec(arb_point(), 0..150),
        center in arb_point(),
        radius in 0.0f64..500.0,
    ) {
        let labelled: Vec<(u32, Point)> = pts.iter().copied().enumerate()
            .map(|(i, p)| (i as u32, p)).collect();
        let tree = KdTree::build(labelled.iter().copied());
        let mut got = tree.within(center, radius);
        got.sort_unstable();
        let mut expect: Vec<u32> = labelled.iter()
            .filter(|(_, p)| p.distance(center) <= radius)
            .map(|(i, _)| *i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// KD-tree kNN returns the k smallest distances (as a multiset).
    #[test]
    fn kdtree_knn_matches_brute_force(
        pts in prop::collection::vec(arb_point(), 1..120),
        center in arb_point(),
        k in 1usize..10,
    ) {
        let labelled: Vec<(u32, Point)> = pts.iter().copied().enumerate()
            .map(|(i, p)| (i as u32, p)).collect();
        let tree = KdTree::build(labelled.iter().copied());
        let got = tree.nearest(center, k);
        prop_assert_eq!(got.len(), k.min(pts.len()));
        // Compare distance multisets (ids may differ on exact ties).
        let mut got_d: Vec<f64> = got.iter()
            .map(|&id| labelled[id as usize].1.distance(center)).collect();
        let mut all_d: Vec<f64> = labelled.iter().map(|(_, p)| p.distance(center)).collect();
        all_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        got_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, e) in got_d.iter().zip(all_d.iter()) {
            prop_assert!((g - e).abs() < 1e-9, "kNN distance {} vs brute {}", g, e);
        }
        // Closest-first ordering.
        let ordered: Vec<f64> = got.iter()
            .map(|&id| labelled[id as usize].1.distance(center)).collect();
        for w in ordered.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    /// Grid index and KD-tree agree on every range query.
    #[test]
    fn grid_and_kdtree_agree(
        pts in prop::collection::vec(arb_point(), 0..150),
        center in arb_point(),
        radius in 0.0f64..400.0,
    ) {
        let labelled: Vec<(u32, Point)> = pts.iter().copied().enumerate()
            .map(|(i, p)| (i as u32, p)).collect();
        let grid = GridIndex::build(50.0, labelled.iter().copied());
        let tree = KdTree::build(labelled.iter().copied());
        let mut a: Vec<u32> = grid.within(center, radius).collect();
        let mut b = tree.within(center, radius);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// count_within agrees with the iterator length.
    #[test]
    fn count_within_consistent(
        pts in prop::collection::vec(arb_point(), 0..100),
        center in arb_point(),
        radius in 0.0f64..300.0,
    ) {
        let idx = GridIndex::build(30.0, pts.iter().copied().enumerate());
        prop_assert_eq!(idx.count_within(center, radius), idx.within(center, radius).count());
    }

    /// Eviction: after removing an arbitrary subset, queries return
    /// exactly the brute-force result over the survivors — removed ids
    /// are never returned.
    #[test]
    fn evicted_points_never_returned(
        pts in prop::collection::vec(arb_point(), 1..150),
        removals in prop::collection::vec(prop::bool::ANY, 1..150),
        center in arb_point(),
        radius in 0.0f64..500.0,
        cell in 1.0f64..100.0,
    ) {
        let labelled: Vec<(u32, Point)> = pts.iter().copied().enumerate()
            .map(|(i, p)| (i as u32, p)).collect();
        let mut idx = GridIndex::build(cell, labelled.iter().copied());
        let mut alive: Vec<(u32, Point)> = Vec::new();
        for (i, &(id, p)) in labelled.iter().enumerate() {
            if removals.get(i).copied().unwrap_or(false) {
                prop_assert!(idx.remove(id, p), "failed to remove id {}", id);
            } else {
                alive.push((id, p));
            }
        }
        prop_assert_eq!(idx.len(), alive.len());
        let mut got: Vec<u32> = idx.within(center, radius).collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = alive.iter()
            .filter(|(_, p)| p.distance(center) <= radius)
            .map(|(i, _)| *i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Re-adding evicted points makes them visible again: a full
    /// remove-all / re-insert-all cycle restores the original result set.
    #[test]
    fn readd_after_evict_restores(
        pts in prop::collection::vec(arb_point(), 1..100),
        center in arb_point(),
        radius in 0.0f64..500.0,
    ) {
        let labelled: Vec<(u32, Point)> = pts.iter().copied().enumerate()
            .map(|(i, p)| (i as u32, p)).collect();
        let mut idx = GridIndex::build(25.0, labelled.iter().copied());
        for &(id, p) in &labelled {
            prop_assert!(idx.remove(id, p));
        }
        prop_assert!(idx.is_empty());
        prop_assert_eq!(idx.within(center, radius).count(), 0);
        for &(id, p) in &labelled {
            idx.insert(id, p);
        }
        let mut got: Vec<u32> = idx.within(center, radius).collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = labelled.iter()
            .filter(|(_, p)| p.distance(center) <= radius)
            .map(|(i, _)| *i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// retain behaves like filtering the underlying point set.
    #[test]
    fn retain_matches_filter(
        pts in prop::collection::vec(arb_point(), 0..120),
        center in arb_point(),
        radius in 0.0f64..400.0,
        modulus in 2u32..6,
    ) {
        let labelled: Vec<(u32, Point)> = pts.iter().copied().enumerate()
            .map(|(i, p)| (i as u32, p)).collect();
        let mut idx = GridIndex::build(40.0, labelled.iter().copied());
        idx.retain(|id, _| id % modulus == 0);
        let survivors: Vec<(u32, Point)> = labelled.iter().copied()
            .filter(|(id, _)| id % modulus == 0).collect();
        prop_assert_eq!(idx.len(), survivors.len());
        let mut got: Vec<u32> = idx.within(center, radius).collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = survivors.iter()
            .filter(|(_, p)| p.distance(center) <= radius)
            .map(|(i, _)| *i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
