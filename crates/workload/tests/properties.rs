//! Property-based tests for the workload generators.

use ltc_core::model::WorkerId;
use ltc_workload::{dataset, AccuracyDistribution, CheckinCityConfig, SyntheticConfig};
use proptest::prelude::*;

fn arb_synthetic() -> impl Strategy<Value = SyntheticConfig> {
    (
        1usize..60,
        1usize..400,
        1u32..8,
        0.05f64..0.5,
        0.70f64..0.92,
        50.0f64..400.0,
        any::<u64>(),
        prop::bool::ANY,
    )
        .prop_map(
            |(n_tasks, n_workers, capacity, epsilon, mean, grid_size, seed, uniform)| {
                SyntheticConfig {
                    n_tasks,
                    n_workers,
                    capacity,
                    epsilon,
                    accuracy: if uniform {
                        AccuracyDistribution::uniform(mean)
                    } else {
                        AccuracyDistribution::normal(mean)
                    },
                    grid_size,
                    seed,
                    ..SyntheticConfig::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the config, generation yields a valid instance with the
    /// requested cardinalities and in-range values (validation would
    /// panic inside `generate` otherwise — this asserts the contract).
    #[test]
    fn synthetic_generation_always_valid(cfg in arb_synthetic()) {
        let inst = cfg.generate();
        prop_assert_eq!(inst.n_tasks(), cfg.n_tasks);
        prop_assert_eq!(inst.n_workers(), cfg.n_workers);
        for w in inst.workers() {
            prop_assert!((0.66..=1.0).contains(&w.accuracy));
            prop_assert!(w.loc.x >= 0.0 && w.loc.x <= cfg.grid_size);
        }
    }

    /// TSV round-trips are lossless for arbitrary synthetic instances.
    #[test]
    fn tsv_roundtrip_lossless(cfg in arb_synthetic()) {
        let a = cfg.generate();
        let mut buf = Vec::new();
        dataset::write_tsv(&a, &mut buf).unwrap();
        let b = dataset::read_tsv(buf.as_slice()).unwrap();
        prop_assert_eq!(a.tasks(), b.tasks());
        prop_assert_eq!(a.workers(), b.workers());
        prop_assert_eq!(a.params(), b.params());
    }

    /// Same seed ⇒ identical instance; the accuracy model agrees after a
    /// round-trip (spot-checked on a few pairs).
    #[test]
    fn determinism_extends_to_accuracy_values(cfg in arb_synthetic()) {
        let a = cfg.generate();
        let b = cfg.generate();
        let w = WorkerId(0);
        for t in 0..a.n_tasks().min(5) as u32 {
            let tid = ltc_core::model::TaskId(t);
            prop_assert_eq!(a.acc(w, tid), b.acc(w, tid));
        }
    }

    /// Check-in generation respects cardinalities and clamps accuracies
    /// for arbitrary small city configs.
    #[test]
    fn checkin_generation_always_valid(
        n_tasks in 1usize..40,
        n_checkins in 1usize..500,
        n_users in 1usize..30,
        n_centers in 1usize..8,
        seed in any::<u64>(),
    ) {
        let cfg = CheckinCityConfig {
            n_tasks,
            n_checkins,
            n_users,
            n_centers,
            seed,
            ..CheckinCityConfig::new_york_like()
        };
        let inst = cfg.generate();
        prop_assert_eq!(inst.n_tasks(), n_tasks);
        prop_assert_eq!(inst.n_workers(), n_checkins);
        for w in inst.workers() {
            prop_assert!((0.66..=1.0).contains(&w.accuracy));
        }
    }

    /// scaled_down never zeroes cardinalities and divides them
    /// monotonically.
    #[test]
    fn scaled_down_is_safe(factor in 1usize..2000) {
        let c = SyntheticConfig::default().scaled_down(factor);
        prop_assert!(c.n_tasks >= 1);
        prop_assert!(c.n_workers >= 1);
        prop_assert!(c.grid_size >= c.d_max);
        let city = CheckinCityConfig::tokyo_like().scaled_down(factor);
        prop_assert!(city.n_tasks >= 1 && city.n_checkins >= 1 && city.n_users >= 1);
    }
}
