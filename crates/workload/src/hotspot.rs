//! Hotspot-drift streams — the skew/adaptivity stress workload.
//!
//! The paper's synthetic workloads ([`crate::SyntheticConfig`]) spread
//! tasks and workers uniformly over the declared region, which is
//! exactly the situation a statically striped, fixed-extent service
//! handles well. Real check-in traffic is neither uniform nor
//! stationary: activity concentrates in a *hotspot* (a stadium, a
//! festival, rush hour along an artery) that **drifts** — and can drift
//! right out of the region the operator guessed at deployment time.
//!
//! [`HotspotDriftConfig`] generates that adversarial stream as an
//! interleaving of [`DriftEvent`]s: each step posts one task scattered
//! around the current hotspot center and then checks in a few workers
//! around the same center (so earlier tasks complete and the live pool
//! tracks the hotspot). The center moves linearly from
//! [`start`](HotspotDriftConfig::start) to
//! [`end`](HotspotDriftConfig::end) over the first
//! [`drift_fraction`](HotspotDriftConfig::drift_fraction) of the stream
//! and then stays put — so a service that adapts (index growth, stripe
//! rebalancing) reaches a steady state that a static one never does.
//!
//! Deterministic given the seed, like every generator in this crate.

use ltc_core::model::{ProblemParams, Task, Worker};
use ltc_spatial::{BoundingBox, Point};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// One event of a hotspot-drift stream, in arrival order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftEvent {
    /// A task posted at the current hotspot.
    Post(Task),
    /// A worker checking in near the current hotspot.
    CheckIn(Worker),
}

/// Configuration of a hotspot-drift stream (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotDriftConfig {
    /// Tasks posted over the stream (one per step).
    pub n_posts: usize,
    /// Workers checked in after each post.
    pub checkins_per_post: usize,
    /// The region the service *declares* (its index/striping guess).
    /// The drift deliberately leaves it.
    pub declared: BoundingBox,
    /// Hotspot center at the first step.
    pub start: Point,
    /// Hotspot center reached at the end of the drift phase.
    pub end: Point,
    /// Fraction of the stream during which the center moves from
    /// `start` to `end` (clamped to `(0, 1]`); afterwards it is
    /// stationary, so adaptive services reach a steady state.
    pub drift_fraction: f64,
    /// Gaussian scatter (std dev, both axes) of tasks and workers
    /// around the center. Keep it a few routing tiles wide or the load
    /// concentrates in one column and no stripe split can help.
    pub sigma: f64,
    /// Tolerable error rate ε.
    pub epsilon: f64,
    /// Per-worker capacity `K`.
    pub capacity: u32,
    /// Eligibility radius `d_max`.
    pub d_max: f64,
    /// Mean worker accuracy (clamped into `[0.7, 0.98]` per draw).
    pub accuracy_mean: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HotspotDriftConfig {
    /// A hotspot born inside a `1000 × 1000` declared region that drifts
    /// 1.5 region-widths east — far past the declared extent — over the
    /// first 60% of the stream.
    fn default() -> Self {
        Self {
            n_posts: 2_000,
            checkins_per_post: 8,
            declared: BoundingBox::new(Point::ORIGIN, Point::new(1000.0, 1000.0)),
            start: Point::new(200.0, 500.0),
            end: Point::new(2500.0, 500.0),
            drift_fraction: 0.6,
            sigma: 60.0,
            epsilon: 0.25,
            capacity: 2,
            d_max: 30.0,
            accuracy_mean: 0.85,
            seed: 0xD21F7,
        }
    }
}

impl HotspotDriftConfig {
    /// Platform parameters matching the stream.
    pub fn params(&self) -> ProblemParams {
        ProblemParams::builder()
            .epsilon(self.epsilon)
            .capacity(self.capacity)
            .d_max(self.d_max)
            .build()
            .expect("hotspot-drift parameter defaults are valid")
    }

    /// Divides the stream length by `factor` (at least one step
    /// remains), leaving the geometry untouched — the same knob the
    /// other generators expose for quick runs.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        let factor = factor.max(1);
        self.n_posts = (self.n_posts / factor).max(1);
        self
    }

    /// The hotspot center at step `i` of `n` (public so experiments can
    /// place probes along the drift).
    pub fn center_at(&self, i: usize, n: usize) -> Point {
        let drift_steps =
            ((n as f64 * self.drift_fraction.clamp(f64::EPSILON, 1.0)).ceil()).max(1.0);
        let t = (i as f64 / drift_steps).min(1.0);
        Point::new(
            self.start.x + t * (self.end.x - self.start.x),
            self.start.y + t * (self.end.y - self.start.y),
        )
    }

    /// Generates the full event stream, deterministically from the seed.
    pub fn events(&self) -> Vec<DriftEvent> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let scatter = Normal::new(0.0, self.sigma).expect("sigma is finite");
        let acc = Normal::new(self.accuracy_mean, 0.05).expect("accuracy mean is finite");
        let mut events = Vec::with_capacity(self.n_posts * (1 + self.checkins_per_post));
        for i in 0..self.n_posts {
            let center = self.center_at(i, self.n_posts);
            let jittered = |rng: &mut StdRng| {
                Point::new(
                    center.x + scatter.sample(rng),
                    center.y + scatter.sample(rng),
                )
            };
            events.push(DriftEvent::Post(Task::new(jittered(&mut rng))));
            for _ in 0..self.checkins_per_post {
                let loc = jittered(&mut rng);
                let accuracy = acc.sample(&mut rng).clamp(0.7, 0.98);
                events.push(DriftEvent::CheckIn(Worker::new(loc, accuracy)));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_sized() {
        let cfg = HotspotDriftConfig {
            n_posts: 50,
            checkins_per_post: 3,
            ..HotspotDriftConfig::default()
        };
        let a = cfg.events();
        let b = cfg.events();
        assert_eq!(a, b, "same seed must reproduce the stream");
        assert_eq!(a.len(), 50 * 4);
        assert_eq!(
            a.iter()
                .filter(|e| matches!(e, DriftEvent::Post(_)))
                .count(),
            50
        );
    }

    #[test]
    fn drift_leaves_the_declared_region_then_settles() {
        let cfg = HotspotDriftConfig::default().scaled_down(10);
        let events = cfg.events();
        let posts: Vec<Point> = events
            .iter()
            .filter_map(|e| match e {
                DriftEvent::Post(t) => Some(t.loc),
                _ => None,
            })
            .collect();
        let inside = posts.iter().filter(|p| cfg.declared.contains(**p)).count();
        let outside = posts.len() - inside;
        assert!(inside > 0, "the hotspot starts inside the region");
        assert!(
            outside > posts.len() / 3,
            "the drift must push a large share of posts out of the region \
             ({outside}/{} were outside)",
            posts.len()
        );
        // After the drift phase, the center is stationary at `end`.
        let n = cfg.n_posts;
        assert_eq!(cfg.center_at(n - 1, n), cfg.end);
        let settled = cfg.center_at((n as f64 * 0.9) as usize, n);
        assert_eq!(settled, cfg.end);
    }

    #[test]
    fn workers_are_spam_free_and_co_located() {
        let cfg = HotspotDriftConfig::default().scaled_down(20);
        for e in cfg.events() {
            if let DriftEvent::CheckIn(w) = e {
                assert!((0.7..=0.98).contains(&w.accuracy));
                assert!(w.loc.is_finite());
            }
        }
    }
}
