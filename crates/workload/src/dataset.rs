//! Plain-text (TSV) serialization of LTC instances.
//!
//! A small, dependency-free interchange format so generated datasets can be
//! saved as fixtures, diffed, and reloaded byte-identically (coordinates
//! and accuracies round-trip through the shortest-f64 formatting, which is
//! lossless in Rust).
//!
//! ```text
//! # ltc-dataset v1
//! params  <epsilon> <capacity> <d_max> <min_accuracy>
//! task    <x> <y>
//! ...
//! worker  <x> <y> <accuracy>
//! ...
//! ```

use ltc_core::model::{Instance, InstanceError, ProblemParams, Task, Worker};
use ltc_spatial::Point;
use std::fmt;
use std::io::{self, BufRead, Write};

const HEADER: &str = "# ltc-dataset v1";

/// Writes an instance in the TSV format.
///
/// Only instances using the default sigmoid accuracy model and Hoeffding
/// quality can be serialized (tabular models carry `|W|·|T|` values and
/// are meant for in-code fixtures).
pub fn write_tsv<W: Write>(instance: &Instance, mut out: W) -> io::Result<()> {
    let p = instance.params();
    writeln!(out, "{HEADER}")?;
    writeln!(
        out,
        "params\t{}\t{}\t{}\t{}",
        p.epsilon, p.capacity, p.d_max, p.min_accuracy
    )?;
    for t in instance.tasks() {
        writeln!(out, "task\t{}\t{}", t.loc.x, t.loc.y)?;
    }
    for w in instance.workers() {
        writeln!(out, "worker\t{}\t{}\t{}", w.loc.x, w.loc.y, w.accuracy)?;
    }
    Ok(())
}

/// Reads an instance from the TSV format.
pub fn read_tsv<R: BufRead>(input: R) -> Result<Instance, ReadError> {
    let mut params: Option<ProblemParams> = None;
    let mut tasks: Vec<Task> = Vec::new();
    let mut workers: Vec<Worker> = Vec::new();
    let mut saw_header = false;

    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(ReadError::Io)?;
        let line = line.trim_end();
        let err = |what: &str| ReadError::Parse {
            line: lineno + 1,
            message: what.to_string(),
        };
        if lineno == 0 {
            if line != HEADER {
                return Err(err("missing `# ltc-dataset v1` header"));
            }
            saw_header = true;
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let kind = fields.next().unwrap_or("");
        let next_f64 = |fields: &mut std::str::Split<'_, char>, name: &str| {
            fields
                .next()
                .ok_or_else(|| err(&format!("missing field `{name}`")))?
                .parse::<f64>()
                .map_err(|e| err(&format!("bad `{name}`: {e}")))
        };
        match kind {
            "params" => {
                let epsilon = next_f64(&mut fields, "epsilon")?;
                let capacity = fields
                    .next()
                    .ok_or_else(|| err("missing field `capacity`"))?
                    .parse::<u32>()
                    .map_err(|e| err(&format!("bad `capacity`: {e}")))?;
                let d_max = next_f64(&mut fields, "d_max")?;
                let min_accuracy = next_f64(&mut fields, "min_accuracy")?;
                params = Some(
                    ProblemParams::builder()
                        .epsilon(epsilon)
                        .capacity(capacity)
                        .d_max(d_max)
                        .min_accuracy(min_accuracy)
                        .build()
                        .map_err(|e| err(&e.to_string()))?,
                );
            }
            "task" => {
                let x = next_f64(&mut fields, "x")?;
                let y = next_f64(&mut fields, "y")?;
                tasks.push(Task::new(Point::new(x, y)));
            }
            "worker" => {
                let x = next_f64(&mut fields, "x")?;
                let y = next_f64(&mut fields, "y")?;
                let accuracy = next_f64(&mut fields, "accuracy")?;
                workers.push(Worker::new(Point::new(x, y), accuracy));
            }
            other => return Err(err(&format!("unknown record kind `{other}`"))),
        }
    }

    if !saw_header {
        return Err(ReadError::Parse {
            line: 0,
            message: "empty input".to_string(),
        });
    }
    let params = params.ok_or(ReadError::Parse {
        line: 0,
        message: "missing `params` record".to_string(),
    })?;
    Instance::new(tasks, workers, params).map_err(ReadError::Instance)
}

/// Errors produced by [`read_tsv`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed record.
    Parse {
        /// 1-based line number (0 = whole-file problem).
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The records parse but violate instance validation.
    Instance(InstanceError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
            ReadError::Instance(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticConfig;

    fn roundtrip(instance: &Instance) -> Instance {
        let mut buf = Vec::new();
        write_tsv(instance, &mut buf).unwrap();
        read_tsv(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_is_lossless() {
        let cfg = SyntheticConfig {
            n_tasks: 25,
            n_workers: 120,
            ..SyntheticConfig::default()
        };
        let a = cfg.generate();
        let b = roundtrip(&a);
        assert_eq!(a.tasks(), b.tasks());
        assert_eq!(a.workers(), b.workers());
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_tsv("params\t0.1\t4\t30\t0.66\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_missing_params() {
        let err = read_tsv(format!("{HEADER}\ntask\t1\t2\n").as_bytes()).unwrap_err();
        assert!(err.to_string().contains("params"));
    }

    #[test]
    fn rejects_garbage_fields() {
        let input = format!("{HEADER}\nparams\tnope\t4\t30\t0.66\n");
        let err = read_tsv(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("epsilon"));
    }

    #[test]
    fn rejects_unknown_record() {
        let input = format!("{HEADER}\nparams\t0.1\t4\t30\t0.66\nblob\t1\n");
        let err = read_tsv(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown record"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let input = format!(
            "{HEADER}\n# a comment\n\nparams\t0.2\t2\t30\t0.66\ntask\t5\t5\nworker\t4\t4\t0.9\n"
        );
        let inst = read_tsv(input.as_bytes()).unwrap();
        assert_eq!(inst.n_tasks(), 1);
        assert_eq!(inst.n_workers(), 1);
    }

    #[test]
    fn spam_worker_in_file_is_rejected() {
        let input = format!("{HEADER}\nparams\t0.2\t2\t30\t0.66\ntask\t5\t5\nworker\t4\t4\t0.1\n");
        let err = read_tsv(input.as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::Instance(_)));
    }
}
