//! Foursquare-like check-in city streams (paper Table V substitution).
//!
//! The paper evaluates on Foursquare check-ins from New York and Tokyo
//! collected by Yang et al. (TSMC'15): every check-in is a worker, workers
//! arrive in chronological check-in order, tasks sit at POIs inside the
//! convex region of the check-ins, and — since the logs carry no accuracy
//! information — historical accuracies are drawn from `Normal(0.86, 0.05)`.
//!
//! The original logs are not redistributable, so this module synthesizes a
//! city with the three structural properties the LTC algorithms actually
//! consume:
//!
//! 1. **Spatial clustering** — check-ins and POIs concentrate in
//!    neighbourhoods (mixture of Gaussians), unlike the uniform synthetic
//!    grid;
//! 2. **Heavy-tailed user activity** — a few users check in very often
//!    (Zipf-distributed activity), so nearby arrivals repeat locations and
//!    accuracies;
//! 3. **Chronological order** — events from all users interleave randomly
//!    in time rather than user-by-user.
//!
//! Users keep a *region preference* (Yang et al.: activity concentrates
//! within ~100–500 m of the check-in neighbourhood), so each user's
//! check-ins scatter around their home neighbourhood.

use ltc_core::model::{Instance, ProblemParams, Task, Worker};
use ltc_spatial::{ConvexPolygon, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::synthetic::AccuracyDistribution;

/// Configuration of a check-in city stream. Use the Table V presets
/// ([`Self::new_york_like`], [`Self::tokyo_like`]) or build your own.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckinCityConfig {
    /// Number of tasks `|T|` (POIs with questions).
    pub n_tasks: usize,
    /// Number of check-in events `|W|` (each event is one worker arrival).
    pub n_checkins: usize,
    /// Number of distinct users behind the events.
    pub n_users: usize,
    /// Per-worker capacity `K`.
    pub capacity: u32,
    /// Tolerable error rate `ε`.
    pub epsilon: f64,
    /// Historical-accuracy distribution per *user* (Table V:
    /// `Normal(0.86, 0.05)`).
    pub accuracy: AccuracyDistribution,
    /// Number of neighbourhood centers in the city.
    pub n_centers: usize,
    /// Extent of the city (centers are spread over `[0, city_size]²`).
    pub city_size: f64,
    /// Spatial σ of POIs and check-ins around their neighbourhood center,
    /// in grid units (10 m each): 20 ≈ 200 m, the middle of the 100–500 m
    /// region preference of Yang et al.
    pub neighbourhood_sigma: f64,
    /// Zipf exponent of per-user activity (1.0–2.0 typical for LBSN data).
    pub activity_exponent: f64,
    /// High-accuracy radius `d_max`.
    pub d_max: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CheckinCityConfig {
    /// The New York dataset of Table V: `|T| = 3717`, `|W| = 227 428`,
    /// `K = 6`, `Normal(0.86, 0.05)` accuracy.
    pub fn new_york_like() -> Self {
        Self {
            n_tasks: 3717,
            n_checkins: 227_428,
            n_users: 1_083, // Yang et al. report 1 083 NYC users
            capacity: 6,
            epsilon: 0.14,
            accuracy: AccuracyDistribution::default_normal(),
            n_centers: 60,
            city_size: 1000.0,
            neighbourhood_sigma: 20.0,
            activity_exponent: 1.2,
            d_max: 30.0,
            seed: 0x4E59, // "NY"
        }
    }

    /// The Tokyo dataset of Table V: `|T| = 9317`, `|W| = 573 703`.
    pub fn tokyo_like() -> Self {
        Self {
            n_tasks: 9317,
            n_checkins: 573_703,
            n_users: 2_293, // Yang et al. report 2 293 Tokyo users
            n_centers: 90,
            seed: 0x544B, // "TK"
            ..Self::new_york_like()
        }
    }

    /// Uniformly scales the stream down by `factor` (≥ 1) for quick runs,
    /// keeping the city extent (and so the spatial density per
    /// neighbourhood) roughly proportionate.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "scale factor must be at least 1");
        self.n_tasks = (self.n_tasks / factor).max(1);
        self.n_checkins = (self.n_checkins / factor).max(1);
        self.n_users = (self.n_users / factor).max(1);
        self.n_centers = (self.n_centers / factor).max(4);
        self
    }

    /// Generates the instance: a chronological worker stream plus tasks at
    /// POIs within the convex hull of the check-ins.
    pub fn generate(&self) -> Instance {
        assert!(self.n_users >= 1 && self.n_checkins >= 1 && self.n_tasks >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let params = ProblemParams::builder()
            .epsilon(self.epsilon)
            .capacity(self.capacity)
            .d_max(self.d_max)
            .build()
            .expect("check-in parameter ranges are valid");

        // 1. Neighbourhood centers.
        let centers: Vec<Point> = (0..self.n_centers)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.1 * self.city_size..=0.9 * self.city_size),
                    rng.gen_range(0.1 * self.city_size..=0.9 * self.city_size),
                )
            })
            .collect();
        let noise = Normal::new(0.0, self.neighbourhood_sigma).expect("σ > 0");

        // 2. Users: home neighbourhood + historical accuracy + Zipf weight.
        struct User {
            home: Point,
            accuracy: f64,
        }
        let users: Vec<User> = (0..self.n_users)
            .map(|_| {
                let c = centers[rng.gen_range(0..centers.len())];
                User {
                    home: Point::new(c.x + noise.sample(&mut rng), c.y + noise.sample(&mut rng)),
                    accuracy: self.accuracy.sample(&mut rng),
                }
            })
            .collect();
        // Zipf activity: weight of user ranked r is r^{-s}.
        let weights: Vec<f64> = (1..=self.n_users)
            .map(|r| (r as f64).powf(-self.activity_exponent))
            .collect();
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let total_weight = *cumulative.last().expect("at least one user");

        // 3. Chronological check-in stream: each event picks a user by
        // activity weight, located near their home with region-preference
        // scatter.
        let workers: Vec<Worker> = (0..self.n_checkins)
            .map(|_| {
                let x = rng.gen_range(0.0..total_weight);
                let idx = cumulative.partition_point(|&c| c <= x);
                let u = &users[idx.min(self.n_users - 1)];
                Worker::new(
                    Point::new(
                        u.home.x + noise.sample(&mut rng),
                        u.home.y + noise.sample(&mut rng),
                    ),
                    u.accuracy,
                )
            })
            .collect();

        // 4. Tasks at POIs within the convex region of the check-ins.
        let hull = ConvexPolygon::from_points(&workers.iter().map(|w| w.loc).collect::<Vec<_>>());
        let tasks: Vec<Task> = (0..self.n_tasks)
            .map(|_| {
                // POIs cluster like check-ins do; rejection-sample into the
                // hull, falling back to uniform-in-hull if a neighbourhood
                // straddles the boundary.
                for _ in 0..32 {
                    let c = centers[rng.gen_range(0..centers.len())];
                    let p = Point::new(c.x + noise.sample(&mut rng), c.y + noise.sample(&mut rng));
                    match &hull {
                        Some(h) if !h.contains(p) => continue,
                        _ => return Task::new(p),
                    }
                }
                let p = hull
                    .as_ref()
                    .map(|h| h.sample_uniform(&mut rng))
                    .unwrap_or_else(|| workers[rng.gen_range(0..workers.len())].loc);
                Task::new(p)
            })
            .collect();

        Instance::new(tasks, workers, params).expect("generated instances are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small() -> CheckinCityConfig {
        CheckinCityConfig {
            n_tasks: 40,
            n_checkins: 2000,
            n_users: 50,
            n_centers: 5,
            ..CheckinCityConfig::new_york_like()
        }
    }

    #[test]
    fn presets_match_table_v() {
        let ny = CheckinCityConfig::new_york_like();
        assert_eq!(ny.n_tasks, 3717);
        assert_eq!(ny.n_checkins, 227_428);
        assert_eq!(ny.capacity, 6);
        let tk = CheckinCityConfig::tokyo_like();
        assert_eq!(tk.n_tasks, 9317);
        assert_eq!(tk.n_checkins, 573_703);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a.tasks(), b.tasks());
        assert_eq!(a.workers(), b.workers());
    }

    #[test]
    fn tasks_lie_in_the_checkin_hull() {
        let inst = small().generate();
        let hull =
            ConvexPolygon::from_points(&inst.workers().iter().map(|w| w.loc).collect::<Vec<_>>())
                .expect("thousands of scattered check-ins are not collinear");
        for t in inst.tasks() {
            assert!(hull.contains(t.loc), "task at {} escaped the hull", t.loc);
        }
    }

    #[test]
    fn activity_is_heavy_tailed() {
        // The busiest user should account for far more events than the
        // 1/n_users uniform share.
        let inst = small().generate();
        let mut by_accuracy: HashMap<u64, usize> = HashMap::new();
        for w in inst.workers() {
            // Users are identified by their (unique w.h.p.) accuracy bits.
            *by_accuracy.entry(w.accuracy.to_bits()).or_insert(0) += 1;
        }
        let max = by_accuracy.values().copied().max().unwrap();
        let uniform_share = inst.n_workers() / by_accuracy.len();
        assert!(
            max > 3 * uniform_share,
            "busiest user {max} vs uniform share {uniform_share}"
        );
    }

    #[test]
    fn checkins_are_clustered() {
        // Average nearest-center distance must be on the order of the
        // neighbourhood sigma, far below the city scale.
        let cfg = small();
        let inst = cfg.generate();
        // Recover density by counting workers within 3σ of each worker's
        // own location — clustered data has many close pairs.
        let pts: Vec<Point> = inst.workers().iter().take(300).map(|w| w.loc).collect();
        let close_pairs = pts
            .iter()
            .enumerate()
            .flat_map(|(i, a)| pts[i + 1..].iter().map(move |b| a.distance(*b)))
            .filter(|&d| d < 3.0 * cfg.neighbourhood_sigma)
            .count();
        let total_pairs = pts.len() * (pts.len() - 1) / 2;
        // Uniform over 1000² would give ~(180/1000)² ≈ 3% close pairs;
        // 5 neighbourhoods give ≥ 1/5 of pairs in the same cluster.
        assert!(
            close_pairs as f64 / total_pairs as f64 > 0.10,
            "only {close_pairs}/{total_pairs} close pairs — not clustered"
        );
    }

    #[test]
    fn scaled_down_divides_cardinalities() {
        let c = CheckinCityConfig::new_york_like().scaled_down(100);
        assert_eq!(c.n_tasks, 37);
        assert_eq!(c.n_checkins, 2274);
        assert!(c.n_users >= 1);
    }

    #[test]
    fn single_user_city_generates() {
        let cfg = CheckinCityConfig {
            n_tasks: 3,
            n_checkins: 20,
            n_users: 1,
            n_centers: 4,
            ..CheckinCityConfig::new_york_like()
        };
        let inst = cfg.generate();
        assert_eq!(inst.n_workers(), 20);
        assert_eq!(inst.n_tasks(), 3);
    }
}
