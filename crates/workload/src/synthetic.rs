//! Synthetic datasets (paper Table IV).

use ltc_core::model::{Eligibility, Instance, ProblemParams, Task, Worker};
use ltc_spatial::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// How workers' historical accuracies are drawn (Table IV).
///
/// Both distributions are clamped to `[0.66, 1.0]` — the paper's spam
/// threshold below and the definition of accuracy above.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccuracyDistribution {
    /// `Normal(μ, σ)`; the paper sweeps `μ ∈ {0.82..0.90}` with σ = 0.05.
    Normal {
        /// Mean `μ`.
        mean: f64,
        /// Standard deviation `σ`.
        std_dev: f64,
    },
    /// `Uniform(mean − half_width, mean + half_width)`. The paper gives
    /// only the mean; we use half-width 0.08 (≈ ±1.6σ of the Normal
    /// setting) — recorded as an assumption in DESIGN.md.
    Uniform {
        /// Distribution mean.
        mean: f64,
        /// Half-width of the support.
        half_width: f64,
    },
}

impl AccuracyDistribution {
    /// The paper's default: `Normal(0.86, 0.05)`.
    pub fn default_normal() -> Self {
        AccuracyDistribution::Normal {
            mean: 0.86,
            std_dev: 0.05,
        }
    }

    /// A Normal with the paper's σ = 0.05 and the given mean.
    pub fn normal(mean: f64) -> Self {
        AccuracyDistribution::Normal {
            mean,
            std_dev: 0.05,
        }
    }

    /// A Uniform with the default half-width 0.08 and the given mean.
    pub fn uniform(mean: f64) -> Self {
        AccuracyDistribution::Uniform {
            mean,
            half_width: 0.08,
        }
    }

    /// Draws one historical accuracy, clamped to `[0.66, 1.0]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let raw = match *self {
            AccuracyDistribution::Normal { mean, std_dev } => Normal::new(mean, std_dev)
                .expect("σ is finite and positive")
                .sample(rng),
            AccuracyDistribution::Uniform { mean, half_width } => {
                rng.gen_range(mean - half_width..=mean + half_width)
            }
        };
        raw.clamp(0.66, 1.0)
    }
}

/// Configuration of a synthetic dataset (Table IV). Defaults are the
/// paper's bold settings: `|T| = 3000`, `|W| = 40000`, `K = 6`,
/// `Normal(0.86, 0.05)` accuracy, `ε = 0.14`, 1000×1000 grid,
/// `d_max = 30`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of tasks `|T|`.
    pub n_tasks: usize,
    /// Number of workers `|W|`.
    pub n_workers: usize,
    /// Per-worker capacity `K`.
    pub capacity: u32,
    /// Tolerable error rate `ε`.
    pub epsilon: f64,
    /// Historical-accuracy distribution.
    pub accuracy: AccuracyDistribution,
    /// Side length of the square grid (locations are uniform on
    /// `[0, grid_size]²`).
    pub grid_size: f64,
    /// High-accuracy radius `d_max`.
    pub d_max: f64,
    /// Eligibility policy (default nearby-only; `Unrestricted` exists for
    /// the ablation showing why the restriction matters).
    pub eligibility: Eligibility,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            n_tasks: 3000,
            n_workers: 40_000,
            capacity: 6,
            epsilon: 0.14,
            accuracy: AccuracyDistribution::default_normal(),
            grid_size: 1000.0,
            d_max: 30.0,
            eligibility: Eligibility::WithinRange,
            seed: 0xA11CE,
        }
    }
}

impl SyntheticConfig {
    /// The paper's default synthetic setting (bold entries of Table IV).
    pub fn table_iv_default() -> Self {
        Self::default()
    }

    /// The scalability setting of Table IV: the given `|T|`
    /// (10k–100k in the paper) with `|W| = 400 000`.
    pub fn scalability(n_tasks: usize) -> Self {
        Self {
            n_tasks,
            n_workers: 400_000,
            ..Self::default()
        }
    }

    /// Uniformly scales the instance down by `factor` (≥ 1), keeping the
    /// worker-per-task density constant by shrinking the grid area
    /// accordingly — used by the `--quick` mode of the benchmark harness.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "scale factor must be at least 1");
        self.n_tasks = (self.n_tasks / factor).max(1);
        self.n_workers = (self.n_workers / factor).max(1);
        self.grid_size = (self.grid_size * (1.0 / factor as f64).sqrt()).max(self.d_max);
        self
    }

    /// Generates the instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration produces invalid parameters (e.g.
    /// `ε ∉ (0,1)`); the Table-IV ranges never do.
    pub fn generate(&self) -> Instance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let params = ProblemParams::builder()
            .epsilon(self.epsilon)
            .capacity(self.capacity)
            .d_max(self.d_max)
            .eligibility(self.eligibility)
            .build()
            .expect("synthetic parameter ranges are valid");

        let point = |rng: &mut StdRng| {
            Point::new(
                rng.gen_range(0.0..=self.grid_size),
                rng.gen_range(0.0..=self.grid_size),
            )
        };
        let tasks: Vec<Task> = (0..self.n_tasks)
            .map(|_| Task::new(point(&mut rng)))
            .collect();
        let workers: Vec<Worker> = (0..self.n_workers)
            .map(|_| {
                let loc = point(&mut rng);
                let acc = self.accuracy.sample(&mut rng);
                Worker::new(loc, acc)
            })
            .collect();
        Instance::new(tasks, workers, params).expect("generated instances are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iv_bold() {
        let c = SyntheticConfig::default();
        assert_eq!(c.n_tasks, 3000);
        assert_eq!(c.n_workers, 40_000);
        assert_eq!(c.capacity, 6);
        assert_eq!(c.epsilon, 0.14);
        assert_eq!(c.grid_size, 1000.0);
        assert_eq!(c.d_max, 30.0);
        assert_eq!(
            c.accuracy,
            AccuracyDistribution::Normal {
                mean: 0.86,
                std_dev: 0.05
            }
        );
    }

    #[test]
    fn scalability_uses_400k_workers() {
        let c = SyntheticConfig::scalability(50_000);
        assert_eq!(c.n_tasks, 50_000);
        assert_eq!(c.n_workers, 400_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let c = SyntheticConfig {
            n_tasks: 20,
            n_workers: 100,
            ..SyntheticConfig::default()
        };
        let a = c.generate();
        let b = c.generate();
        assert_eq!(a.tasks(), b.tasks());
        assert_eq!(a.workers(), b.workers());
    }

    #[test]
    fn different_seeds_differ() {
        let base = SyntheticConfig {
            n_tasks: 20,
            n_workers: 50,
            ..SyntheticConfig::default()
        };
        let a = base.generate();
        let b = SyntheticConfig { seed: 9, ..base }.generate();
        assert_ne!(a.workers(), b.workers());
    }

    #[test]
    fn accuracies_respect_spam_threshold() {
        let c = SyntheticConfig {
            n_tasks: 5,
            n_workers: 2000,
            accuracy: AccuracyDistribution::normal(0.70), // low mean: clamp kicks in
            ..SyntheticConfig::default()
        };
        let inst = c.generate();
        assert!(inst
            .workers()
            .iter()
            .all(|w| (0.66..=1.0).contains(&w.accuracy)));
    }

    #[test]
    fn uniform_distribution_stays_in_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = AccuracyDistribution::uniform(0.9);
        for _ in 0..1000 {
            let a = dist.sample(&mut rng);
            assert!((0.82..=0.98).contains(&a), "sample {a} outside support");
        }
    }

    #[test]
    fn normal_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = AccuracyDistribution::normal(0.86);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.86).abs() < 0.005, "empirical mean {mean}");
    }

    #[test]
    fn locations_fall_in_grid() {
        let c = SyntheticConfig {
            n_tasks: 50,
            n_workers: 200,
            grid_size: 100.0,
            ..SyntheticConfig::default()
        };
        let inst = c.generate();
        for t in inst.tasks() {
            assert!((0.0..=100.0).contains(&t.loc.x) && (0.0..=100.0).contains(&t.loc.y));
        }
        for w in inst.workers() {
            assert!((0.0..=100.0).contains(&w.loc.x) && (0.0..=100.0).contains(&w.loc.y));
        }
    }

    #[test]
    fn scaled_down_keeps_density() {
        let c = SyntheticConfig::default().scaled_down(100);
        assert_eq!(c.n_tasks, 30);
        assert_eq!(c.n_workers, 400);
        // Area shrinks 100×: side shrinks 10×.
        assert!((c.grid_size - 100.0).abs() < 1e-9);
    }
}
