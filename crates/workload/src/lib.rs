//! Workload generators for LTC experiments (paper Sec. V-A).
//!
//! Two families of datasets drive the paper's evaluation:
//!
//! * [`SyntheticConfig`] — the synthetic workloads of **Table IV**:
//!   tasks and workers uniform on a 1000×1000 grid (one cell = 10 m),
//!   `d_max = 30` (300 m), historical accuracy drawn from a Normal or
//!   Uniform distribution, with a scalability variant up to
//!   `|T| = 100 000, |W| = 400 000`.
//! * [`CheckinCityConfig`] — a Foursquare-like check-in stream standing in
//!   for the real New York / Tokyo datasets of **Table V** (the original
//!   check-in logs are not redistributable). The generator reproduces the
//!   three properties the algorithms actually consume: spatially clustered
//!   POIs/check-ins, heavy-tailed per-user activity, and chronological
//!   arrival order. Presets [`CheckinCityConfig::new_york_like`] and
//!   [`CheckinCityConfig::tokyo_like`] match Table V's cardinalities
//!   exactly.
//!
//! A third family stresses what the paper's uniform workloads cannot:
//! [`HotspotDriftConfig`] emits an interleaved post/check-in stream
//! whose activity hotspot *drifts across and beyond* the declared
//! region — the workload that exercises the service layer's adaptive
//! index growth and stripe rebalancing (see `docs/ARCHITECTURE.md` and
//! the `skewed_throughput` bench).
//!
//! All generators are deterministic given their seed.
//!
//! The [`dataset`] module adds a plain-text (TSV) serialization of
//! instances for fixtures and interchange.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkin;
pub mod dataset;
pub mod hotspot;
pub mod synthetic;

pub use checkin::CheckinCityConfig;
pub use hotspot::{DriftEvent, HotspotDriftConfig};
pub use synthetic::{AccuracyDistribution, SyntheticConfig};
