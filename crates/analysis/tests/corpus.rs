//! Integration tests over the fixture corpus in `tests/fixtures/`:
//! every bad fixture triggers exactly its one diagnostic, the text and
//! JSON reports are byte-stable against committed goldens, the JSON
//! output satisfies the `ltc-bench/v1` schema checker, and the waiver
//! → baseline workflow round-trips.
//!
//! Regenerate the goldens with
//! `UPDATE_GOLDENS=1 cargo test -p ltc-analysis --test corpus`.

use ltc_analysis::analysis::FileContext;
use ltc_analysis::baseline::Baseline;
use ltc_analysis::rules;
use ltc_analysis::{classify, lint_workspace, report, Options};
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The `.rs` fixtures, sorted by file name for stable iteration.
fn fixture_sources() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in fs::read_dir(fixtures_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rs") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, fs::read_to_string(&path).unwrap()));
        }
    }
    out.sort();
    out
}

/// Copies the `.rs` fixtures into `<tmp>/src/` so [`lint_workspace`]
/// can walk them like real sources — the checked-in `fixtures/`
/// directory itself is excluded from workspace runs precisely because
/// its files violate on purpose.
fn corpus_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("ltc-lint-corpus-{}-{tag}", std::process::id()));
    let src = root.join("src");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&src).unwrap();
    for (name, body) in fixture_sources() {
        fs::write(src.join(name), body).unwrap();
    }
    root
}

/// Compares `actual` against the committed golden at
/// `tests/fixtures/<name>`, rewriting it under `UPDATE_GOLDENS=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = fixtures_dir().join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden `{name}` ({e}); run with UPDATE_GOLDENS=1"));
    assert_eq!(
        expected, actual,
        "`{name}` drifted; regenerate with UPDATE_GOLDENS=1 if the change is intended"
    );
}

#[test]
fn each_bad_fixture_triggers_exactly_its_one_diagnostic() {
    let mut seen = 0;
    for (name, src) in fixture_sources() {
        // Fixtures lint under the default path classification; the wire
        // overlay comes from their in-file `discipline(wire)` directive.
        let ctx = FileContext::new(&src, &classify("src/fixture.rs"));
        let rep = rules::run(&ctx);
        if let Some(code) = name.strip_suffix(".rs").and_then(|n| n.get(..4)) {
            if code.starts_with("l0") {
                let expected = code.to_uppercase();
                assert_eq!(
                    rep.findings.len(),
                    1,
                    "`{name}` must trigger exactly one diagnostic, got {:?}",
                    rep.findings
                );
                assert_eq!(rep.findings[0].code, expected, "`{name}`");
                seen += 1;
                continue;
            }
        }
        // Control fixtures: silent, and `waived.rs` records its waiver.
        assert!(
            rep.findings.is_empty(),
            "`{name}` must be clean: {:?}",
            rep.findings
        );
        let expected_waived = usize::from(name == "waived.rs");
        assert_eq!(rep.waived.len(), expected_waived, "`{name}`");
    }
    assert_eq!(seen, 7, "one bad fixture per code L000–L006");
}

#[test]
fn reports_match_the_committed_goldens_byte_for_byte() {
    let root = corpus_workspace("golden");
    let rep = lint_workspace(&root, &Options::default(), &Baseline::default()).unwrap();
    assert_eq!(rep.files_scanned, 9);
    assert_eq!(rep.findings.len(), 7);
    assert_eq!(rep.waived, 1);
    assert_golden("golden_report.txt", &report::text(&rep));
    assert_golden("golden_report.json", &report::json(&rep));
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn json_report_satisfies_the_bench_schema() {
    let root = corpus_workspace("schema");
    let rep = lint_workspace(&root, &Options::default(), &Baseline::default()).unwrap();
    ltc_bench::json::validate(&report::json(&rep)).expect("populated report must validate");

    // An all-clean run (nothing but the summary row) must validate too.
    fs::remove_dir_all(root.join("src")).unwrap();
    fs::create_dir_all(root.join("src")).unwrap();
    fs::write(root.join("src/clean.rs"), "pub fn ok() {}\n").unwrap();
    let empty = lint_workspace(&root, &Options::default(), &Baseline::default()).unwrap();
    assert!(empty.findings.is_empty());
    ltc_bench::json::validate(&report::json(&empty)).expect("empty report must validate");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn baseline_round_trips_and_reports_stale_entries() {
    let root = corpus_workspace("baseline");
    let raw = lint_workspace(&root, &Options::default(), &Baseline::default()).unwrap();
    assert!(raw.is_dirty());

    // Serialize → parse → relint: every finding is absorbed, nothing
    // is stale, and a `--deny` run would pass.
    let baseline = Baseline::from_findings(
        raw.findings
            .iter()
            .map(|f| (f.code, f.path.as_str(), f.snippet.as_str())),
    );
    let reparsed = Baseline::parse(&baseline.serialize()).unwrap();
    let rep = lint_workspace(&root, &Options::default(), &reparsed).unwrap();
    assert!(rep.findings.is_empty(), "{:?}", rep.findings);
    assert!(rep.stale_baseline.is_empty());
    assert_eq!(rep.baselined, raw.findings.len());
    assert!(!rep.is_dirty());

    // Fixing a baselined site makes its entry stale: the baseline may
    // only shrink, so the run turns dirty until the entry is removed.
    fs::write(
        root.join("src/l003_lock_unwrap.rs"),
        "pub fn bump(n: &mut u64) {\n    *n += 1;\n}\n",
    )
    .unwrap();
    let fixed = lint_workspace(&root, &Options::default(), &reparsed).unwrap();
    assert!(fixed.findings.is_empty());
    assert_eq!(fixed.stale_baseline.len(), 1);
    assert_eq!(fixed.stale_baseline[0].code, "L003");
    assert!(fixed.is_dirty());

    // A baseline entry for a path outside this run's scan set (the
    // vendor workflow) is not reported stale.
    let vendor = Baseline::parse(
        "# ltc-lint baseline\nL006\tvendor/shim/src/lib.rs\t1\tInstant::now();\tvendor shim\n",
    )
    .unwrap();
    let rep = lint_workspace(&root, &Options::default(), &vendor).unwrap();
    assert!(rep.stale_baseline.is_empty());
    fs::remove_dir_all(&root).unwrap();
}
