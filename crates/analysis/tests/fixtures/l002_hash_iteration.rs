//! L002 fixture: hash-order iteration on a determinism path — the
//! visit order varies run to run.

use std::collections::HashMap;

pub fn drain_in_hash_order(loads: HashMap<u32, u64>) -> u64 {
    let mut sum = 0;
    for (_task, load) in loads.iter() {
        sum += load;
    }
    sum
}
