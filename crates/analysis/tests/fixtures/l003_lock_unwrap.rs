//! L003 fixture: `.lock().unwrap()` poisons every other holder when
//! any thread panics with the guard live.

use std::sync::Mutex;

pub fn bump(counter: &Mutex<u64>) {
    *counter.lock().unwrap() += 1;
}
