//! L000 fixture: a waiver that absorbs nothing is itself a finding —
//! a stale `allow(...)` must never linger to mask a future regression.

// ltc-lint: allow(L006) stale: the stopwatch this waived was removed
pub fn nothing_left_to_waive() -> u32 {
    41 + 1
}
