//! L001 fixture: an `f64` reaching `Display` on a wire path — the
//! shortest-roundtrip decimal is not bit-exact across rewrites.
// ltc-lint: discipline(wire)

use std::fmt::Write as _;

pub fn emit_accuracy(v: f64, out: &mut String) {
    let _ = write!(out, "worker accuracy {v}");
}
