//! L005 fixture: an uncapped line read on a wire path — a hostile
//! peer can grow the buffer without bound.
// ltc-lint: discipline(wire)

use std::io::BufRead;

pub fn next_frame(reader: &mut impl BufRead) -> std::io::Result<String> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(line)
}
