//! L004 fixture: an allocating `collect` inside a hot-path item.

// ltc-lint: hot-path
pub fn doubled(xs: &[u32]) -> Vec<u32> {
    xs.iter().map(|x| x * 2).collect()
}
