//! Waiver fixture: a real L006 hit absorbed by an inline waiver with
//! a written reason — zero findings, one waived.

use std::time::Instant;

pub fn stopwatch_start() -> Instant {
    Instant::now() // ltc-lint: allow(L006) fixture stopwatch: elapsed time is the measurement
}
