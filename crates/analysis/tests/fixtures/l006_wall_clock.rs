//! L006 fixture: a wall-clock read in decision code breaks replay.

use std::time::Instant;

pub fn decide_epoch() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
