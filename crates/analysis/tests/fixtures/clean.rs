//! Control fixture: obeys every discipline — zero findings.

use std::collections::BTreeMap;

pub fn total_load(loads: &BTreeMap<u32, u64>) -> u64 {
    loads.values().sum()
}
