//! The committed baseline: grandfathered findings that are explained
//! rather than fixed (today, only `vendor/` shims — the whole file is a
//! ready diff surface for the shim/real-crate swap noted in ROADMAP).
//!
//! Format: one tab-separated entry per line,
//! `CODE<TAB>path<TAB>count<TAB>trimmed-source-line<TAB>reason`,
//! `#` comments and blank lines ignored. Entries are keyed on the
//! *content* of the offending line, not its number, so unrelated edits
//! above a grandfathered site don't churn the file. An entry absorbs at
//! most `count` findings; extra findings at the same site still fail,
//! and an entry whose site was scanned but produced nothing is reported
//! stale so the baseline can only shrink.

use std::collections::BTreeMap;

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub code: String,
    pub path: String,
    pub count: usize,
    pub snippet: String,
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parses the committed format; malformed lines are hard errors so
    /// a bad merge can't silently drop suppressions.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 5 {
                return Err(format!(
                    "baseline line {}: expected 5 tab-separated fields, got {}",
                    i + 1,
                    fields.len()
                ));
            }
            let count: usize = fields[2]
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{}`", i + 1, fields[2]))?;
            if count == 0 {
                return Err(format!("baseline line {}: count must be >= 1", i + 1));
            }
            if fields[4].trim().is_empty() {
                return Err(format!(
                    "baseline line {}: entry has no reason — every grandfathered \
                     site must be explained",
                    i + 1
                ));
            }
            entries.push(Entry {
                code: fields[0].to_string(),
                path: fields[1].to_string(),
                count,
                snippet: fields[3].to_string(),
                reason: fields[4].to_string(),
            });
        }
        Ok(Self { entries })
    }

    /// Serializes in the stable committed form (sorted, headered).
    pub fn serialize(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| (&a.path, &a.code, &a.snippet).cmp(&(&b.path, &b.code, &b.snippet)));
        let mut out = String::from(
            "# ltc-lint baseline: grandfathered findings, keyed on line content.\n\
             # CODE\tpath\tcount\ttrimmed-source-line\treason\n",
        );
        for e in entries {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                e.code, e.path, e.count, e.snippet, e.reason
            ));
        }
        out
    }

    /// Builds a baseline from `(code, path, snippet)` findings, with an
    /// automatic reason for vendor shims and a TODO marker elsewhere.
    pub fn from_findings<'a>(findings: impl Iterator<Item = (&'a str, &'a str, &'a str)>) -> Self {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for (code, path, snippet) in findings {
            *counts
                .entry((code.to_string(), path.to_string(), snippet.to_string()))
                .or_insert(0) += 1;
        }
        let entries = counts
            .into_iter()
            .map(|((code, path, snippet), count)| {
                let reason = if path.starts_with("vendor/") {
                    "vendor shim; replaced wholesale on the real-crate swap (ROADMAP)".to_string()
                } else {
                    "TODO: fix this site or replace with an inline waiver".to_string()
                };
                Entry {
                    code,
                    path,
                    count,
                    snippet,
                    reason,
                }
            })
            .collect();
        Self { entries }
    }
}

/// Mutable matching state over a baseline: each entry absorbs up to
/// `count` findings; [`Matcher::stale`] lists entries left unconsumed
/// for paths that were actually scanned.
pub struct Matcher<'a> {
    baseline: &'a Baseline,
    remaining: Vec<usize>,
}

impl<'a> Matcher<'a> {
    pub fn new(baseline: &'a Baseline) -> Self {
        let remaining = baseline.entries.iter().map(|e| e.count).collect();
        Self {
            baseline,
            remaining,
        }
    }

    /// Tries to absorb one finding; true when a baseline entry covers it.
    pub fn absorb(&mut self, code: &str, path: &str, snippet: &str) -> bool {
        for (i, e) in self.baseline.entries.iter().enumerate() {
            if self.remaining[i] > 0 && e.code == code && e.path == path && e.snippet == snippet {
                self.remaining[i] -= 1;
                return true;
            }
        }
        false
    }

    /// Entries (still holding budget) whose path is in `scanned` — the
    /// site was linted and produced fewer findings than budgeted, so the
    /// baseline should shrink.
    pub fn stale(&self, scanned: &dyn Fn(&str) -> bool) -> Vec<&'a Entry> {
        self.baseline
            .entries
            .iter()
            .enumerate()
            .filter(|(i, e)| self.remaining[*i] == e.count && scanned(&e.path))
            .map(|(_, e)| e)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_sorts() {
        let b = Baseline::from_findings(
            [
                (
                    "L006",
                    "vendor/criterion/src/lib.rs",
                    "let t = Instant::now();",
                ),
                (
                    "L006",
                    "vendor/criterion/src/lib.rs",
                    "let t = Instant::now();",
                ),
                ("L003", "crates/x/src/lib.rs", "m.lock().unwrap();"),
            ]
            .into_iter(),
        );
        let text = b.serialize();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries.len(), 2);
        let vendor = parsed
            .entries
            .iter()
            .find(|e| e.path.starts_with("vendor/"))
            .unwrap();
        assert_eq!(vendor.count, 2);
        assert!(vendor.reason.contains("vendor shim"));
        assert_eq!(parsed.serialize(), text);
    }

    #[test]
    fn matcher_absorbs_up_to_count_and_reports_stale() {
        let text = "L006\tvendor/v.rs\t2\tInstant::now();\tvendor shim\n\
                    L003\tcrates/a.rs\t1\tlock().unwrap();\tlegacy\n";
        let b = Baseline::parse(text).unwrap();
        let mut m = Matcher::new(&b);
        assert!(m.absorb("L006", "vendor/v.rs", "Instant::now();"));
        assert!(m.absorb("L006", "vendor/v.rs", "Instant::now();"));
        assert!(!m.absorb("L006", "vendor/v.rs", "Instant::now();"));
        assert!(!m.absorb("L003", "crates/a.rs", "other text"));
        // crates/a.rs was scanned and its entry never matched → stale;
        // vendor path unscanned → silently ignored.
        let stale = m.stale(&|p: &str| p.starts_with("crates/"));
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "crates/a.rs");
    }

    #[test]
    fn parse_rejects_reasonless_and_malformed_entries() {
        assert!(Baseline::parse("L001\tp\t1\tsnippet\t \n").is_err());
        assert!(Baseline::parse("L001\tp\tzero\tsnippet\twhy\n").is_err());
        assert!(Baseline::parse("just one field\n").is_err());
        assert!(Baseline::parse("# comment\n\n").unwrap().entries.is_empty());
    }
}
