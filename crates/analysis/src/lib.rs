//! `ltc-lint` — the workspace invariant checker.
//!
//! The system's headline guarantee is bit-exact determinism: the same
//! instance produces the same arrangement, snapshot, WAL, and wire
//! bytes on every run, across shard counts, across crash/recovery.
//! PRs 2–9 enforce that with runtime differential tests and the
//! counting-allocator gate; this crate enforces it at the *source*
//! level, so a regression is a compile-gate failure instead of a
//! flaky-proptest hunt. In the offline spirit of the rest of the
//! workspace (the hand-rolled JSON codec, the vendored bench shims) it
//! is dependency-free: a small Rust lexer ([`lexer`]), a syntactic
//! per-file analysis ([`analysis`]), and six pattern rules ([`rules`]).
//!
//! | Code | Invariant |
//! |------|-----------|
//! | L000 | `ltc-lint` directives must be well-formed and live |
//! | L001 | no Display/Debug formatting of `f64` on wire paths |
//! | L002 | no `HashMap`/`HashSet` iteration on determinism paths |
//! | L003 | no `.lock().unwrap()` outside tests |
//! | L004 | no allocation in `// ltc-lint: hot-path` items |
//! | L005 | wire/WAL read loops sit under a length cap |
//! | L006 | no wall-clock reads in decision/serialization code |
//!
//! See `docs/LINTS.md` for the full catalog, waiver syntax
//! (`ltc-lint: allow(L00x) <reason>`), and the baseline workflow.

pub mod analysis;
pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;

use analysis::{Discipline, FileContext};
use baseline::{Baseline, Matcher};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// A finding with its workspace-relative path attached.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PathFinding {
    pub path: String,
    pub line: u32,
    pub code: &'static str,
    pub message: String,
    pub snippet: String,
}

/// The result of linting the whole workspace.
pub struct WorkspaceReport {
    /// Findings not absorbed by a waiver or the baseline, sorted.
    pub findings: Vec<PathFinding>,
    /// Baseline entries whose (scanned) site is now clean.
    pub stale_baseline: Vec<baseline::Entry>,
    pub files_scanned: usize,
    /// Findings absorbed by inline waivers.
    pub waived: usize,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
}

impl WorkspaceReport {
    /// Whether a `--deny` run should fail: any live finding, or any
    /// stale baseline entry (the baseline may only shrink).
    pub fn is_dirty(&self) -> bool {
        !self.findings.is_empty() || !self.stale_baseline.is_empty()
    }
}

/// Maps a workspace-relative path (forward slashes) to the invariant
/// disciplines it is checked under.
///
/// Everything is [`Discipline::Decision`] — in a determinism-first
/// codebase every module either decides assignments or feeds something
/// that does. The [`Discipline::Wire`] overlay marks bytes another
/// machine (or a future run) re-reads: the protocol crate, the
/// durability crate, the snapshot codec, and the committed bench
/// reports. A file can override its classification with
/// `ltc-lint: discipline(wire|decision|none)`.
pub fn classify(rel: &str) -> Vec<Discipline> {
    let wire = rel.starts_with("crates/proto/src/")
        || rel.starts_with("crates/durable/src/")
        || rel == "crates/core/src/snapshot.rs"
        || rel == "crates/bench/src/json.rs";
    let mut d = vec![Discipline::Decision];
    if wire {
        d.push(Discipline::Wire);
    }
    d
}

/// Options for a workspace run.
#[derive(Default)]
pub struct Options {
    /// Also scan `vendor/` (report-only shims; findings live in the
    /// committed baseline as the swap-ready diff surface).
    pub include_vendor: bool,
}

/// Collects the `.rs` files a workspace run lints, workspace-relative
/// and sorted for byte-stable output.
///
/// Skipped: `target/`, VCS internals, `docs/`, test/bench/example
/// trees (integration tests are wholly test code — L003's test
/// exemption covers them wholesale), lint fixtures, and `vendor/`
/// unless opted in.
pub fn collect_sources(root: &Path, opts: &Options) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                let skip = matches!(
                    name.as_ref(),
                    "target"
                        | ".git"
                        | ".github"
                        | "docs"
                        | "tests"
                        | "benches"
                        | "examples"
                        | "fixtures"
                        | "node_modules"
                ) || (name == "vendor" && !opts.include_vendor);
                if !skip {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .to_path_buf();
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every source under `root`, absorbing grandfathered findings
/// through `baseline` (pass an empty [`Baseline`] for a raw run).
pub fn lint_workspace(
    root: &Path,
    opts: &Options,
    baseline: &Baseline,
) -> Result<WorkspaceReport, String> {
    let files = collect_sources(root, opts)?;
    let mut matcher = Matcher::new(baseline);
    let mut findings = Vec::new();
    let mut scanned: BTreeSet<String> = BTreeSet::new();
    let mut waived = 0usize;
    let mut baselined = 0usize;
    for rel in &files {
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel_str}: {e}"))?;
        let ctx = FileContext::new(&src, &classify(&rel_str));
        let rep = rules::run(&ctx);
        waived += rep.waived.len();
        for f in rep.findings {
            let snippet = ctx.snippet(f.line).to_string();
            if matcher.absorb(f.code, &rel_str, &snippet) {
                baselined += 1;
            } else {
                findings.push(PathFinding {
                    path: rel_str.clone(),
                    line: f.line,
                    code: f.code,
                    message: f.message,
                    snippet,
                });
            }
        }
        scanned.insert(rel_str);
    }
    findings.sort();
    let stale_baseline = matcher
        .stale(&|p: &str| scanned.contains(p))
        .into_iter()
        .cloned()
        .collect();
    Ok(WorkspaceReport {
        findings,
        stale_baseline,
        files_scanned: files.len(),
        waived,
        baselined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_overlay_covers_proto_durable_snapshot_and_bench_json() {
        for wire in [
            "crates/proto/src/wire.rs",
            "crates/durable/src/wal.rs",
            "crates/core/src/snapshot.rs",
            "crates/bench/src/json.rs",
        ] {
            assert!(classify(wire).contains(&Discipline::Wire), "{wire}");
        }
        for not_wire in [
            "crates/core/src/engine.rs",
            "crates/cli/src/commands.rs",
            "vendor/rand/src/lib.rs",
        ] {
            assert!(
                !classify(not_wire).contains(&Discipline::Wire),
                "{not_wire}"
            );
            assert!(classify(not_wire).contains(&Discipline::Decision));
        }
    }
}
