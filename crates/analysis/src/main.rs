//! `ltc-lint` CLI: lints the workspace tree against the determinism,
//! allocation, and wire-safety disciplines (see `docs/LINTS.md`).
//!
//! ```text
//! ltc-lint --workspace [ROOT] [--deny] [--json PATH] [--baseline PATH]
//!          [--write-baseline] [--include-vendor]
//! ```
//!
//! Exit codes: 0 clean (or report-only), 1 findings under `--deny`,
//! 2 usage or I/O error.

use ltc_analysis::baseline::Baseline;
use ltc_analysis::{lint_workspace, report, Options};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    deny: bool,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    include_vendor: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: ltc-lint --workspace [ROOT] [--deny] [--json PATH|-] \
         [--baseline PATH] [--write-baseline] [--include-vendor]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        root: PathBuf::from("."),
        deny: false,
        json: None,
        baseline: None,
        write_baseline: false,
        include_vendor: false,
    };
    let mut saw_mode = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workspace" => saw_mode = true,
            "--deny" => args.deny = true,
            "--write-baseline" => args.write_baseline = true,
            "--include-vendor" => args.include_vendor = true,
            "--json" => match argv.next() {
                Some(p) => args.json = Some(p.into()),
                None => usage(),
            },
            "--baseline" => match argv.next() {
                Some(p) => args.baseline = Some(p.into()),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && saw_mode => args.root = other.into(),
            _ => usage(),
        }
    }
    if !saw_mode {
        usage();
    }
    args
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("ltc-lint: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args = parse_args();
    let opts = Options {
        include_vendor: args.include_vendor,
    };
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("ltc-lint.baseline"));

    if args.write_baseline {
        // A raw run (no baseline absorption) snapshots today's findings.
        let report = match lint_workspace(&args.root, &opts, &Baseline::default()) {
            Ok(r) => r,
            Err(e) => return fail(&e),
        };
        let b = Baseline::from_findings(
            report
                .findings
                .iter()
                .map(|f| (f.code, f.path.as_str(), f.snippet.as_str())),
        );
        if let Err(e) = std::fs::write(&baseline_path, b.serialize()) {
            return fail(&format!("{}: {e}", baseline_path.display()));
        }
        println!(
            "wrote {} entr(ies) to {}",
            b.entries.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => return fail(&e),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return fail(&format!("{}: {e}", baseline_path.display())),
    };

    let report = match lint_workspace(&args.root, &opts, &baseline) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    print!("{}", report::text(&report));
    if let Some(json_path) = &args.json {
        let doc = report::json(&report);
        if json_path.as_os_str() == "-" {
            print!("{doc}");
        } else if let Err(e) = std::fs::write(json_path, doc) {
            return fail(&format!("{}: {e}", json_path.display()));
        }
    }
    if args.deny && report.is_dirty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
