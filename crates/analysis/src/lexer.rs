//! A minimal Rust tokenizer — just enough fidelity for the workspace
//! invariant rules (see [`crate::rules`]).
//!
//! Like `ltc_proto::json`, this is hand-rolled because the build
//! environment has no crate registry (no `syn`, no `proc-macro2`), and
//! like that parser it is hostile-input safe: every input, however
//! malformed, produces a token stream (unterminated literals degrade to
//! a token that runs to end-of-file) — the linter must never panic on a
//! source file it cannot make sense of.
//!
//! Fidelity choices, driven by what the rules match on:
//!
//! * **Comments are tokens**, not trivia — waiver directives
//!   (`// ltc-lint: allow(...)`) live in them.
//! * **Strings keep their decoded-enough text** so format strings can
//!   be inspected for placeholder specs; raw strings (`r#"…"#`, any
//!   hash depth) and byte strings are recognized so a `"` inside one
//!   never desynchronizes the stream.
//! * **Lifetimes and char literals are distinguished** (`'a` vs `'a'`),
//!   so a generic parameter never eats the rest of the file.
//! * **Punctuation stays single-byte.** Rules match multi-character
//!   operators as adjacent tokens (`:` `:` for a path separator), which
//!   keeps the lexer trivial and the match patterns explicit.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// String literal of any flavor — the text is the *content* (quotes
    /// and raw-string hashes stripped, escapes left as written).
    Str,
    /// Character or byte literal (content kept verbatim).
    Char,
    /// A lifetime (`'a`) — text excludes the quote.
    Lifetime,
    /// One punctuation byte.
    Punct,
    /// `// …` comment (text excludes the slashes, includes doc comments).
    LineComment,
    /// `/* … */` comment (text excludes the delimiters; nesting folded).
    BlockComment,
}

/// One token: its kind, its text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Lexeme text (see [`TokKind`] for what is included).
    pub text: String,
    /// 1-based source line of the token's first byte.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the given punctuation byte.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this token is the given identifier/keyword.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// Tokenizes one Rust source file. Never fails: malformed input yields
/// a best-effort stream (see the module docs).
pub fn tokenize(src: &str) -> Vec<Tok> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(b) = self.peek() {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(line),
                b'r' | b'b' | b'c' if self.raw_or_prefixed_string(line) => {}
                b'"' => self.string(line),
                b'\'' => self.char_or_lifetime(line),
                b'0'..=b'9' => self.number(line),
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(line),
                _ => {
                    self.bump();
                    // Multi-byte UTF-8 only occurs inside literals,
                    // comments, and idents in valid Rust; a stray byte
                    // here is surfaced as punctuation and ignored by
                    // every rule.
                    self.push(TokKind::Punct, (b as char).to_string(), line);
                }
            }
        }
        self.toks
    }

    fn line_comment(&mut self, line: u32) {
        self.pos += 2; // the `//`
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        self.pos += 2; // the `/*`
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(b) = self.peek() {
            if b == b'/' && self.peek_at(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if b == b'*' && self.peek_at(1) == Some(b'/') {
                depth -= 1;
                let end = self.pos;
                self.bump();
                self.bump();
                if depth == 0 {
                    let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
                    self.push(TokKind::BlockComment, text, line);
                    return;
                }
            } else {
                self.bump();
            }
        }
        // Unterminated: the rest of the file is comment.
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::BlockComment, text, line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `c"…"`, and raw
    /// identifiers (`r#type`). Returns false when the `r`/`b`/`c` is an
    /// ordinary identifier start (the caller falls through to
    /// [`Lexer::ident`]).
    fn raw_or_prefixed_string(&mut self, line: u32) -> bool {
        let mut ahead = 1;
        // Optional second prefix byte (`br`, `cr` — raw byte/C strings).
        if matches!(self.peek(), Some(b'b' | b'c')) && self.peek_at(ahead) == Some(b'r') {
            ahead += 1;
        }
        let mut hashes = 0usize;
        while self.peek_at(ahead + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek_at(ahead + hashes) {
            Some(b'"') => {}
            // `r#ident` — a raw identifier, not a string.
            Some(b'A'..=b'Z' | b'a'..=b'z' | b'_') if self.peek() == Some(b'r') && hashes == 1 => {
                self.pos += 2; // the `r#`
                self.ident(line);
                return true;
            }
            _ => return false,
        }
        // Hashed strings only follow an `r` prefix; `b"` and `c"` take
        // the escape-aware path instead.
        let raw = hashes > 0 || self.peek_at(ahead - 1) == Some(b'r');
        for _ in 0..ahead + hashes + 1 {
            self.bump();
        }
        let start = self.pos;
        let mut end;
        loop {
            end = self.pos;
            match self.bump() {
                None => break, // unterminated: content runs to EOF
                Some(b'"') => {
                    let mut seen = 0;
                    while seen < hashes && self.peek() == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(b'\\') if !raw => {
                    self.bump(); // the escaped byte cannot close the string
                }
                Some(_) => {}
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.push(TokKind::Str, text, line);
        true
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let start = self.pos;
        let mut end;
        loop {
            end = self.pos;
            match self.bump() {
                None | Some(b'"') => break,
                Some(b'\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    /// `'a'` / `'\n'` / `b'x'` are char literals; `'a` is a lifetime.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening quote
        match self.peek() {
            Some(b'\\') => {
                // Escaped char literal: consume through the closing quote.
                let start = self.pos;
                self.bump();
                self.bump(); // the escaped byte ( `\u{..}` keeps going below )
                while let Some(b) = self.peek() {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                let end = self.pos.saturating_sub(1).max(start);
                let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
                self.push(TokKind::Char, text, line);
            }
            Some(b'A'..=b'Z' | b'a'..=b'z' | b'_') if self.peek_at(1) != Some(b'\'') => {
                // A lifetime: identifier characters, no closing quote.
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')
                ) {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.push(TokKind::Lifetime, text, line);
            }
            _ => {
                // Unescaped char literal (possibly multi-byte UTF-8).
                let start = self.pos;
                let mut end;
                loop {
                    end = self.pos;
                    match self.bump() {
                        None | Some(b'\'') => break,
                        Some(_) => {}
                    }
                }
                let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
                self.push(TokKind::Char, text, line);
            }
        }
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        self.bump();
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'a'..=b'd' | b'f'..=b'z' | b'A'..=b'D' | b'F'..=b'Z' | b'_' => {
                    self.bump();
                }
                // Exponent: consume a following sign too (`1e-5`).
                b'e' | b'E' => {
                    self.bump();
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.bump();
                    }
                }
                // A decimal point only if a digit follows (`1.5`, not
                // the range `1..5` or method call `1.max(2)`).
                b'.' if matches!(self.peek_at(1), Some(b'0'..=b'9')) => {
                    self.bump();
                }
                _ => break,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::Number, text, line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("let x = 42 + y_2;");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Number, "42".into()),
                (TokKind::Punct, "+".into()),
                (TokKind::Ident, "y_2".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn float_and_range_numbers() {
        let toks = kinds("1.5e-3 0..10 1.0f64 0xff_u8 1.max(2)");
        assert_eq!(toks[0], (TokKind::Number, "1.5e-3".into()));
        assert_eq!(toks[1], (TokKind::Number, "0".into()));
        assert_eq!(toks[2], (TokKind::Punct, ".".into()));
        assert_eq!(toks[3], (TokKind::Punct, ".".into()));
        assert_eq!(toks[4], (TokKind::Number, "10".into()));
        assert_eq!(toks[5], (TokKind::Number, "1.0f64".into()));
        assert_eq!(toks[6], (TokKind::Number, "0xff_u8".into()));
        assert_eq!(toks[7], (TokKind::Number, "1".into()));
        assert_eq!(toks[8], (TokKind::Punct, ".".into()));
        assert_eq!(toks[9], (TokKind::Ident, "max".into()));
    }

    #[test]
    fn strings_of_every_flavor() {
        let toks = kinds(r###"("a\"b" r"raw" r#"ha"sh"# b"bytes" c"cstr")"###);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, vec![r#"a\"b"#, "raw", "ha\"sh", "bytes", "cstr"]);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let toks = kinds("r#type r#fn");
        assert_eq!(toks[0], (TokKind::Ident, "type".into()));
        assert_eq!(toks[1], (TokKind::Ident, "fn".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("<'a> 'x' '\\n' 'static");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Char, "x".into())));
        assert!(toks.contains(&(TokKind::Char, "\\n".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "static".into())));
    }

    #[test]
    fn comments_carry_text_and_lines() {
        let toks = tokenize("code(); // ltc-lint: allow(L001) why\n/* block\nspan */ more");
        assert_eq!(toks[4].kind, TokKind::LineComment);
        assert_eq!(toks[4].text, " ltc-lint: allow(L001) why");
        assert_eq!(toks[4].line, 1);
        assert_eq!(toks[5].kind, TokKind::BlockComment);
        assert_eq!(toks[6].kind, TokKind::Ident);
        assert_eq!(toks[6].line, 3, "newlines inside comments count");
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn quote_inside_raw_string_does_not_desynchronize() {
        let toks = kinds(r##"r#"contains " quote"# after"##);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1], (TokKind::Ident, "after".into()));
    }

    #[test]
    fn hostile_inputs_never_panic() {
        for bad in [
            "\"unterminated",
            "r#\"unterminated",
            "/* unterminated",
            "'",
            "b'",
            "\u{FFFD}\u{1F600} emoji soup \"\u{1F600}\"",
            "r###\"deep\"## not closed",
            "\\ \\ \\",
        ] {
            let _ = tokenize(bad);
        }
    }
}
