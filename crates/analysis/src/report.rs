//! Output formatting: human-readable text and an `ltc-bench/v1` JSON
//! document, so the existing schema checker in CI (and any tooling that
//! already understands bench reports) can consume lint results without
//! a second parser. The emission is hand-rolled — this crate stays
//! dependency-free; a test in `tests/` cross-checks the document
//! against `ltc_bench::json::validate`.

use crate::WorkspaceReport;
use std::fmt::Write as _;

/// Human-readable report, one line per finding, sorted and stable.
pub fn text(report: &WorkspaceReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(
            out,
            "{}:{}: {} {}\n    {}",
            f.path, f.line, f.code, f.message, f.snippet
        );
    }
    for s in &report.stale_baseline {
        let _ = writeln!(
            out,
            "{}: stale baseline entry ({} x{}) — site now clean, remove it:\n    {}",
            s.path, s.code, s.count, s.snippet
        );
    }
    let _ = writeln!(
        out,
        "{} file(s) scanned, {} finding(s), {} waived inline, {} absorbed by baseline{}",
        report.files_scanned,
        report.findings.len(),
        report.waived,
        report.baselined,
        if report.stale_baseline.is_empty() {
            String::new()
        } else {
            format!(", {} stale baseline entr(ies)", report.stale_baseline.len())
        }
    );
    out
}

/// `ltc-bench/v1` document: one row per finding (name = `CODE path:line`)
/// plus a trailing `summary` row carrying the counters.
pub fn json(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\n");
    push_str_kv(&mut out, 1, "schema", "ltc-bench/v1");
    out.push_str(",\n");
    push_str_kv(&mut out, 1, "bench", "ltc-lint");
    out.push_str(",\n  \"scale\": 1,\n  \"cores\": 1,\n  \"rows\": [\n");
    let mut first = true;
    for f in &report.findings {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("    {\n");
        push_str_kv(
            &mut out,
            3,
            "name",
            &format!("{} {}:{}", f.code, f.path, f.line),
        );
        out.push_str(",\n");
        push_str_kv(&mut out, 3, "code", f.code);
        out.push_str(",\n");
        push_str_kv(&mut out, 3, "path", &f.path);
        out.push_str(",\n");
        let _ = writeln!(out, "      \"line\": {},", f.line);
        push_str_kv(&mut out, 3, "message", &f.message);
        out.push_str(",\n");
        push_str_kv(&mut out, 3, "snippet", &f.snippet);
        out.push_str("\n    }");
    }
    if !first {
        out.push_str(",\n");
    }
    out.push_str("    {\n");
    push_str_kv(&mut out, 3, "name", "summary");
    let _ = write!(
        out,
        ",\n      \"files_scanned\": {},\n      \"findings\": {},\n      \
         \"waived\": {},\n      \"baselined\": {},\n      \"stale_baseline\": {}\n    }}",
        report.files_scanned,
        report.findings.len(),
        report.waived,
        report.baselined,
        report.stale_baseline.len()
    );
    out.push_str("\n  ]\n}\n");
    out
}

fn push_str_kv(out: &mut String, indent: usize, key: &str, value: &str) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    push_escaped(out, key);
    out.push_str(": ");
    push_escaped(out, value);
}

/// Minimal JSON string escaping (quotes, backslash, control bytes).
fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PathFinding, WorkspaceReport};

    fn sample() -> WorkspaceReport {
        WorkspaceReport {
            findings: vec![PathFinding {
                path: "crates/x/src/lib.rs".into(),
                line: 7,
                code: "L003",
                message: "a \"quoted\" message".into(),
                snippet: "m.lock().unwrap();".into(),
            }],
            stale_baseline: Vec::new(),
            files_scanned: 3,
            waived: 2,
            baselined: 1,
        }
    }

    #[test]
    fn text_report_is_stable_and_clickable() {
        let t = text(&sample());
        assert!(t.contains("crates/x/src/lib.rs:7: L003"));
        assert!(t.contains("3 file(s) scanned, 1 finding(s), 2 waived inline"));
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let j = json(&sample());
        assert!(j.contains("\"schema\": \"ltc-bench/v1\""));
        assert!(j.contains("\"bench\": \"ltc-lint\""));
        assert!(j.contains("\"name\": \"L003 crates/x/src/lib.rs:7\""));
        assert!(j.contains("a \\\"quoted\\\" message"));
        assert!(j.contains("\"findings\": 1"));
    }
}
