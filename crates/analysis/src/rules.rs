//! The six lint rules (L001–L006) plus L000 directive hygiene, all
//! running over a [`FileContext`]. Each rule emits raw candidates; the
//! shared driver ([`run`]) strips test-region hits, consumes inline
//! waivers, and reports dead waivers so a stale `allow(...)` can never
//! silently mask a future regression.

use crate::analysis::{Discipline, FileContext};
use crate::lexer::TokKind;

/// One diagnostic, file-relative (the workspace walker adds the path).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Source line (1-based).
    pub line: u32,
    /// Stable code, e.g. `"L003"`.
    pub code: &'static str,
    /// Human explanation with the expected remedy.
    pub message: String,
}

/// A finding that an inline waiver absorbed, kept for reporting.
#[derive(Debug, Clone)]
pub struct Waived {
    pub line: u32,
    pub code: &'static str,
    pub reason: String,
}

/// The result of linting one file.
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub waived: Vec<Waived>,
}

/// Runs every rule over the file.
pub fn run(ctx: &FileContext) -> FileReport {
    let mut raw: Vec<Finding> = Vec::new();
    l001_float_format(ctx, &mut raw);
    l002_iteration_order(ctx, &mut raw);
    l003_lock_hygiene(ctx, &mut raw);
    l004_hot_path_alloc(ctx, &mut raw);
    l005_uncapped_read(ctx, &mut raw);
    l006_wall_clock(ctx, &mut raw);

    let mut findings = Vec::new();
    let mut waived = Vec::new();
    for f in raw {
        if ctx.is_test_line(f.line) {
            continue;
        }
        match ctx.try_waive(f.code, f.line) {
            Some(w) => waived.push(Waived {
                line: f.line,
                code: f.code,
                reason: w.reason.clone(),
            }),
            None => findings.push(f),
        }
    }
    // Directive hygiene comes last so `used` flags are settled.
    for (line, what) in &ctx.directive_errors {
        findings.push(Finding {
            line: *line,
            code: "L000",
            message: format!("malformed ltc-lint directive: {what}"),
        });
    }
    for w in &ctx.waivers {
        if !w.used.get() && !ctx.is_test_line(w.at) {
            findings.push(Finding {
                line: w.at,
                code: "L000",
                message: format!(
                    "waiver allow({}) matches no finding — remove it or fix its target",
                    w.codes.join(",")
                ),
            });
        }
    }
    findings.sort();
    FileReport { findings, waived }
}

const FORMAT_MACROS: [&str; 8] = [
    "format",
    "write",
    "writeln",
    "print",
    "println",
    "eprint",
    "eprintln",
    "format_args",
];

/// L001 — no `Display`/`Debug` formatting of `f64` on wire paths.
///
/// Fires inside [`Discipline::Wire`] files on a format-macro invocation
/// whose format string carries a float-shaped spec (`{:.N}`, `{:e}`) or
/// interpolates a known-`f64` identifier, either inline (`"{v}"`) or as
/// a trailing argument. An `f64` argument immediately followed by a
/// method call (e.g. `v.to_bits()`) is NOT flagged — that is exactly the
/// sanctioned bit-pattern route.
fn l001_float_format(ctx: &FileContext, out: &mut Vec<Finding>) {
    if !ctx.disciplines.contains(&Discipline::Wire) {
        return;
    }
    let n = ctx.n_code();
    for ci in 0..n {
        let t = ctx.ct(ci);
        if t.kind != TokKind::Ident || !FORMAT_MACROS.contains(&t.text.as_str()) {
            continue;
        }
        if ci + 1 >= n || !ctx.ct(ci + 1).is_punct('!') {
            continue;
        }
        // Span of the macro call: to the matching close delimiter.
        let Some(open) = (ci + 2..n).find(|&j| {
            ctx.ct(j).is_punct('(') || ctx.ct(j).is_punct('[') || ctx.ct(j).is_punct('{')
        }) else {
            continue;
        };
        let mut depth = 0usize;
        let mut close = open;
        for j in open..n {
            let u = ctx.ct(j);
            if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                depth += 1;
            } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
        }
        let line = t.line;
        let mut flagged = false;
        for j in open + 1..close {
            let a = ctx.ct(j);
            match a.kind {
                TokKind::Str => {
                    for (name, spec) in format_specs(&a.text) {
                        let floaty =
                            spec.contains('.') || spec.ends_with('e') || spec.ends_with('E');
                        if floaty || ctx.f64_idents.contains(name) {
                            flagged = true;
                        }
                    }
                }
                // A *bare* f64 argument (`, v ,` / `, v )` / `, self.x )`)
                // reaches Display directly. Anything wrapped — `bits(v)`,
                // `v.to_bits()` — formats the wrapper's result, which is
                // exactly the sanctioned bit-pattern route.
                TokKind::Ident if ctx.f64_idents.contains(&a.text) => {
                    let prev_ok = j > open + 1
                        && (ctx.ct(j - 1).is_punct(',') || ctx.ct(j - 1).is_punct('.'));
                    let next_ok = j + 1 == close || ctx.ct(j + 1).is_punct(',');
                    if prev_ok && next_ok {
                        flagged = true;
                    }
                }
                // A direct call to a known f64-returning function still
                // produces an f64 for Display.
                TokKind::Ident
                    if ctx.f64_fns.contains(&a.text)
                        && j + 1 < close
                        && ctx.ct(j + 1).is_punct('(')
                        && (ctx.ct(j - 1).is_punct(',') || j == open + 1) =>
                {
                    flagged = true;
                }
                TokKind::Ident
                    if a.text == "as" && j + 1 < close && ctx.ct(j + 1).is_ident("f64") =>
                {
                    flagged = true;
                }
                _ => {}
            }
        }
        if flagged {
            out.push(Finding {
                line,
                code: "L001",
                message: format!(
                    "f64 formatted via {}! on a wire path — route floats through \
                     the 16-hex bit-pattern helpers so bytes round-trip bit-exactly",
                    t.text
                ),
            });
        }
    }
}

/// Extracts `(name, spec)` pairs from a format string's `{...}` holes,
/// skipping `{{` escapes. `name` may be empty (positional).
fn format_specs(s: &str) -> Vec<(&str, &str)> {
    let mut holes = Vec::new();
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'{' {
            if i + 1 < b.len() && b[i + 1] == b'{' {
                i += 2;
                continue;
            }
            if let Some(end) = s[i + 1..].find('}') {
                let hole = &s[i + 1..i + 1 + end];
                let (name, spec) = match hole.find(':') {
                    Some(c) => (&hole[..c], &hole[c + 1..]),
                    None => (hole, ""),
                };
                holes.push((name, spec));
                i += end + 2;
                continue;
            }
        }
        i += 1;
    }
    holes
}

const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// L002 — no `HashMap`/`HashSet` iteration on serialization or decision
/// paths: iteration order varies run-to-run, which breaks the bit-exact
/// guarantee the differential tests enforce. Use `BTreeMap`/`BTreeSet`
/// or sort before iterating.
fn l002_iteration_order(ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.disciplines.is_empty() {
        return;
    }
    let n = ctx.n_code();
    for ci in 0..n {
        let t = ctx.ct(ci);
        if t.kind != TokKind::Ident || !ctx.hash_idents.contains(&t.text) {
            continue;
        }
        // `for pat in [&[mut]] h` …
        let mut j = ci;
        while j > 0 && (ctx.ct(j - 1).is_punct('&') || ctx.ct(j - 1).is_ident("mut")) {
            j -= 1;
        }
        let for_loop = j > 0 && ctx.ct(j - 1).is_ident("in");
        // … or `h.iter()` and friends.
        let method_iter = ci + 2 < n
            && ctx.ct(ci + 1).is_punct('.')
            && ctx.ct(ci + 2).kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&ctx.ct(ci + 2).text.as_str());
        if for_loop || method_iter {
            out.push(Finding {
                line: t.line,
                code: "L002",
                message: format!(
                    "iteration over hash collection `{}` on a determinism path — \
                     hash order varies run-to-run; use a BTree collection or sort first",
                    t.text
                ),
            });
        }
    }
}

/// L003 — no `.lock().unwrap()` outside tests: a panic on one thread
/// poisons the mutex and cascades into every other holder. Use
/// `lock().unwrap_or_else(PoisonError::into_inner)` when the guarded
/// state is valid at every await point, or waive with the reason the
/// panic should propagate.
fn l003_lock_hygiene(ctx: &FileContext, out: &mut Vec<Finding>) {
    let n = ctx.n_code();
    for ci in 0..n {
        if n - ci < 8 {
            break;
        }
        let seq_ok = ctx.ct(ci).is_punct('.')
            && ctx.ct(ci + 1).is_ident("lock")
            && ctx.ct(ci + 2).is_punct('(')
            && ctx.ct(ci + 3).is_punct(')')
            && ctx.ct(ci + 4).is_punct('.')
            && ctx.ct(ci + 5).is_ident("unwrap")
            && ctx.ct(ci + 6).is_punct('(')
            && ctx.ct(ci + 7).is_punct(')');
        if seq_ok {
            out.push(Finding {
                line: ctx.ct(ci + 5).line,
                code: "L003",
                message: ".lock().unwrap() poisons on panic — recover with \
                          unwrap_or_else(PoisonError::into_inner) or waive with a reason"
                    .into(),
            });
        }
    }
}

/// L004 — no allocation in `// ltc-lint: hot-path` items. Complements
/// the runtime CountingAllocator gate: the allocator proves steady
/// state is clean today, this lint stops tomorrow's patch from
/// reintroducing a `collect` the benches only notice later.
fn l004_hot_path_alloc(ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.hot_ranges.is_empty() {
        return;
    }
    let n = ctx.n_code();
    for ci in 0..n {
        let t = ctx.ct(ci);
        if t.kind != TokKind::Ident || !ctx.is_hot_line(t.line) {
            continue;
        }
        let what: Option<&str> = match t.text.as_str() {
            // `Vec::new` / `Vec::with_capacity`.
            "Vec" | "String" | "Box"
                if ci + 2 < n && ctx.ct(ci + 1).is_punct(':') && ctx.ct(ci + 2).is_punct(':') =>
            {
                Some("constructor")
            }
            // `.collect(` / `.to_vec(` / `.to_owned(` / `.to_string(`.
            "collect" | "to_vec" | "to_owned" | "to_string"
                if ci >= 1
                    && ctx.ct(ci - 1).is_punct('.')
                    && ci + 1 < n
                    && ctx.ct(ci + 1).is_punct('(') =>
            {
                Some("method")
            }
            // `format!` / `vec!`.
            "format" | "vec" if ci + 1 < n && ctx.ct(ci + 1).is_punct('!') => Some("macro"),
            _ => None,
        };
        if let Some(kind) = what {
            out.push(Finding {
                line: t.line,
                code: "L004",
                message: format!(
                    "allocating {kind} `{}` inside a hot-path item — reuse \
                     caller-provided buffers (see the CountingAllocator gate)",
                    t.text
                ),
            });
        }
    }
}

const CAPPED_READERS: [&str; 2] = ["read_line", "read_until"];

/// L005 — every wire/WAL read loop sits under a length cap. A
/// `read_line`/`read_until` whose enclosing function never calls
/// `.take(..)` will buffer an unbounded line from a hostile or corrupt
/// peer (PROTOCOL.md's hostile-input rule).
fn l005_uncapped_read(ctx: &FileContext, out: &mut Vec<Finding>) {
    if !ctx.disciplines.contains(&Discipline::Wire) {
        return;
    }
    let n = ctx.n_code();
    for ci in 0..n {
        let t = ctx.ct(ci);
        if t.kind != TokKind::Ident || !CAPPED_READERS.contains(&t.text.as_str()) {
            continue;
        }
        if ci == 0 || !ctx.ct(ci - 1).is_punct('.') {
            continue;
        }
        let capped = match ctx.enclosing_fn(ci) {
            Some((open, close)) => (open..=close).any(|j| ctx.ct(j).is_ident("take")),
            None => false,
        };
        if !capped {
            out.push(Finding {
                line: t.line,
                code: "L005",
                message: format!(
                    "`.{}()` without a `.take(cap)` guard in this function — a \
                     hostile peer can grow the buffer without bound; cap the reader",
                    t.text
                ),
            });
        }
    }
}

/// L006 — no wall-clock reads (`Instant::now`, `SystemTime::now`) in
/// decision or serialization code: replayability requires time to enter
/// through the simulation clock or recorded inputs only.
fn l006_wall_clock(ctx: &FileContext, out: &mut Vec<Finding>) {
    if !ctx.disciplines.contains(&Discipline::Decision) {
        return;
    }
    let n = ctx.n_code();
    for ci in 0..n {
        let t = ctx.ct(ci);
        if t.kind != TokKind::Ident || (t.text != "Instant" && t.text != "SystemTime") {
            continue;
        }
        let now_call = ci + 3 < n
            && ctx.ct(ci + 1).is_punct(':')
            && ctx.ct(ci + 2).is_punct(':')
            && ctx.ct(ci + 3).is_ident("now");
        if now_call {
            out.push(Finding {
                line: t.line,
                code: "L006",
                message: format!(
                    "{}::now() on a decision/serialization path breaks replay — \
                     thread time in from the sim clock or waive with a reason",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Discipline, FileContext};

    fn lint(src: &str, d: &[Discipline]) -> Vec<Finding> {
        run(&FileContext::new(src, d)).findings
    }

    #[test]
    fn l001_flags_inline_capture_and_precision() {
        let src = "fn f(v: f64, out: &mut String) {\n\
                   let _ = write!(out, \"{v}\");\n\
                   let _ = write!(out, \"{:.6}\", n);\n\
                   }\n";
        let f = lint(src, &[Discipline::Wire]);
        assert_eq!(f.iter().filter(|f| f.code == "L001").count(), 2);
    }

    #[test]
    fn l001_bit_pattern_route_is_clean() {
        let src = "fn f(v: f64, out: &mut String) {\n\
                   let _ = write!(out, \"{:016x}\", v.to_bits());\n\
                   }\n";
        assert!(lint(src, &[Discipline::Wire]).is_empty());
    }

    #[test]
    fn l001_silent_without_wire_discipline() {
        let src = "fn f(v: f64) { let _ = format!(\"{v}\"); }\n";
        assert!(lint(src, &[Discipline::Decision]).is_empty());
    }

    #[test]
    fn l002_flags_hash_iteration_but_not_lookup() {
        let src = "fn f() {\n\
                   let m: HashMap<u32, u32> = HashMap::new();\n\
                   for k in m.keys() { use_it(k); }\n\
                   let v = m.get(&1);\n\
                   }\n";
        let f = lint(src, &[Discipline::Decision]);
        assert_eq!(f.iter().filter(|f| f.code == "L002").count(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn l003_flags_everywhere_but_tests() {
        let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); }\n\
                   #[test]\nfn t() { let g = M.lock().unwrap(); }\n";
        let f = lint(src, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "L003");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn l003_recovering_lock_is_clean() {
        let src = "fn f(m: &Mutex<u32>) {\n\
                   let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n\
                   }\n";
        assert!(lint(src, &[]).is_empty());
    }

    #[test]
    fn l004_only_fires_in_hot_items() {
        let src = "// ltc-lint: hot-path\n\
                   fn hot(xs: &[u32]) -> Vec<u32> { xs.iter().copied().collect() }\n\
                   fn cold(xs: &[u32]) -> Vec<u32> { xs.to_vec() }\n";
        let f = lint(src, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "L004");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn l005_take_cap_suppresses() {
        let src = "fn raw(r: &mut impl BufRead, buf: &mut Vec<u8>) {\n\
                   r.read_until(b'\\n', buf).unwrap();\n\
                   }\n\
                   fn capped(r: &mut impl BufRead, buf: &mut Vec<u8>) {\n\
                   r.by_ref().take(MAX).read_until(b'\\n', buf).unwrap();\n\
                   }\n";
        let f = lint(src, &[Discipline::Wire]);
        assert_eq!(f.iter().filter(|f| f.code == "L005").count(), 1);
        assert_eq!(f.iter().find(|f| f.code == "L005").unwrap().line, 2);
    }

    #[test]
    fn l006_flags_instant_now_in_decision_code() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let f = lint(src, &[Discipline::Decision]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "L006");
        assert!(lint(src, &[Discipline::Wire]).is_empty());
    }

    #[test]
    fn waivers_absorb_and_dead_waivers_fire_l000() {
        let src = "fn f(m: &Mutex<u32>) {\n\
                   let g = m.lock().unwrap(); // ltc-lint: allow(L003) poison means torn state\n\
                   }\n\
                   // ltc-lint: allow(L006) dead waiver\n\
                   fn g() {}\n";
        let report = run(&FileContext::new(src, &[]));
        assert_eq!(report.waived.len(), 1);
        assert_eq!(report.waived[0].code, "L003");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].code, "L000");
    }
}
