//! Per-file analysis context shared by every rule: the token stream,
//! test-region detection, function spans, waiver directives, hot-path
//! annotations, and a cheap intra-file type approximation (which
//! identifiers are `f64`, which are hash collections).
//!
//! Everything here is deliberately *syntactic*. The linter has no type
//! checker; instead each rule matches token patterns that the
//! workspace's own disciplines make reliable (e.g. wire modules route
//! every float through the bit-pattern helpers, so a formatted `f64`
//! identifier is always a finding or a waiver — never noise). False
//! negatives are acceptable (CI's differential tests still backstop the
//! runtime behavior); false positives must be rare enough that an
//! inline waiver with a written reason is a feature, not a burden.

use crate::lexer::{tokenize, Tok, TokKind};
use std::collections::BTreeSet;

/// The invariant families a file can be subject to (see
/// [`crate::classify`] for the path → discipline map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Discipline {
    /// Bytes that another machine (or a future run) re-reads: protocol
    /// frames, snapshots, the WAL, committed artifacts. L001 (float
    /// formatting) and L005 (uncapped reads) apply.
    Wire,
    /// Code whose control flow decides or serializes assignments — the
    /// bit-exactness surface. L002 (iteration order) and L006
    /// (wall-clock) apply.
    Decision,
}

/// One inline waiver directive: `// ltc-lint: allow(L00x[,L00y]) reason`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Codes this waiver covers.
    pub codes: Vec<String>,
    /// The written justification (required).
    pub reason: String,
    /// The source line the waiver applies to (its own line for trailing
    /// comments, the next code-bearing line for leading ones).
    pub applies_to: u32,
    /// Where the directive itself sits (for unused-waiver reporting).
    pub at: u32,
    /// Set when a finding consumed this waiver.
    pub used: std::cell::Cell<bool>,
}

/// The analyzed form of one source file.
pub struct FileContext {
    /// Every token, comments included.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of the non-comment tokens.
    pub code: Vec<usize>,
    /// Source lines (for finding snippets and baseline keys).
    pub lines: Vec<String>,
    /// Lines covered by `#[test]` / `#[cfg(test)]` items.
    pub test_lines: BTreeSet<u32>,
    /// Parsed `allow(...)` directives.
    pub waivers: Vec<Waiver>,
    /// Line ranges (inclusive) marked `// ltc-lint: hot-path`.
    pub hot_ranges: Vec<(u32, u32)>,
    /// Effective disciplines (path classification ∪ in-file overrides).
    pub disciplines: BTreeSet<Discipline>,
    /// Identifiers the intra-file approximation types as `f64`.
    pub f64_idents: BTreeSet<String>,
    /// Function names the approximation types as returning `f64`.
    pub f64_fns: BTreeSet<String>,
    /// Identifiers typed as `HashMap`/`HashSet`.
    pub hash_idents: BTreeSet<String>,
    /// `fn` body spans as `(open_brace, close_brace)` indices into
    /// `code` (innermost-last ordering not guaranteed; scan all).
    pub fn_spans: Vec<(usize, usize)>,
    /// Malformed `ltc-lint:` directives: `(line, what)`.
    pub directive_errors: Vec<(u32, String)>,
}

impl FileContext {
    /// Analyzes one source file under the given base disciplines.
    pub fn new(src: &str, base: &[Discipline]) -> Self {
        let toks = tokenize(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let mut ctx = Self {
            toks,
            code,
            lines,
            test_lines: BTreeSet::new(),
            waivers: Vec::new(),
            hot_ranges: Vec::new(),
            disciplines: base.iter().copied().collect(),
            f64_idents: BTreeSet::new(),
            f64_fns: BTreeSet::new(),
            hash_idents: BTreeSet::new(),
            fn_spans: Vec::new(),
            directive_errors: Vec::new(),
        };
        ctx.scan_directives();
        ctx.scan_test_regions();
        ctx.scan_fn_spans();
        ctx.collect_types();
        ctx
    }

    /// The code token at code-index `i`.
    pub fn ct(&self, i: usize) -> &Tok {
        &self.toks[self.code[i]]
    }

    /// Number of code tokens.
    pub fn n_code(&self) -> usize {
        self.code.len()
    }

    /// Whether `line` is inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// Whether `line` is inside a hot-path annotated item.
    pub fn is_hot_line(&self, line: u32) -> bool {
        self.hot_ranges
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Consumes a waiver covering `code` at `line`, if one exists.
    pub fn try_waive(&self, code: &str, line: u32) -> Option<&Waiver> {
        let w = self
            .waivers
            .iter()
            .find(|w| w.applies_to == line && w.codes.iter().any(|c| c == code))?;
        w.used.set(true);
        Some(w)
    }

    /// The trimmed source line (1-based), for snippets and baseline keys.
    pub fn snippet(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim())
            .unwrap_or("")
    }

    /// Innermost `fn` body span (code-token indices) containing code
    /// token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<(usize, usize)> {
        self.fn_spans
            .iter()
            .copied()
            .filter(|&(open, close)| (open..=close).contains(&i))
            .min_by_key(|&(open, close)| close - open)
    }

    // ---- construction passes ----------------------------------------

    /// Parses every `ltc-lint:` comment directive.
    fn scan_directives(&mut self) {
        for (ti, tok) in self.toks.iter().enumerate() {
            if !matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            let Some(rest) = tok.text.trim_start().strip_prefix("ltc-lint:") else {
                continue;
            };
            let rest = rest.trim();
            if rest == "hot-path" {
                if let Some(range) = self.next_item_range(ti) {
                    self.hot_ranges.push(range);
                } else {
                    self.directive_errors
                        .push((tok.line, "hot-path directive precedes no item".into()));
                }
            } else if let Some(body) = rest.strip_prefix("allow(") {
                match parse_allow(body) {
                    Ok((codes, reason)) => {
                        let applies_to = self.directive_target_line(ti);
                        self.waivers.push(Waiver {
                            codes,
                            reason,
                            applies_to,
                            at: tok.line,
                            used: std::cell::Cell::new(false),
                        });
                    }
                    Err(what) => self.directive_errors.push((tok.line, what)),
                }
            } else if let Some(body) = rest.strip_prefix("discipline(") {
                match parse_disciplines(body) {
                    Ok(set) => self.disciplines = set,
                    Err(what) => self.directive_errors.push((tok.line, what)),
                }
            } else {
                self.directive_errors
                    .push((tok.line, format!("unknown directive `{rest}`")));
            }
        }
    }

    /// A trailing directive (code earlier on its line) governs its own
    /// line; a leading one governs the next line carrying code.
    fn directive_target_line(&self, comment_ti: usize) -> u32 {
        let line = self.toks[comment_ti].line;
        let trailing = self.toks[..comment_ti].iter().rev().any(|t| {
            t.line == line && !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
        });
        if trailing {
            return line;
        }
        self.toks[comment_ti..]
            .iter()
            .find(|t| {
                t.line > line && !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
            })
            .map_or(line, |t| t.line)
    }

    /// Line range of the next item (through its matching brace, or its
    /// terminating `;`) after token `ti` — the scope of `hot-path`.
    fn next_item_range(&self, ti: usize) -> Option<(u32, u32)> {
        let start_ci = self.code.iter().position(|&c| c > ti)?;
        let from = self.toks[self.code[start_ci]].line;
        let mut depth = 0usize;
        for ci in start_ci..self.code.len() {
            let t = self.ct(ci);
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return Some((from, t.line));
                }
            } else if t.is_punct(';') && depth == 0 {
                return Some((from, t.line));
            }
        }
        Some((from, self.toks.last().map_or(from, |t| t.line)))
    }

    /// Marks the lines of every `#[test]` / `#[cfg(..test..)]` item.
    fn scan_test_regions(&mut self) {
        let mut ci = 0;
        while ci < self.n_code() {
            if self.ct(ci).is_punct('#') && ci + 1 < self.n_code() && self.ct(ci + 1).is_punct('[')
            {
                // Scan the attribute to its matching `]`.
                let mut depth = 0usize;
                let mut has_test = false;
                let mut end = ci + 1;
                for aj in ci + 1..self.n_code() {
                    let t = self.ct(aj);
                    if t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            end = aj;
                            break;
                        }
                    } else if t.is_ident("test") {
                        has_test = true;
                    }
                }
                if has_test {
                    // The item body: to the matching `}` of the first
                    // brace, or a `;` met first (e.g. `#[cfg(test)] use`).
                    let mut depth = 0usize;
                    let from = self.ct(ci).line;
                    let mut to = from;
                    for bj in end + 1..self.n_code() {
                        let t = self.ct(bj);
                        if t.is_punct('{') {
                            depth += 1;
                        } else if t.is_punct('}') {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                to = t.line;
                                break;
                            }
                        } else if t.is_punct(';') && depth == 0 {
                            to = t.line;
                            break;
                        }
                        to = t.line;
                    }
                    for l in from..=to {
                        self.test_lines.insert(l);
                    }
                }
                ci = end + 1;
                continue;
            }
            ci += 1;
        }
    }

    /// Records every `fn` body as a code-token span.
    fn scan_fn_spans(&mut self) {
        for ci in 0..self.n_code() {
            if !self.ct(ci).is_ident("fn") {
                continue;
            }
            // Find the body's opening brace; a `;` first means a
            // bodyless declaration (trait method, extern).
            let mut open = None;
            let mut depth_angle = 0i32;
            for bj in ci + 1..self.n_code() {
                let t = self.ct(bj);
                // `->` return types may contain braces only inside
                // angle-bracketed generics in this codebase; a plain
                // scan to the first top-level `{` is sufficient.
                if t.is_punct('<') {
                    depth_angle += 1;
                } else if t.is_punct('>') {
                    depth_angle -= 1;
                } else if t.is_punct('{') && depth_angle <= 0 {
                    open = Some(bj);
                    break;
                } else if t.is_punct(';') && depth_angle <= 0 {
                    break;
                }
            }
            let Some(open) = open else { continue };
            let mut depth = 0usize;
            for bj in open..self.n_code() {
                let t = self.ct(bj);
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        self.fn_spans.push((open, bj));
                        break;
                    }
                }
            }
        }
    }

    /// The intra-file type approximation: `ident : f64`,
    /// `F64 ( ident )` enum-variant bindings, `fn name (..) -> f64`,
    /// and `ident : HashMap/HashSet` / `ident = HashMap::…` bindings.
    fn collect_types(&mut self) {
        for ci in 0..self.n_code() {
            if self.ct(ci).kind != TokKind::Ident {
                continue;
            }
            let text = self.ct(ci).text.clone();
            // `name : f64` / `name : & f64` (param, field, let-type).
            if text == "f64" && ci >= 2 {
                let mut j = ci - 1;
                while j > 0 && (self.ct(j).is_punct('&') || self.ct(j).is_ident("mut")) {
                    j -= 1;
                }
                if self.ct(j).is_punct(':') && j > 0 && self.ct(j - 1).kind == TokKind::Ident {
                    let name = self.ct(j - 1).text.clone();
                    self.f64_idents.insert(name);
                }
            }
            // `F64 ( name )` — a float-carrying enum variant binding.
            if text == "F64"
                && ci + 3 < self.n_code()
                && self.ct(ci + 1).is_punct('(')
                && self.ct(ci + 2).kind == TokKind::Ident
                && self.ct(ci + 3).is_punct(')')
            {
                let name = self.ct(ci + 2).text.clone();
                self.f64_idents.insert(name);
            }
            // `fn name ( … ) -> f64`.
            if text == "fn" && ci + 1 < self.n_code() {
                let name = self.ct(ci + 1).text.clone();
                // Find the parameter list's closing paren, then `-> f64`.
                if let Some(open) = (ci + 2..self.n_code()).find(|&j| self.ct(j).is_punct('(')) {
                    let mut depth = 0usize;
                    for j in open..self.n_code() {
                        if self.ct(j).is_punct('(') {
                            depth += 1;
                        } else if self.ct(j).is_punct(')') {
                            depth -= 1;
                            if depth == 0 {
                                if j + 3 < self.n_code()
                                    && self.ct(j + 1).is_punct('-')
                                    && self.ct(j + 2).is_punct('>')
                                    && self.ct(j + 3).is_ident("f64")
                                {
                                    self.f64_fns.insert(name);
                                }
                                break;
                            }
                        }
                    }
                }
            }
            // Hash collections: `name : HashMap/HashSet` or
            // `name = HashMap :: new/with_capacity/from/default ( … )`.
            if text == "HashMap" || text == "HashSet" {
                if ci >= 2 && self.ct(ci - 1).is_punct(':') {
                    // Skip over `std :: collections ::` path prefixes:
                    // the `:` directly left of HashMap may be a path
                    // separator, not a type ascription.
                    if !(ci >= 2 && self.ct(ci - 2).is_punct(':')) {
                        if self.ct(ci - 2).kind == TokKind::Ident {
                            self.hash_idents.insert(self.ct(ci - 2).text.clone());
                        }
                    } else {
                        // `… std :: collections :: HashMap` — walk left
                        // past the path to the `name :` that started it.
                        let mut j = ci - 1;
                        while j >= 2
                            && self.ct(j).is_punct(':')
                            && self.ct(j - 1).is_punct(':')
                            && self.ct(j - 2).kind == TokKind::Ident
                        {
                            j -= 3;
                        }
                        if j >= 1
                            && self.ct(j).is_punct(':')
                            && self.ct(j - 1).kind == TokKind::Ident
                        {
                            self.hash_idents.insert(self.ct(j - 1).text.clone());
                        }
                    }
                }
                // `name = [path ::] HashMap :: ctor`.
                let mut j = ci;
                // Walk left over a `std :: collections ::` prefix.
                while j >= 3
                    && self.ct(j - 1).is_punct(':')
                    && self.ct(j - 2).is_punct(':')
                    && self.ct(j - 3).kind == TokKind::Ident
                {
                    j -= 3;
                }
                if j >= 2 && self.ct(j - 1).is_punct('=') && self.ct(j - 2).kind == TokKind::Ident {
                    self.hash_idents.insert(self.ct(j - 2).text.clone());
                }
            }
        }
    }
}

/// Parses `L00x[, L00y]) reason…` (the part after `allow(`).
fn parse_allow(body: &str) -> Result<(Vec<String>, String), String> {
    let Some(close) = body.find(')') else {
        return Err("allow(...) is missing its closing parenthesis".into());
    };
    let mut codes = Vec::new();
    for code in body[..close].split(',') {
        let code = code.trim();
        let ok = code.len() == 4
            && code.starts_with('L')
            && code[1..].bytes().all(|b| b.is_ascii_digit());
        if !ok {
            return Err(format!("`{code}` is not a lint code (expected L0xx)"));
        }
        codes.push(code.to_string());
    }
    let reason = body[close + 1..].trim().to_string();
    if reason.is_empty() {
        return Err("a waiver requires a written reason after allow(...)".into());
    }
    Ok((codes, reason))
}

/// Parses `wire, decision)` / `none)` (the part after `discipline(`).
fn parse_disciplines(body: &str) -> Result<BTreeSet<Discipline>, String> {
    let Some(close) = body.find(')') else {
        return Err("discipline(...) is missing its closing parenthesis".into());
    };
    let mut set = BTreeSet::new();
    for word in body[..close].split(',') {
        match word.trim() {
            "wire" => {
                set.insert(Discipline::Wire);
            }
            "decision" => {
                set.insert(Discipline::Decision);
            }
            "none" => {}
            other => return Err(format!("unknown discipline `{other}`")),
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mods_and_test_fns() {
        let src = "fn prod() { x(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n\
                   #[test]\nfn unit() {\n    y();\n}\n";
        let ctx = FileContext::new(src, &[]);
        assert!(!ctx.is_test_line(1));
        for l in 2..=5 {
            assert!(ctx.is_test_line(l), "line {l} should be test");
        }
        for l in 6..=9 {
            assert!(ctx.is_test_line(l), "line {l} should be test");
        }
    }

    #[test]
    fn cfg_test_use_statement_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {}\n";
        let ctx = FileContext::new(src, &[]);
        assert!(ctx.is_test_line(2));
        assert!(!ctx.is_test_line(3));
    }

    #[test]
    fn waiver_targets_trailing_and_leading_lines() {
        let src = "a(); // ltc-lint: allow(L003) same line\n\
                   // ltc-lint: allow(L001,L006) next line\n\
                   b();\n";
        let ctx = FileContext::new(src, &[]);
        assert_eq!(ctx.waivers.len(), 2);
        assert_eq!(ctx.waivers[0].applies_to, 1);
        assert_eq!(ctx.waivers[0].codes, vec!["L003".to_string()]);
        assert_eq!(ctx.waivers[1].applies_to, 3);
        assert_eq!(ctx.waivers[1].codes.len(), 2);
        assert_eq!(ctx.waivers[1].reason, "next line");
    }

    #[test]
    fn malformed_directives_are_errors() {
        for bad in [
            "// ltc-lint: allow(L003)\nx();",      // missing reason
            "// ltc-lint: allow(E42) why\nx();",   // bad code
            "// ltc-lint: frobnicate\nx();",       // unknown verb
            "// ltc-lint: discipline(warp)\nx();", // unknown discipline
        ] {
            let ctx = FileContext::new(bad, &[]);
            assert_eq!(ctx.directive_errors.len(), 1, "{bad}");
        }
    }

    #[test]
    fn hot_path_covers_the_next_item_only() {
        let src = "// ltc-lint: hot-path\nfn hot(a: u32) {\n    body();\n}\n\nfn cold() {}\n";
        let ctx = FileContext::new(src, &[]);
        assert!(ctx.is_hot_line(2));
        assert!(ctx.is_hot_line(3));
        assert!(ctx.is_hot_line(4));
        assert!(!ctx.is_hot_line(6));
    }

    #[test]
    fn type_approximation_finds_floats_and_hashes() {
        let src = "struct S { x: f64 }\n\
                   fn acc(a: &f64, n: u32) -> f64 { *a }\n\
                   fn go() {\n\
                     let m: std::collections::HashMap<u32, u32> = Default::default();\n\
                     let s = HashSet::new();\n\
                     if let Value::F64(v) = val {}\n\
                   }\n";
        let ctx = FileContext::new(src, &[]);
        assert!(ctx.f64_idents.contains("x"));
        assert!(ctx.f64_idents.contains("a"));
        assert!(ctx.f64_idents.contains("v"));
        assert!(ctx.f64_fns.contains("acc"));
        assert!(ctx.hash_idents.contains("m"));
        assert!(ctx.hash_idents.contains("s"));
    }

    #[test]
    fn discipline_override_replaces_the_base_set() {
        let ctx = FileContext::new(
            "// ltc-lint: discipline(none)\nfn f() {}\n",
            &[Discipline::Wire],
        );
        assert!(ctx.disciplines.is_empty());
        let ctx = FileContext::new("// ltc-lint: discipline(wire, decision)\nfn f() {}\n", &[]);
        assert_eq!(ctx.disciplines.len(), 2);
    }

    #[test]
    fn enclosing_fn_finds_the_innermost_body() {
        let src = "fn outer() {\n  fn inner() { deep(); }\n  shallow();\n}\n";
        let ctx = FileContext::new(src, &[]);
        assert_eq!(ctx.fn_spans.len(), 2);
        let deep_ci = (0..ctx.n_code())
            .find(|&i| ctx.ct(i).is_ident("deep"))
            .unwrap();
        let (open, close) = ctx.enclosing_fn(deep_ci).unwrap();
        assert!(close - open < 8, "picked the inner span");
    }
}
