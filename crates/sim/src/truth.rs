//! Ground-truth labels and worker response sampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The true binary answer of every task (`+1` = YES, `−1` = NO, paper
/// Def. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    labels: Vec<i8>,
}

impl GroundTruth {
    /// Uniformly random labels, deterministic per seed.
    pub fn random(n_tasks: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            labels: (0..n_tasks)
                .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                .collect(),
        }
    }

    /// All tasks answer YES — handy for deterministic tests.
    pub fn all_yes(n_tasks: usize) -> Self {
        Self {
            labels: vec![1; n_tasks],
        }
    }

    /// Explicit labels.
    ///
    /// # Panics
    ///
    /// Panics if any label is not `+1` or `−1`.
    pub fn from_labels(labels: Vec<i8>) -> Self {
        assert!(
            labels.iter().all(|&l| l == 1 || l == -1),
            "labels must be +1 or -1"
        );
        Self { labels }
    }

    /// The label of a task.
    #[inline]
    pub fn label(&self, task: usize) -> i8 {
        self.labels[task]
    }

    /// Number of tasks covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the truth covers zero tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Samples a worker's answer to a task: the true label with probability
/// `acc`, the opposite otherwise.
#[inline]
pub fn sample_answer<R: Rng + ?Sized>(rng: &mut R, acc: f64, truth: i8) -> i8 {
    debug_assert!((0.0..=1.0).contains(&acc), "accuracy out of range: {acc}");
    if rng.gen::<f64>() < acc {
        truth
    } else {
        -truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_truth_is_deterministic() {
        assert_eq!(GroundTruth::random(50, 1), GroundTruth::random(50, 1));
    }

    #[test]
    fn random_truth_mixes_labels() {
        let t = GroundTruth::random(200, 3);
        let yes = (0..200).filter(|&i| t.label(i) == 1).count();
        assert!(yes > 50 && yes < 150, "suspicious label balance: {yes}");
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn from_labels_validates() {
        GroundTruth::from_labels(vec![1, 0, -1]);
    }

    #[test]
    fn sample_answer_frequency_matches_accuracy() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let correct = (0..n)
            .filter(|_| sample_answer(&mut rng, 0.8, 1) == 1)
            .count();
        let freq = correct as f64 / n as f64;
        assert!((freq - 0.8).abs() < 0.01, "empirical accuracy {freq}");
    }

    #[test]
    fn sample_answer_flips_label() {
        let mut rng = StdRng::seed_from_u64(10);
        // acc = 0 always flips.
        for truth in [1i8, -1] {
            assert_eq!(sample_answer(&mut rng, 0.0, truth), -truth);
            assert_eq!(sample_answer(&mut rng, 1.0, truth), truth);
        }
    }
}
