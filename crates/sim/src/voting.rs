//! Weighted majority voting (paper Def. 4).

/// Outcome of aggregating one task's worker answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vote {
    /// The aggregated label: `sign(Σ weight_w · ℓ_w)`. A zero sum (an
    /// exact tie, or no votes) yields `0` — callers should treat it as
    /// undecided (the error report counts it as an error).
    pub label: i8,
    /// The absolute weighted margin `|Σ weight_w · ℓ_w|`.
    pub margin: f64,
}

/// Aggregates `(accuracy, answer)` pairs with the paper's weights
/// `weight_{w,t} = 2·Acc(w,t) − 1`:
///
/// ```text
/// ℓ_t = sign( Σ_{w ∈ W_t} (2·Acc(w,t) − 1) · ℓ_{w,t} )
/// ```
///
/// Workers with `Acc < 0.5` get negative weights, i.e. their answers count
/// *against* their stated label — the eligibility policy in `ltc-core`
/// keeps such pairs out of arrangements, but the aggregation handles them
/// faithfully anyway.
pub fn weighted_majority<I>(votes: I) -> Vote
where
    I: IntoIterator<Item = (f64, i8)>,
{
    let mut sum = 0.0f64;
    for (acc, answer) in votes {
        debug_assert!(answer == 1 || answer == -1, "answers must be ±1");
        sum += (2.0 * acc - 1.0) * answer as f64;
    }
    Vote {
        label: if sum > 0.0 {
            1
        } else if sum < 0.0 {
            -1
        } else {
            0
        },
        margin: sum.abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_vote_wins() {
        let v = weighted_majority([(0.9, 1), (0.8, 1), (0.7, 1)]);
        assert_eq!(v.label, 1);
        assert!((v.margin - (0.8 + 0.6 + 0.4)).abs() < 1e-12);
    }

    #[test]
    fn high_accuracy_worker_outweighs_two_weak_ones() {
        // Weight 0.98 → 0.96 vs two × (0.6 → 0.2).
        let v = weighted_majority([(0.98, -1), (0.6, 1), (0.6, 1)]);
        assert_eq!(v.label, -1);
    }

    #[test]
    fn below_half_accuracy_counts_against() {
        // A 0.2-accurate worker answering YES is evidence for NO.
        let v = weighted_majority([(0.2, 1)]);
        assert_eq!(v.label, -1);
        assert!((v.margin - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_and_tied_votes_are_undecided() {
        assert_eq!(weighted_majority(std::iter::empty()).label, 0);
        let v = weighted_majority([(0.9, 1), (0.9, -1)]);
        assert_eq!(v.label, 0);
        assert_eq!(v.margin, 0.0);
    }

    #[test]
    fn half_accuracy_worker_is_ignored() {
        let v = weighted_majority([(0.5, -1), (0.7, 1)]);
        assert_eq!(v.label, 1);
        assert!((v.margin - 0.4).abs() < 1e-12);
    }
}
