//! Monte-Carlo error-rate reports over an arrangement.

use crate::{sample_answer, weighted_majority, GroundTruth};
use ltc_core::model::{Arrangement, Instance};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Empirical error rates of an arrangement under repeated answer sampling.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    trials: usize,
    /// Per-task count of trials whose aggregated label was wrong (or
    /// undecided).
    errors: Vec<usize>,
}

impl SimulationReport {
    /// Number of Monte-Carlo trials behind the report.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Empirical error rate of one task.
    pub fn task_error_rate(&self, task: usize) -> f64 {
        self.errors[task] as f64 / self.trials as f64
    }

    /// Error rates for all tasks.
    pub fn task_error_rates(&self) -> Vec<f64> {
        (0..self.errors.len())
            .map(|t| self.task_error_rate(t))
            .collect()
    }

    /// The worst per-task error rate — the quantity the paper's error-rate
    /// constraint bounds by `ε`.
    pub fn max_task_error_rate(&self) -> f64 {
        self.task_error_rates().into_iter().fold(0.0, f64::max)
    }

    /// Mean error rate across tasks.
    pub fn mean_task_error_rate(&self) -> f64 {
        let n = self.errors.len().max(1);
        self.task_error_rates().into_iter().sum::<f64>() / n as f64
    }
}

/// Simulates `trials` independent crowdsourcing rounds of the arrangement:
/// every assigned worker answers every one of their tasks (correct with
/// probability `Acc(w,t)` frozen at assignment time), answers are
/// aggregated by weighted majority voting, and disagreements with the
/// ground truth are counted. Undecided votes (no answers or an exact tie)
/// count as errors.
///
/// # Panics
///
/// Panics if `truth` does not cover the instance's tasks or `trials` is
/// zero.
pub fn simulate(
    instance: &Instance,
    arrangement: &Arrangement,
    truth: &GroundTruth,
    trials: usize,
    seed: u64,
) -> SimulationReport {
    assert_eq!(
        truth.len(),
        instance.n_tasks(),
        "ground truth must cover every task"
    );
    assert!(trials > 0, "at least one trial is required");
    let n_tasks = instance.n_tasks();
    let mut rng = StdRng::seed_from_u64(seed);

    // Group assignments per task once.
    let mut per_task: Vec<Vec<f64>> = vec![Vec::new(); n_tasks];
    for a in arrangement.assignments() {
        per_task[a.task.index()].push(a.acc);
    }

    let mut errors = vec![0usize; n_tasks];
    for _ in 0..trials {
        for (t, accs) in per_task.iter().enumerate() {
            let label = truth.label(t);
            let vote = weighted_majority(
                accs.iter()
                    .map(|&acc| (acc, sample_answer(&mut rng, acc, label))),
            );
            if vote.label != label {
                errors[t] += 1;
            }
        }
    }
    SimulationReport { trials, errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_core::model::{ProblemParams, Task, Worker};
    use ltc_core::online::{run_online, Laf};
    use ltc_spatial::Point;

    fn completed_instance() -> (Instance, Arrangement) {
        let params = ProblemParams::builder()
            .epsilon(0.2)
            .capacity(1)
            .build()
            .unwrap();
        let inst = Instance::new(
            vec![Task::new(Point::ORIGIN)],
            vec![Worker::new(Point::new(1.0, 0.0), 0.95); 10],
            params,
        )
        .unwrap();
        let outcome = run_online(&inst, &mut Laf::new());
        assert!(outcome.completed);
        (inst, outcome.arrangement)
    }

    #[test]
    fn completed_tasks_err_below_epsilon() {
        let (inst, arr) = completed_instance();
        let truth = GroundTruth::all_yes(1);
        let report = simulate(&inst, &arr, &truth, 5000, 1);
        // ε = 0.2; the Hoeffding bound is loose, so the empirical error is
        // far below it (a handful of 0.95-accurate workers almost never
        // lose a weighted vote).
        assert!(
            report.max_task_error_rate() < 0.2,
            "error rate {}",
            report.max_task_error_rate()
        );
    }

    #[test]
    fn unassigned_task_always_errs() {
        let params = ProblemParams::builder()
            .epsilon(0.2)
            .capacity(1)
            .build()
            .unwrap();
        let inst = Instance::new(
            vec![Task::new(Point::ORIGIN), Task::new(Point::new(2.0, 0.0))],
            vec![Worker::new(Point::new(1.0, 0.0), 0.95); 2],
            params,
        )
        .unwrap();
        // Empty arrangement: both tasks undecided in every trial.
        let report = simulate(&inst, &Arrangement::new(), &GroundTruth::all_yes(2), 50, 3);
        assert_eq!(report.task_error_rate(0), 1.0);
        assert_eq!(report.task_error_rate(1), 1.0);
        assert_eq!(report.mean_task_error_rate(), 1.0);
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        let (inst, arr) = completed_instance();
        let truth = GroundTruth::all_yes(1);
        let a = simulate(&inst, &arr, &truth, 500, 9);
        let b = simulate(&inst, &arr, &truth, 500, 9);
        assert_eq!(a.task_error_rates(), b.task_error_rates());
    }

    #[test]
    #[should_panic(expected = "ground truth must cover")]
    fn truth_size_mismatch_panics() {
        let (inst, arr) = completed_instance();
        simulate(&inst, &arr, &GroundTruth::all_yes(5), 10, 0);
    }

    /// Statistical validation of the Hoeffding machinery itself: a task
    /// whose accumulated Acc* just reaches δ errs below ε.
    #[test]
    fn hoeffding_bound_holds_at_threshold() {
        // Workers at accuracy 0.75: Acc* = 0.25; ε = 0.3 ⇒ δ ≈ 2.41 ⇒ 10
        // workers needed — S barely exceeds δ.
        let params = ProblemParams::builder()
            .epsilon(0.3)
            .capacity(1)
            .build()
            .unwrap();
        let inst = Instance::new(
            vec![Task::new(Point::ORIGIN)],
            vec![Worker::new(Point::new(1.0, 0.0), 0.75); 30],
            params,
        )
        .unwrap();
        let outcome = run_online(&inst, &mut Laf::new());
        assert!(outcome.completed);
        let report = simulate(
            &inst,
            &outcome.arrangement,
            &GroundTruth::all_yes(1),
            20_000,
            5,
        );
        assert!(
            report.max_task_error_rate() < 0.3,
            "Hoeffding bound violated: {}",
            report.max_task_error_rate()
        );
    }
}
