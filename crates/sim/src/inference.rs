//! Truth inference: recovering task labels from raw crowd answers.
//!
//! The paper's platform model (Def. 4) aggregates with weighted majority
//! voting using the *predicted* accuracies. Real platforms often do not
//! trust those priors and instead *infer* both the labels and the worker
//! accuracies from the answer matrix (the paper's Sec. VI-A cites this
//! line of work). This module implements the three standard binary
//! aggregators so the simulation can compare them:
//!
//! * [`infer_majority`] — unweighted majority voting,
//! * [`infer_weighted`] — the paper's Def. 4 with given accuracy priors,
//! * [`infer_em`] — one-coin Dawid–Skene expectation–maximization that
//!   jointly estimates per-worker accuracies and label posteriors.

use crate::{sample_answer, GroundTruth};
use ltc_core::model::{Arrangement, Instance};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A sparse matrix of crowd answers: one `±1` answer per committed
/// `(worker, task)` assignment.
#[derive(Debug, Clone, Default)]
pub struct AnswerSet {
    n_tasks: usize,
    n_workers: usize,
    /// `(task, worker, answer)` triples.
    answers: Vec<(u32, u32, i8)>,
}

impl AnswerSet {
    /// An empty answer set over the given dimensions.
    pub fn new(n_tasks: usize, n_workers: usize) -> Self {
        Self {
            n_tasks,
            n_workers,
            answers: Vec::new(),
        }
    }

    /// Records an answer.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or an answer other than `±1`.
    pub fn push(&mut self, task: u32, worker: u32, answer: i8) {
        assert!((task as usize) < self.n_tasks, "task id out of range");
        assert!((worker as usize) < self.n_workers, "worker id out of range");
        assert!(answer == 1 || answer == -1, "answers must be ±1");
        self.answers.push((task, worker, answer));
    }

    /// Number of recorded answers.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// Whether no answers were recorded.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// Number of tasks covered by the matrix.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Samples one full crowdsourcing round of an arrangement: every
    /// assigned worker answers each of their tasks, correct with
    /// probability `Acc(w,t)` (frozen at assignment time). Deterministic
    /// per seed.
    pub fn collect(
        instance: &Instance,
        arrangement: &Arrangement,
        truth: &GroundTruth,
        seed: u64,
    ) -> Self {
        assert_eq!(
            truth.len(),
            instance.n_tasks(),
            "truth must cover all tasks"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = Self::new(instance.n_tasks(), instance.n_workers());
        for a in arrangement.assignments() {
            let answer = sample_answer(&mut rng, a.acc, truth.label(a.task.index()));
            // Instances cap workers at u32::MAX, so the narrowing is safe
            // for any feasible arrangement over this instance.
            set.push(a.task.0, a.worker.0 as u32, answer);
        }
        set
    }
}

/// Unweighted majority voting. Returns one label per task: `+1`/`−1`, or
/// `0` for ties and unanswered tasks.
pub fn infer_majority(answers: &AnswerSet) -> Vec<i8> {
    let mut sums = vec![0i64; answers.n_tasks];
    for &(t, _, a) in &answers.answers {
        sums[t as usize] += a as i64;
    }
    sums.into_iter().map(|s| s.signum() as i8).collect()
}

/// Weighted majority voting with per-worker accuracy priors (weights
/// `2·p_w − 1`, the paper's Def. 4 at the worker granularity).
///
/// # Panics
///
/// Panics if `worker_accuracy` does not cover every worker.
pub fn infer_weighted(answers: &AnswerSet, worker_accuracy: &[f64]) -> Vec<i8> {
    assert!(
        worker_accuracy.len() >= answers.n_workers,
        "need an accuracy prior per worker"
    );
    let mut sums = vec![0.0f64; answers.n_tasks];
    for &(t, w, a) in &answers.answers {
        sums[t as usize] += (2.0 * worker_accuracy[w as usize] - 1.0) * a as f64;
    }
    sums.into_iter()
        .map(|s| {
            if s > 0.0 {
                1
            } else if s < 0.0 {
                -1
            } else {
                0
            }
        })
        .collect()
}

/// Configuration of the EM aggregator.
#[derive(Debug, Clone, Copy)]
pub struct EmConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop once no worker-accuracy estimate moves by more than this.
    pub tolerance: f64,
    /// Initial accuracy estimate for every worker.
    pub initial_accuracy: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            max_iters: 50,
            tolerance: 1e-6,
            initial_accuracy: 0.7,
        }
    }
}

/// Result of [`infer_em`].
#[derive(Debug, Clone)]
pub struct EmResult {
    /// Inferred labels (`0` = undecided / unanswered).
    pub labels: Vec<i8>,
    /// Posterior `P(y_t = +1)` per task (0.5 when unanswered).
    pub posteriors: Vec<f64>,
    /// Estimated per-worker accuracies.
    pub worker_accuracy: Vec<f64>,
    /// EM iterations performed.
    pub iterations: usize,
}

/// One-coin Dawid–Skene EM: alternates between label posteriors given the
/// current worker accuracies (E-step, uniform label prior) and maximum-
/// likelihood accuracy estimates given the posteriors (M-step). Estimates
/// are clamped to `[0.05, 0.95]` to keep the likelihood bounded.
pub fn infer_em(answers: &AnswerSet, config: EmConfig) -> EmResult {
    let nt = answers.n_tasks;
    let nw = answers.n_workers;
    let mut acc = vec![config.initial_accuracy.clamp(0.05, 0.95); nw];
    let mut posteriors = vec![0.5f64; nt];

    // Per-task answer lists, built once.
    let mut per_task: Vec<Vec<(u32, i8)>> = vec![Vec::new(); nt];
    for &(t, w, a) in &answers.answers {
        per_task[t as usize].push((w, a));
    }
    // Per-worker answer counts for the M-step denominator.
    let mut per_worker_n = vec![0usize; nw];
    for &(_, w, _) in &answers.answers {
        per_worker_n[w as usize] += 1;
    }

    let mut iterations = 0;
    for _ in 0..config.max_iters {
        iterations += 1;
        // E-step: log-odds of y_t = +1.
        for (t, votes) in per_task.iter().enumerate() {
            if votes.is_empty() {
                posteriors[t] = 0.5;
                continue;
            }
            let mut log_odds = 0.0f64;
            for &(w, a) in votes {
                let p = acc[w as usize];
                let lr = (p / (1.0 - p)).ln();
                log_odds += lr * a as f64;
            }
            posteriors[t] = 1.0 / (1.0 + (-log_odds).exp());
        }
        // M-step: expected fraction of correct answers per worker.
        let mut correct = vec![0.0f64; nw];
        for &(t, w, a) in &answers.answers {
            let q = posteriors[t as usize];
            correct[w as usize] += if a == 1 { q } else { 1.0 - q };
        }
        let mut max_delta = 0.0f64;
        for w in 0..nw {
            if per_worker_n[w] == 0 {
                continue;
            }
            let new = (correct[w] / per_worker_n[w] as f64).clamp(0.05, 0.95);
            max_delta = max_delta.max((new - acc[w]).abs());
            acc[w] = new;
        }
        if max_delta < config.tolerance {
            break;
        }
    }

    let labels = posteriors
        .iter()
        .enumerate()
        .map(|(t, &q)| {
            if per_task[t].is_empty() {
                0
            } else if q > 0.5 {
                1
            } else if q < 0.5 {
                -1
            } else {
                0
            }
        })
        .collect();
    EmResult {
        labels,
        posteriors,
        worker_accuracy: acc,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Builds an answer set with known truth: `n_good` workers at 0.95
    /// accuracy and `n_bad` at 0.55, every worker answering every task.
    fn synthetic(
        n_tasks: usize,
        n_good: usize,
        n_bad: usize,
        seed: u64,
    ) -> (AnswerSet, GroundTruth, Vec<f64>) {
        let truth = GroundTruth::random(n_tasks, seed);
        let n_workers = n_good + n_bad;
        let accs: Vec<f64> = (0..n_workers)
            .map(|w| if w < n_good { 0.95 } else { 0.55 })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD5);
        let mut set = AnswerSet::new(n_tasks, n_workers);
        for t in 0..n_tasks {
            #[allow(clippy::needless_range_loop)]
            for w in 0..n_workers {
                let a = if rng.gen::<f64>() < accs[w] {
                    truth.label(t)
                } else {
                    -truth.label(t)
                };
                set.push(t as u32, w as u32, a);
            }
        }
        (set, truth, accs)
    }

    fn error_rate(labels: &[i8], truth: &GroundTruth) -> f64 {
        let wrong = labels
            .iter()
            .enumerate()
            .filter(|(t, &l)| l != truth.label(*t))
            .count();
        wrong as f64 / labels.len() as f64
    }

    #[test]
    fn majority_on_unanimous_answers() {
        let mut set = AnswerSet::new(2, 3);
        for w in 0..3 {
            set.push(0, w, 1);
            set.push(1, w, -1);
        }
        assert_eq!(infer_majority(&set), vec![1, -1]);
    }

    #[test]
    fn majority_tie_is_undecided() {
        let mut set = AnswerSet::new(1, 2);
        set.push(0, 0, 1);
        set.push(0, 1, -1);
        assert_eq!(infer_majority(&set), vec![0]);
    }

    #[test]
    fn unanswered_tasks_are_undecided_everywhere() {
        let set = AnswerSet::new(3, 2);
        assert_eq!(infer_majority(&set), vec![0, 0, 0]);
        assert_eq!(infer_weighted(&set, &[0.9, 0.9]), vec![0, 0, 0]);
        let em = infer_em(&set, EmConfig::default());
        assert_eq!(em.labels, vec![0, 0, 0]);
        assert!(em.posteriors.iter().all(|&q| (q - 0.5).abs() < 1e-12));
    }

    #[test]
    fn weighted_respects_priors() {
        // One strong worker against two weak ones.
        let mut set = AnswerSet::new(1, 3);
        set.push(0, 0, -1);
        set.push(0, 1, 1);
        set.push(0, 2, 1);
        assert_eq!(infer_weighted(&set, &[0.98, 0.6, 0.6]), vec![-1]);
        assert_eq!(infer_majority(&set), vec![1]);
    }

    #[test]
    fn em_beats_plain_majority_with_heterogeneous_workers() {
        // 3 good vs 9 bad workers: plain majority is dominated by the bad
        // crowd; EM learns who to trust.
        let mut majority_err = 0.0;
        let mut em_err = 0.0;
        let trials = 10;
        for seed in 0..trials {
            let (set, truth, _) = synthetic(60, 3, 9, seed);
            majority_err += error_rate(&infer_majority(&set), &truth);
            em_err += error_rate(&infer_em(&set, EmConfig::default()).labels, &truth);
        }
        majority_err /= trials as f64;
        em_err /= trials as f64;
        assert!(
            em_err < majority_err,
            "EM ({em_err:.3}) should beat majority ({majority_err:.3})"
        );
        assert!(em_err < 0.08, "EM error too high: {em_err:.3}");
    }

    #[test]
    fn em_recovers_worker_accuracies() {
        let (set, _, accs) = synthetic(200, 4, 4, 3);
        let em = infer_em(&set, EmConfig::default());
        for (w, (&est, &real)) in em.worker_accuracy.iter().zip(accs.iter()).enumerate() {
            // Label-flip symmetry can invert everything; with a majority
            // of informative workers it settles on the right polarity.
            assert!(
                (est - real).abs() < 0.12,
                "worker {w}: estimated {est:.2} vs true {real:.2}"
            );
        }
    }

    #[test]
    fn em_converges_and_reports_iterations() {
        let (set, _, _) = synthetic(50, 5, 2, 9);
        let em = infer_em(
            &set,
            EmConfig {
                max_iters: 100,
                ..EmConfig::default()
            },
        );
        assert!(em.iterations < 100, "EM failed to converge early");
    }

    #[test]
    fn collect_matches_arrangement_size() {
        use ltc_core::model::{ProblemParams, Task, Worker};
        use ltc_core::online::{run_online, Laf};
        use ltc_spatial::Point;
        let params = ProblemParams::builder()
            .epsilon(0.2)
            .capacity(2)
            .build()
            .unwrap();
        let inst = Instance::new(
            vec![Task::new(Point::ORIGIN), Task::new(Point::new(3.0, 0.0))],
            vec![Worker::new(Point::new(1.0, 0.0), 0.9); 20],
            params,
        )
        .unwrap();
        let outcome = run_online(&inst, &mut Laf::new());
        let truth = GroundTruth::all_yes(2);
        let set = AnswerSet::collect(&inst, &outcome.arrangement, &truth, 5);
        assert_eq!(set.len(), outcome.arrangement.len());
        // With 0.9-accurate workers the inferred labels match the truth.
        let labels = infer_em(&set, EmConfig::default()).labels;
        assert_eq!(labels, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "answers must be ±1")]
    fn push_validates_answer() {
        AnswerSet::new(1, 1).push(0, 0, 0);
    }
}
