//! End-to-end crowdsourcing answer simulation for LTC (paper Def. 4).
//!
//! The LTC algorithms guarantee task quality *indirectly*: they accumulate
//! `Acc*` until the Hoeffding bound says weighted majority voting errs
//! with probability below `ε`. This crate closes the loop empirically:
//!
//! 1. give every task a ground-truth binary label ([`GroundTruth`]),
//! 2. sample each assigned worker's answer — correct with probability
//!    `Acc(w,t)` ([`sample_answer`]),
//! 3. aggregate with the paper's weighted majority voting, weights
//!    `2·Acc(w,t) − 1` ([`weighted_majority`]),
//! 4. repeat over many trials and report per-task empirical error rates
//!    ([`simulate`]).
//!
//! # Example
//!
//! ```
//! use ltc_core::online::{run_online, Aam};
//! use ltc_core::toy::toy_instance;
//! use ltc_sim::{simulate, GroundTruth};
//!
//! let instance = toy_instance(0.2);
//! let outcome = run_online(&instance, &mut Aam::new());
//! let truth = GroundTruth::random(instance.n_tasks(), 42);
//! let report = simulate(&instance, &outcome.arrangement, &truth, 2000, 7);
//! // ε = 0.2: every completed task errs well below the tolerance.
//! assert!(report.max_task_error_rate() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inference;
mod report;
mod truth;
mod voting;

pub use inference::{infer_em, infer_majority, infer_weighted, AnswerSet, EmConfig, EmResult};
pub use report::{simulate, SimulationReport};
pub use truth::{sample_answer, GroundTruth};
pub use voting::{weighted_majority, Vote};
