//! Allocation-regression gates for the streaming hot path.
//!
//! `ltc-bench` installs the [`CountingAllocator`](ltc_bench::alloc) as
//! the global allocator, so these integration tests can assert *exact*
//! allocation-event counts via the thread-local counter. Two gates:
//!
//! 1. **Zero-alloc steady state** — after a warmup prefix (scratch
//!    buffers reach their watermarks) and with the arrangement log
//!    pre-reserved, `AssignmentEngine::push_worker` performs **no heap
//!    allocation at all**. This is the tentpole invariant of the
//!    hot-path optimization pass; any future change that re-introduces
//!    per-worker allocation (a stray `Vec`, `format!`, boxed candidate
//!    list, `BTreeMap` aggregate...) fails here, deterministically,
//!    with the event count in the message.
//! 2. **Rebucket buffer reuse** — `GridIndex::rebucket` retains its
//!    gather/directory/slab buffers, so repeated re-layouts at a
//!    steady geometry allocate nothing, and even a growth step costs a
//!    bounded handful of events instead of a fresh O(cells + entries)
//!    rebuild.
//!
//! Counts are allocation *events*, not timing — these tests are exact
//! and noise-free, and safe to run in CI.

use ltc_bench::alloc;
use ltc_core::engine::AssignmentEngine;
use ltc_core::online::Laf;
use ltc_spatial::{BoundingBox, GridIndex, Point};
use ltc_workload::SyntheticConfig;

/// The evicting engine's serve path allocates nothing per worker once
/// warmed up and with the arrangement log reserved.
#[test]
fn push_worker_is_allocation_free_after_warmup() {
    let instance = SyntheticConfig::default().scaled_down(8).generate();
    let mut engine = AssignmentEngine::from_instance(&instance);
    engine.reserve_assignments(instance.n_workers() * instance.params().capacity as usize);
    let mut algo = Laf::new();

    let workers = instance.workers();
    // Warmup prefix: every scratch buffer (candidate list, per-cell
    // query cursors, assignment batch) reaches its watermark. Kept
    // short because the stream completes tasks as it runs — the steady
    // window must open well before `all_completed` stops the loop.
    let warmup = 128;
    for worker in &workers[..warmup] {
        engine.push_worker(worker, &mut algo);
    }

    let before = alloc::thread_alloc_count();
    let mut steady = 0u64;
    for worker in &workers[warmup..] {
        if engine.all_completed() {
            break;
        }
        engine.push_worker(worker, &mut algo);
        steady += 1;
    }
    let events = alloc::thread_alloc_count() - before;
    assert!(steady > 100, "stream too short to exercise a steady state");
    assert_eq!(
        events, 0,
        "push_worker allocated {events} time(s) across {steady} steady-state workers \
         — the hot path must stay allocation-free"
    );
}

fn populated_grid(bounds: BoundingBox) -> GridIndex<u32> {
    let mut index = GridIndex::with_bounds(5.0, bounds);
    // Deterministic spread with collisions: many cells, uneven buckets.
    for i in 0..4_000u32 {
        let x = f64::from(i % 97) + f64::from(i % 7) * 0.1;
        let y = f64::from(i % 89) + f64::from(i % 5) * 0.1;
        index.insert(i, Point::new(x, y));
    }
    index
}

/// Re-laying the grid out at a steady geometry reuses every retained
/// buffer — zero allocation events — and even a growth step costs only
/// a bounded handful (the directory/slab grow once), far below a fresh
/// per-entry rebuild.
#[test]
fn rebucket_reuses_retained_buffers() {
    let bounds = BoundingBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));

    // Cost of building the same population from scratch, for contrast.
    let before = alloc::thread_alloc_count();
    let mut index = populated_grid(bounds);
    let cold_build = alloc::thread_alloc_count() - before;

    // First rebucket gathers into the spare slab for the first time.
    index.rebucket(5.0, bounds);

    // Steady-state re-layouts at unchanged geometry: fully buffer-reused.
    let before = alloc::thread_alloc_count();
    for _ in 0..8 {
        index.rebucket(5.0, bounds);
    }
    let steady = alloc::thread_alloc_count() - before;
    assert_eq!(
        steady, 0,
        "steady-geometry rebucket allocated {steady} time(s) across 8 re-layouts \
         — the gather/directory/slab buffers must be reused"
    );

    // A growth step (2x extent: 4x the cells) grows only the three
    // directory vectors (starts/lens/caps) — a bounded handful of
    // events, independent of the entry count, and below the cold
    // rebuild of the same population (observed: 3 vs 15).
    let grown = BoundingBox::new(Point::new(0.0, 0.0), Point::new(200.0, 200.0));
    let before = alloc::thread_alloc_count();
    index.rebucket(5.0, grown);
    let growth = alloc::thread_alloc_count() - before;
    assert!(
        growth <= 4 && growth < cold_build,
        "growth rebucket allocated {growth} time(s); a cold rebuild costs {cold_build} \
         — growth must reuse the entry buffers and only extend the directory"
    );

    // And the grown geometry is itself steady afterwards.
    let before = alloc::thread_alloc_count();
    for _ in 0..8 {
        index.rebucket(5.0, grown);
    }
    let regrown_steady = alloc::thread_alloc_count() - before;
    assert_eq!(
        regrown_steady, 0,
        "post-growth rebucket allocated {regrown_steady} time(s) at steady geometry"
    );
}
