//! Ablation benchmarks for the design choices called out in DESIGN.md §6:
//!
//! * **MCF-LTC batch size** — the Theorem-2 lower bound `m` vs halved and
//!   doubled batches (runtime side; the latency side lives in the
//!   `experiments` binary's output and EXPERIMENTS.md),
//! * **AAM switching rule** — the hybrid vs pure-LGF vs pure-LRF,
//! * **eligibility policy** — nearby-only (paper-faithful) vs the
//!   unrestricted degenerate variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltc_bench::bench_scale;
use ltc_core::model::Eligibility;
use ltc_core::offline::McfLtc;
use ltc_core::online::{run_online, Aam, AamStrategy, Laf};
use ltc_workload::SyntheticConfig;

fn bench_batch_scale(c: &mut Criterion) {
    let instance = SyntheticConfig::default()
        .scaled_down(bench_scale())
        .generate();
    let mut group = c.benchmark_group("ablation_batch_scale");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scale in [0.5f64, 1.0, 1.5, 2.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scale:.1}m")),
            &instance,
            |b, inst| b.iter(|| McfLtc::with_batch_scale(scale).run(inst)),
        );
    }
    group.finish();
}

fn bench_aam_strategy(c: &mut Criterion) {
    let instance = SyntheticConfig::default()
        .scaled_down(bench_scale())
        .generate();
    let mut group = c.benchmark_group("ablation_aam_strategy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for strategy in [
        AamStrategy::Hybrid,
        AamStrategy::AlwaysLgf,
        AamStrategy::AlwaysLrf,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &instance,
            |b, inst| b.iter(|| run_online(inst, &mut Aam::with_strategy(strategy))),
        );
    }
    group.finish();
}

fn bench_eligibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eligibility");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, eligibility) in [
        ("within-range", Eligibility::WithinRange),
        ("unrestricted", Eligibility::Unrestricted),
    ] {
        let instance = SyntheticConfig {
            eligibility,
            ..SyntheticConfig::default()
        }
        .scaled_down(bench_scale())
        .generate();
        group.bench_with_input(BenchmarkId::new("LAF", name), &instance, |b, inst| {
            b.iter(|| run_online(inst, &mut Laf::new()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_scale,
    bench_aam_strategy,
    bench_eligibility
);
criterion_main!(benches);
