//! Fig. 4 (a,e,i) — runtime of all five algorithms while varying the
//! tolerable error rate `ε` over the paper's grid {0.06, …, 0.22}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltc_bench::{bench_scale, ALL_ALGOS};
use ltc_workload::SyntheticConfig;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig4_epsilon");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for epsilon in [0.06f64, 0.10, 0.14, 0.18, 0.22] {
        let instance = SyntheticConfig {
            epsilon,
            ..SyntheticConfig::default()
        }
        .scaled_down(scale)
        .generate();
        for algo in ALL_ALGOS {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{epsilon:.2}")),
                &instance,
                |b, inst| b.iter(|| algo.run(inst, 1)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
