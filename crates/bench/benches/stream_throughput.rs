//! Streaming throughput: sustained workers/sec of the evicting
//! [`AssignmentEngine`] versus a no-eviction baseline replicating the
//! pre-engine semantics (static grid over *all* tasks, completed tasks
//! filtered out of every query result).
//!
//! Both paths run the same LAF policy over the same synthetic stream and
//! produce identical arrangements; the measured difference is purely the
//! eligibility hot path. The eviction win grows as tasks complete: the
//! engine's radius queries shrink with the remaining work while the
//! baseline keeps scanning (and re-sorting) the full neighborhood.
//!
//! Run with `cargo bench -p ltc-bench --bench stream_throughput`; scale
//! the stream with `LTC_BENCH_SCALE` (smaller = bigger instance, default
//! 8) like the other benches.

use ltc_core::engine::{AssignmentEngine, Candidate};
use ltc_core::model::{Instance, TaskId, WorkerId};
use ltc_core::online::{Laf, OnlineAlgorithm};
use ltc_spatial::GridIndex;
use ltc_workload::SyntheticConfig;
use std::time::Instant;

/// Per-worker driver replicating the pre-engine hot path: one static
/// grid built over the full task set, per-query completed-task
/// filtering, and the same assign/commit semantics as the engine.
struct NoEvictionBaseline {
    engine: AssignmentEngine,
    static_index: GridIndex<u32>,
}

impl NoEvictionBaseline {
    fn new(instance: &Instance) -> Self {
        let engine = AssignmentEngine::from_instance(instance);
        let static_index = GridIndex::build(
            instance.params().d_max,
            instance
                .tasks()
                .iter()
                .enumerate()
                .map(|(i, t)| (i as u32, t.loc)),
        );
        Self {
            engine,
            static_index,
        }
    }

    fn push_worker(
        &mut self,
        w: WorkerId,
        worker: &ltc_core::model::Worker,
        algo: &mut Laf,
        candidates: &mut Vec<Candidate>,
        picks: &mut Vec<TaskId>,
    ) {
        candidates.clear();
        candidates.extend(
            self.static_index
                .within(worker.loc, self.engine.params().d_max)
                .filter(|&t| !self.engine.is_completed(TaskId(t)))
                .map(|t| self.engine.candidate(w, worker, TaskId(t)))
                .filter(|c| c.acc >= 0.5),
        );
        candidates.sort_unstable_by_key(|c| c.task);
        if candidates.is_empty() {
            return;
        }
        picks.clear();
        algo.assign(&self.engine, w, candidates, picks);
        picks.truncate(self.engine.params().capacity as usize);
        picks.sort_unstable();
        picks.dedup();
        for &t in picks.iter() {
            self.engine.commit(w, worker, t);
        }
    }
}

struct Measurement {
    workers: u64,
    assignments: usize,
    completed: bool,
    secs: f64,
}

fn run_engine(instance: &Instance) -> Measurement {
    let mut engine = AssignmentEngine::from_instance(instance);
    let mut algo = Laf::new();
    let start = Instant::now();
    let mut workers = 0u64;
    for worker in instance.workers() {
        if engine.all_completed() {
            break;
        }
        engine.push_worker(worker, &mut algo);
        workers += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    Measurement {
        workers,
        assignments: engine.arrangement().len(),
        completed: engine.all_completed(),
        secs,
    }
}

fn run_baseline(instance: &Instance) -> Measurement {
    let mut baseline = NoEvictionBaseline::new(instance);
    let mut algo = Laf::new();
    let mut candidates = Vec::new();
    let mut picks = Vec::new();
    let start = Instant::now();
    let mut workers = 0u64;
    for (w, worker) in instance.workers().iter().enumerate() {
        if baseline.engine.all_completed() {
            break;
        }
        baseline.push_worker(
            WorkerId(w as u64),
            worker,
            &mut algo,
            &mut candidates,
            &mut picks,
        );
        workers += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    Measurement {
        workers,
        assignments: baseline.engine.arrangement().len(),
        completed: baseline.engine.all_completed(),
        secs,
    }
}

fn report(label: &str, m: &Measurement) {
    println!(
        "  {label:<28} {:>9} workers in {:>8.3}s  =  {:>10.0} workers/sec  \
         ({} assignments, completed: {})",
        m.workers,
        m.secs,
        m.workers as f64 / m.secs,
        m.assignments,
        m.completed
    );
}

fn main() {
    let scale = ltc_bench::bench_scale().min(64);
    println!("stream_throughput (LTC_BENCH_SCALE = {scale}; LAF policy)");
    for (name, cfg) in [
        (
            "table-iv/default",
            SyntheticConfig::default().scaled_down(scale),
        ),
        (
            "table-iv/eps0.06 (long tail)",
            SyntheticConfig {
                epsilon: 0.06,
                ..SyntheticConfig::default().scaled_down(scale)
            },
        ),
        (
            "scalability/40k-workers",
            SyntheticConfig {
                n_tasks: 10_000 / scale.max(1),
                n_workers: 40_000,
                ..SyntheticConfig::default()
            },
        ),
    ] {
        let instance = cfg.generate();
        println!(
            "{name}: |T| = {}, |W| = {}, K = {}, eps = {}",
            instance.n_tasks(),
            instance.n_workers(),
            instance.params().capacity,
            instance.params().epsilon
        );
        let baseline = run_baseline(&instance);
        let engine = run_engine(&instance);
        assert_eq!(
            baseline.assignments, engine.assignments,
            "eviction changed the arrangement"
        );
        report("static grid + filter", &baseline);
        report("evicting engine", &engine);
        println!(
            "  speedup: {:.2}x",
            baseline.secs / engine.secs.max(f64::EPSILON)
        );
    }
}
