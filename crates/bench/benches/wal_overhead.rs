//! Write-ahead-log overhead: sustained workers/sec of a session driven
//! through `ltc_durable::DurableHandle` (log-then-apply) versus the
//! same bare [`ServiceHandle`], over the paper's Table-IV synthetic
//! stream (LAF policy, so both paths commit identical assignments and
//! the gap is pure durability cost: one NDJSON append per submission
//! plus the [`SyncPolicy`]'s fsync schedule).
//!
//! Run with `cargo bench -p ltc-bench --bench wal_overhead`; scale the
//! stream with `LTC_BENCH_SCALE` (smaller = bigger instance, default
//! 8). CI runs this with a large scale as a smoke test. Pass
//! `-- --out PATH` to also write the measurements as a schema-stable
//! `ltc-bench/v1` JSON report (the committed `BENCH_wal.json`).

use ltc_bench::{BenchReport, Row};
use ltc_core::model::Instance;
use ltc_core::service::{Algorithm, ServiceBuilder, ServiceHandle, Session};
use ltc_durable::{DurableHandle, DurableOptions, SyncPolicy};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Instant;

struct Measurement {
    workers: u64,
    assignments: u64,
    secs: f64,
}

fn start_handle(instance: &Instance, shards: usize) -> ServiceHandle {
    ServiceBuilder::from_instance(instance)
        .algorithm(Algorithm::Laf)
        .shards(NonZeroUsize::new(shards).unwrap())
        .start()
        .expect("sigmoid synthetic instances always start")
}

fn run_unlogged(instance: &Instance, shards: usize) -> Measurement {
    let mut handle = start_handle(instance, shards);
    let start = Instant::now();
    let mut workers = 0u64;
    for worker in instance.workers() {
        if handle.all_completed() {
            break;
        }
        handle.submit_worker(worker).expect("runtime lost");
        workers += 1;
    }
    handle.drain().expect("drain failed");
    let secs = start.elapsed().as_secs_f64();
    Measurement {
        workers,
        assignments: handle.n_assignments(),
        secs,
    }
}

fn wal_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltc-bench-wal-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The same stream, with every submission appended to the log first.
/// `stop_at` mirrors the unlogged run's completion window so the
/// decision streams are comparable.
fn run_logged(
    instance: &Instance,
    shards: usize,
    options: DurableOptions,
    label: &str,
    stop_at: u64,
) -> Measurement {
    let dir = wal_dir(label);
    let mut handle = DurableHandle::create(start_handle(instance, shards), &dir, options)
        .expect("fresh WAL directory initializes");
    let start = Instant::now();
    let mut workers = 0u64;
    for worker in instance.workers() {
        if workers >= stop_at {
            break;
        }
        handle.submit_worker(worker).expect("submit");
        workers += 1;
    }
    handle.drain().expect("drain");
    let secs = start.elapsed().as_secs_f64();
    let assignments = handle.metrics().expect("metrics").n_assignments;
    handle.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
    Measurement {
        workers,
        assignments,
        secs,
    }
}

/// Best-of-`n` wall clock: the minimum is the least-disturbed run,
/// which matters on shared/noisy machines where a single measurement
/// can swing by double-digit percentages.
fn best_of(n: usize, mut run: impl FnMut() -> Measurement) -> Measurement {
    (0..n)
        .map(|_| run())
        .min_by(|a, b| a.secs.total_cmp(&b.secs))
        .expect("n > 0")
}

fn report(label: &str, m: &Measurement) {
    println!(
        "  {label:<26} {:>9} workers in {:>8.3}s  =  {:>10.0} workers/sec  \
         ({} assignments)",
        m.workers,
        m.secs,
        m.workers as f64 / m.secs.max(f64::EPSILON),
        m.assignments,
    );
}

fn json_row(name: &str, shards: usize, m: &Measurement, base: &Measurement) -> Row {
    Row::new(name)
        .field("shards", shards)
        .field("workers", m.workers)
        .field("secs", m.secs)
        .field(
            "workers_per_sec",
            m.workers as f64 / m.secs.max(f64::EPSILON),
        )
        .field("assignments", m.assignments)
        .field(
            "overhead_vs_unlogged",
            m.secs / base.secs.max(f64::EPSILON) - 1.0,
        )
}

fn main() {
    let out_path = ltc_bench::json::out_path_from_args();
    let scale = ltc_bench::bench_scale().min(64);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "wal_overhead (LTC_BENCH_SCALE = {scale}; LAF policy) cores={cores} \
         — logged numbers append one WAL record per submission"
    );
    let cfg = ltc_workload::SyntheticConfig::default().scaled_down(scale);
    let instance = cfg.generate();
    println!(
        "table-iv/default: |T| = {}, |W| = {}, K = {}, eps = {}",
        instance.n_tasks(),
        instance.n_workers(),
        instance.params().capacity,
        instance.params().epsilon
    );

    // checkpoint_every: 0 isolates pure append/fsync cost; the final
    // configuration adds the default checkpoint cadence back in.
    let policies: [(&str, DurableOptions); 4] = [
        (
            "logged/os",
            DurableOptions {
                sync: SyncPolicy::Os,
                checkpoint_every: 0,
                ..DurableOptions::default()
            },
        ),
        (
            "logged/every64",
            DurableOptions {
                sync: SyncPolicy::Every(64),
                checkpoint_every: 0,
                ..DurableOptions::default()
            },
        ),
        (
            "logged/always",
            DurableOptions {
                sync: SyncPolicy::Always,
                checkpoint_every: 0,
                ..DurableOptions::default()
            },
        ),
        (
            "logged/os+checkpoints",
            DurableOptions {
                sync: SyncPolicy::Os,
                ..DurableOptions::default()
            },
        ),
    ];

    let repeats = if scale <= 2 { 7 } else { 1 };
    let mut json = BenchReport::new("wal", scale);
    for shards in [1usize, 4] {
        let base = best_of(repeats, || run_unlogged(&instance, shards));
        report(&format!("unlogged x{shards}"), &base);
        json.push_row(json_row(
            &format!("unlogged/x{shards}"),
            shards,
            &base,
            &base,
        ));
        for (name, options) in &policies {
            let logged = best_of(repeats, || {
                run_logged(&instance, shards, *options, name, base.workers)
            });
            report(&format!("{name} x{shards}"), &logged);
            assert_eq!(
                logged.assignments, base.assignments,
                "logged LAF diverged from unlogged at {shards} shard(s) under {name}"
            );
            println!(
                "    overhead: {:+.1}% wall clock ({:.2} µs/record)",
                100.0 * (logged.secs / base.secs.max(f64::EPSILON) - 1.0),
                1e6 * (logged.secs - base.secs).max(0.0) / logged.workers.max(1) as f64
            );
            json.push_row(json_row(
                &format!("{name}/x{shards}"),
                shards,
                &logged,
                &base,
            ));
        }
    }
    if let Some(path) = out_path {
        json.write_to(&path)
            .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
        println!("  wrote {}", path.display());
    }
}
