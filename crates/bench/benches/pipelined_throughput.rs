//! Pipelined-session streaming throughput: sustained workers/sec of the
//! persistent-thread [`ServiceHandle`] runtime versus the synchronous
//! [`LtcService`] facade and the raw engine, over the paper's Table-IV
//! synthetic stream (LAF policy, so every front-end commits identical
//! assignments and the comparison is pure dispatch overhead/parallelism).
//!
//! Three drivers over the same instance:
//!
//! * **engine** — `AssignmentEngine::push_worker` in a loop (the no-facade
//!   baseline);
//! * **facade waves** — `LtcService::check_in_batch`, which spawns one
//!   scoped thread per shard per wave (the PR-2 design);
//! * **pipelined** — `ServiceHandle::submit_worker` against persistent
//!   shard threads with bounded mailboxes: no per-wave spawning, shards
//!   overlap continuously, and back-pressure comes from the mailbox
//!   bound instead of wave blocking.
//!
//! Wall-clock scaling is bounded by the machine's core count, which is
//! printed alongside the results (a 1-core host interleaves shard
//! threads, so the parallel speedup target needs multi-core hardware).
//!
//! Run with `cargo bench -p ltc-bench --bench pipelined_throughput`;
//! scale the stream with `LTC_BENCH_SCALE` (smaller = bigger instance,
//! default 8). CI runs this with a large scale as a smoke test.

use ltc_core::engine::AssignmentEngine;
use ltc_core::model::Instance;
use ltc_core::online::Laf;
use ltc_core::service::{Algorithm, ServiceBuilder};
use std::num::NonZeroUsize;
use std::time::Instant;

struct Measurement {
    workers: u64,
    assignments: u64,
    completed: bool,
    secs: f64,
}

fn run_engine(instance: &Instance) -> Measurement {
    let mut engine = AssignmentEngine::from_instance(instance);
    let mut algo = Laf::new();
    let start = Instant::now();
    let mut workers = 0u64;
    for worker in instance.workers() {
        if engine.all_completed() {
            break;
        }
        engine.push_worker(worker, &mut algo);
        workers += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    Measurement {
        workers,
        assignments: engine.arrangement().len() as u64,
        completed: engine.all_completed(),
        secs,
    }
}

fn builder(instance: &Instance, shards: usize, mailbox: usize) -> ServiceBuilder {
    ServiceBuilder::from_instance(instance)
        .algorithm(Algorithm::Laf)
        .shards(NonZeroUsize::new(shards).unwrap())
        .batch_capacity(mailbox)
}

fn run_facade_waves(instance: &Instance, shards: usize, batch: usize) -> Measurement {
    let mut service = builder(instance, shards, batch)
        .build()
        .expect("sigmoid synthetic instances always build");
    let start = Instant::now();
    let mut workers = 0u64;
    for chunk in instance.workers().chunks(batch) {
        if service.all_completed() {
            break;
        }
        service.check_in_batch(chunk);
        workers += chunk.len() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    Measurement {
        workers,
        assignments: service.n_assignments(),
        completed: service.all_completed(),
        secs,
    }
}

fn run_pipelined(instance: &Instance, shards: usize, mailbox: usize) -> Measurement {
    let mut handle = builder(instance, shards, mailbox)
        .start()
        .expect("sigmoid synthetic instances always start");
    let start = Instant::now();
    let mut workers = 0u64;
    for worker in instance.workers() {
        // `all_completed` is the released-event view; checking it every
        // submission costs one atomic load and stops the stream within
        // the in-flight window of the actual completion.
        if handle.all_completed() {
            break;
        }
        handle.submit_worker(worker).expect("runtime lost");
        workers += 1;
    }
    handle.drain().expect("drain failed");
    let secs = start.elapsed().as_secs_f64();
    let m = Measurement {
        workers,
        assignments: handle.n_assignments(),
        completed: handle.all_completed(),
        secs,
    };
    drop(handle);
    m
}

fn report(label: &str, m: &Measurement, baseline_secs: f64, show_ratio: bool) {
    // On a 1-core host shard threads interleave, so a "speedup" ratio
    // against the engine would be scheduling noise presented as signal —
    // suppress it (the header's machine-readable `cores=` field lets
    // tooling tell the difference).
    let ratio = if show_ratio {
        format!(
            ", speedup vs engine: {:.2}x",
            baseline_secs / m.secs.max(f64::EPSILON)
        )
    } else {
        String::from(", speedup vs engine: n/a (1 core)")
    };
    println!(
        "  {label:<24} {:>9} workers in {:>8.3}s  =  {:>10.0} workers/sec  \
         ({} assignments, completed: {}{ratio})",
        m.workers,
        m.secs,
        m.workers as f64 / m.secs.max(f64::EPSILON),
        m.assignments,
        m.completed,
    );
}

fn main() {
    let scale = ltc_bench::bench_scale().min(64);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "pipelined_throughput (LTC_BENCH_SCALE = {scale}; LAF policy) cores={cores} \
         — multi-shard wall-clock scaling is bounded by cores"
    );
    let cfg = ltc_workload::SyntheticConfig::default().scaled_down(scale);
    let instance = cfg.generate();
    println!(
        "table-iv/default: |T| = {}, |W| = {}, K = {}, eps = {}",
        instance.n_tasks(),
        instance.n_workers(),
        instance.params().capacity,
        instance.params().epsilon
    );
    let batch = (instance.n_workers() / 16).clamp(64, 4096);

    let engine = run_engine(&instance);
    report("engine (no facade)", &engine, engine.secs, cores > 1);
    let mut best = (String::from("engine"), engine.secs);
    for shards in [1usize, 2, 4, 8] {
        let waves = run_facade_waves(&instance, shards, batch);
        report(
            &format!("facade waves x{shards}"),
            &waves,
            engine.secs,
            cores > 1,
        );
        let piped = run_pipelined(&instance, shards, batch);
        // Pipelined dispatch preserves strict arrival order, so sharded
        // LAF equals the single engine exactly (facade *waves* may
        // reorder boundary workers within a wave and drift slightly).
        assert_eq!(
            piped.assignments, engine.assignments,
            "pipelined LAF diverged from the engine at {shards} shard(s)"
        );
        report(
            &format!("pipelined x{shards}"),
            &piped,
            engine.secs,
            cores > 1,
        );
        for (label, secs) in [
            (format!("facade x{shards}"), waves.secs),
            (format!("pipelined x{shards}"), piped.secs),
        ] {
            if secs < best.1 {
                best = (label, secs);
            }
        }
    }
    if cores > 1 {
        println!(
            "  best: {} at {:.2}x the single-engine throughput",
            best.0,
            engine.secs / best.1.max(f64::EPSILON)
        );
    } else {
        println!(
            "  note: 1-core environment — shard threads interleave, so speedup ratios \
             are suppressed; the parallel speedup target (>= 1.5x at 4+ shards) needs a \
             multi-core host"
        );
    }
}
