//! Skewed/drifting-workload throughput: the adaptive spatial layer
//! (index growth + stripe rebalancing) versus a static service, on the
//! hotspot-drift stream ([`ltc_workload::HotspotDriftConfig`]) — a
//! hotspot of posts and co-located check-ins that drifts across and far
//! beyond the declared region, then settles.
//!
//! Three drivers over the same event stream (LAF policy, so every
//! configuration commits identical assignments and the comparison is
//! pure index/striping overhead):
//!
//! * **1 shard, static** — the differential baseline;
//! * **4 shards, static** — PR-2/3 behavior: the index clamps every
//!   out-of-region task into border cells and the border stripe absorbs
//!   the whole hotspot;
//! * **4 shards, adaptive** — `grow_index_after` rebuilds the index
//!   over the live tasks once clamp telemetry crosses the threshold,
//!   and `rebalance_factor` re-splits the stripes by live-task mass.
//!
//! The run **asserts** the adaptivity acceptance criteria (identical
//! assignments, steady-state clamping, post-rebalance load skew ≤ 1.5x),
//! so the CI smoke run keeps them honest. Throughput uses the
//! synchronous facade: decisions are scheduling-independent and the
//! adaptive win is algorithmic (smaller border buckets), not parallel —
//! the header's machine-readable `cores=` field reports the host, and
//! cross-configuration ratios are printed only on multi-core hosts
//! (1-core interleaving would make them misleading).
//!
//! Run with `cargo bench -p ltc-bench --bench skewed_throughput`; scale
//! the stream with `LTC_BENCH_SCALE` (smaller = longer stream). Pass
//! `-- --out PATH` to also write the measurements as a schema-stable
//! `ltc-bench/v1` JSON report (the committed `BENCH_skew.json`).

use ltc_bench::{BenchReport, Row};
use ltc_core::service::{Algorithm, LtcService, ServiceBuilder};
use ltc_workload::{DriftEvent, HotspotDriftConfig};
use std::num::NonZeroUsize;
use std::time::Instant;

struct Measurement {
    events: u64,
    assignments: u64,
    secs: f64,
    max_clamped: u64,
    late_clamped: u64,
}

fn run(
    cfg: &HotspotDriftConfig,
    events: &[DriftEvent],
    shards: usize,
    adaptive: bool,
) -> Measurement {
    let mut builder = ServiceBuilder::new(cfg.params(), cfg.declared)
        .algorithm(Algorithm::Laf)
        .shards(NonZeroUsize::new(shards).unwrap());
    if adaptive {
        builder = builder.grow_index_after(256).rebalance_factor(1.4);
    }
    let mut service = builder.build().expect("hotspot configs always build");
    let probe_at = 5 * events.len() / 6;
    let mut max_clamped = 0u64;
    let mut probe_clamped = 0u64;
    let start = Instant::now();
    for (i, event) in events.iter().enumerate() {
        match event {
            DriftEvent::Post(t) => {
                service.post_task(*t).expect("drift tasks are valid");
            }
            DriftEvent::CheckIn(w) => {
                service.check_in(w);
            }
        }
        if i == probe_at {
            probe_clamped = service.metrics().clamped_insertions;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let clamped = service.metrics().clamped_insertions;
    max_clamped = max_clamped.max(clamped).max(probe_clamped);
    Measurement {
        events: events.len() as u64,
        assignments: service.n_assignments(),
        secs,
        max_clamped,
        late_clamped: clamped.saturating_sub(probe_clamped),
    }
}

fn report(label: &str, m: &Measurement, baseline_secs: f64, show_ratio: bool) {
    let ratio = if show_ratio {
        format!(
            ", speedup vs 1-shard static: {:.2}x",
            baseline_secs / m.secs.max(f64::EPSILON)
        )
    } else {
        String::new()
    };
    println!(
        "  {label:<22} {:>8} events in {:>7.3}s  =  {:>9.0} events/sec  \
         ({} assignments, clamped max {} / late {}{ratio})",
        m.events,
        m.secs,
        m.events as f64 / m.secs.max(f64::EPSILON),
        m.assignments,
        m.max_clamped,
        m.late_clamped,
    );
}

fn json_row(name: &str, shards: usize, adaptive: bool, m: &Measurement) -> Row {
    Row::new(name)
        .field("shards", shards)
        .field("adaptive", adaptive)
        .field("events", m.events)
        .field("secs", m.secs)
        .field("events_per_sec", m.events as f64 / m.secs.max(f64::EPSILON))
        .field("assignments", m.assignments)
        .field("clamped_max", m.max_clamped)
        .field("clamped_late", m.late_clamped)
}

fn main() {
    let out_path = ltc_bench::json::out_path_from_args();
    let scale = ltc_bench::bench_scale().min(64);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("skewed_throughput (LTC_BENCH_SCALE = {scale}; LAF policy) cores={cores}");
    let cfg = HotspotDriftConfig {
        n_posts: (64_000 / scale).max(400),
        checkins_per_post: 8,
        ..HotspotDriftConfig::default()
    };
    let events = cfg.events();
    println!(
        "hotspot-drift: {} posts x {} check-ins, declared region {:.0}x{:.0}, \
         drift to x = {:.0} ({}% of stream)",
        cfg.n_posts,
        cfg.checkins_per_post,
        cfg.declared.width(),
        cfg.declared.height(),
        cfg.end.x,
        (cfg.drift_fraction * 100.0) as u32,
    );

    let single = run(&cfg, &events, 1, false);
    report("1 shard, static", &single, single.secs, false);
    let static4 = run(&cfg, &events, 4, false);
    report("4 shards, static", &static4, single.secs, cores > 1);
    let adaptive4 = run(&cfg, &events, 4, true);
    report("4 shards, adaptive", &adaptive4, single.secs, cores > 1);

    // Acceptance: adaptivity never changes a decision...
    assert_eq!(
        adaptive4.assignments, single.assignments,
        "adaptive 4-shard LAF diverged from 1-shard"
    );
    assert_eq!(
        static4.assignments, single.assignments,
        "static 4-shard LAF diverged from 1-shard"
    );
    // ...eliminates steady-state clamping (the static twin keeps
    // clamping every hotspot post after the drift settles)...
    assert!(
        adaptive4.late_clamped < 256,
        "adaptive clamping kept growing: +{} in the final sixth",
        adaptive4.late_clamped
    );
    assert!(
        static4.late_clamped > adaptive4.late_clamped,
        "the static service should keep clamping (static +{}, adaptive +{})",
        static4.late_clamped,
        adaptive4.late_clamped
    );
    // ...and leaves the per-shard live load within the 1.5x skew target.
    let mut check = ServiceBuilder::new(cfg.params(), cfg.declared)
        .algorithm(Algorithm::Laf)
        .shards(NonZeroUsize::new(4).unwrap())
        .build()
        .expect("hotspot configs always build");
    replay(&mut check, &events);
    let outcome = check
        .rebalance()
        .expect("rebalance planning cannot fail on live state")
        .expect("the drifted pool must need rebalancing");
    println!(
        "  rebalance: moved {} tasks, live loads {:?}, max/mean = {:.2}",
        outcome.moved_tasks,
        outcome.live_loads,
        outcome.max_mean_ratio()
    );
    assert!(
        outcome.max_mean_ratio() <= 1.5,
        "post-rebalance skew {:.2} exceeds the 1.5x target",
        outcome.max_mean_ratio()
    );
    if cores == 1 {
        println!(
            "  note: 1-core environment — cross-configuration wall-clock ratios are \
             suppressed; the adaptive win here is algorithmic (bounded border buckets), \
             re-run on a multi-core host for parallel-scaling numbers"
        );
    }
    println!("  ok: parity, steady-state clamping, and load-skew targets all hold");

    if let Some(path) = out_path {
        let mut json = BenchReport::new("skew", scale);
        json.push_row(json_row("static/x1", 1, false, &single));
        json.push_row(json_row("static/x4", 4, false, &static4));
        json.push_row(json_row("adaptive/x4", 4, true, &adaptive4));
        json.push_row(
            Row::new("rebalance/x4")
                .field("moved_tasks", outcome.moved_tasks)
                .field("max_mean_ratio", outcome.max_mean_ratio()),
        );
        json.write_to(&path)
            .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
        println!("  wrote {}", path.display());
    }
}

fn replay(service: &mut LtcService, events: &[DriftEvent]) {
    for event in events {
        match event {
            DriftEvent::Post(t) => {
                service.post_task(*t).expect("drift tasks are valid");
            }
            DriftEvent::CheckIn(w) => {
                service.check_in(w);
            }
        }
    }
}
