//! Sharded-service streaming throughput: sustained workers/sec of
//! [`LtcService`] at 1/2/4/8 shards versus driving a single
//! [`AssignmentEngine`] directly, over the paper's Table-IV synthetic
//! stream (LAF policy, so the single-shard service is bit-identical to
//! the engine; multi-shard batches may reorder boundary workers within a
//! wave, so their assignment totals can differ slightly).
//!
//! Multi-shard runs dispatch check-ins in batches
//! ([`LtcService::check_in_batch`]) with one scoped thread per shard;
//! wall-clock scaling therefore tracks the machine's core count, which
//! is printed alongside the results. Interior workers (the vast majority
//! when the stripe width is large against `d_max`) are served fully
//! shard-locally; stripe-straddling workers are merged serially.
//!
//! Run with `cargo bench -p ltc-bench --bench service_throughput`; scale
//! the stream with `LTC_BENCH_SCALE` (smaller = bigger instance, default
//! 8; 1 = the paper's cardinalities). CI runs this with a large scale as
//! a smoke test.

use ltc_core::engine::AssignmentEngine;
use ltc_core::model::Instance;
use ltc_core::online::Laf;
use ltc_core::service::{Algorithm, ServiceBuilder};
use std::num::NonZeroUsize;
use std::time::Instant;

struct Measurement {
    workers: u64,
    assignments: u64,
    completed: bool,
    secs: f64,
}

fn run_engine(instance: &Instance) -> Measurement {
    let mut engine = AssignmentEngine::from_instance(instance);
    let mut algo = Laf::new();
    let start = Instant::now();
    let mut workers = 0u64;
    for worker in instance.workers() {
        if engine.all_completed() {
            break;
        }
        engine.push_worker(worker, &mut algo);
        workers += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    Measurement {
        workers,
        assignments: engine.arrangement().len() as u64,
        completed: engine.all_completed(),
        secs,
    }
}

fn run_service(instance: &Instance, shards: usize) -> Measurement {
    // Dispatch waves sized so early completion overshoots by at most a
    // few percent of the stream while batches stay large enough to
    // amortize thread spawning.
    let batch = (instance.n_workers() / 16).clamp(64, 4096);
    let mut service = ServiceBuilder::from_instance(instance)
        .algorithm(Algorithm::Laf)
        .shards(NonZeroUsize::new(shards).unwrap())
        .batch_capacity(batch)
        .build()
        .expect("sigmoid synthetic instances always build");
    let start = Instant::now();
    let mut workers = 0u64;
    for chunk in instance.workers().chunks(batch) {
        if service.all_completed() {
            break;
        }
        service.check_in_batch(chunk);
        workers += chunk.len() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    Measurement {
        workers,
        assignments: service.n_assignments(),
        completed: service.all_completed(),
        secs,
    }
}

fn report(label: &str, m: &Measurement, baseline_secs: f64, show_ratio: bool) {
    // On a 1-core host shard threads interleave, so a "speedup" ratio
    // against the engine would be scheduling noise presented as signal —
    // suppress it (the header's machine-readable `cores=` field lets
    // tooling tell the difference).
    let ratio = if show_ratio {
        format!(
            ", speedup vs engine: {:.2}x",
            baseline_secs / m.secs.max(f64::EPSILON)
        )
    } else {
        String::from(", speedup vs engine: n/a (1 core)")
    };
    println!(
        "  {label:<24} {:>9} workers in {:>8.3}s  =  {:>10.0} workers/sec  \
         ({} assignments, completed: {}{ratio})",
        m.workers,
        m.secs,
        m.workers as f64 / m.secs.max(f64::EPSILON),
        m.assignments,
        m.completed,
    );
}

fn main() {
    let scale = ltc_bench::bench_scale().min(64);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "service_throughput (LTC_BENCH_SCALE = {scale}; LAF policy) cores={cores} \
         — multi-shard wall-clock scaling is bounded by cores"
    );
    let cfg = ltc_workload::SyntheticConfig::default().scaled_down(scale);
    let instance = cfg.generate();
    println!(
        "table-iv/default: |T| = {}, |W| = {}, K = {}, eps = {}",
        instance.n_tasks(),
        instance.n_workers(),
        instance.params().capacity,
        instance.params().epsilon
    );

    let engine = run_engine(&instance);
    report("engine (no facade)", &engine, engine.secs, cores > 1);
    let mut best = (1usize, f64::MAX);
    for shards in [1usize, 2, 4, 8] {
        let m = run_service(&instance, shards);
        if shards == 1 {
            assert_eq!(
                m.assignments, engine.assignments,
                "single-shard service diverged from the engine"
            );
        }
        if m.secs < best.1 {
            best = (shards, m.secs);
        }
        report(
            &format!("service x{shards} shards"),
            &m,
            engine.secs,
            cores > 1,
        );
    }
    if cores > 1 {
        println!(
            "  best: {} shard(s) at {:.2}x the single-engine throughput",
            best.0,
            engine.secs / best.1.max(f64::EPSILON)
        );
    } else {
        println!(
            "  note: 1-core environment — shard threads interleave, so speedup ratios \
             are suppressed; the parallel speedup target (>= 1.5x at 4+ shards) needs a \
             multi-core host"
        );
    }
}
