//! Wire-transport streaming throughput: sustained workers/sec of a
//! session driven through `LtcClient` → localhost TCP → `LtcServer`
//! versus driving the same [`ServiceHandle`] in process, over the
//! paper's Table-IV synthetic stream (LAF policy, so both paths commit
//! identical assignments and the gap is pure protocol cost:
//! frame encode/decode + one TCP round trip per submission).
//!
//! Run with `cargo bench -p ltc-bench --bench wire_throughput`; scale
//! the stream with `LTC_BENCH_SCALE` (smaller = bigger instance,
//! default 8). CI runs this with a large scale as a smoke test. Pass
//! `-- --out PATH` to also write the measurements as a schema-stable
//! `ltc-bench/v1` JSON report (the committed `BENCH_wire.json`).

use ltc_bench::{BenchReport, Row};
use ltc_core::model::Instance;
use ltc_core::service::{Algorithm, ServiceBuilder, ServiceError, ServiceHandle, Session};
use ltc_proto::{LtcClient, LtcServer, SessionConfig, SessionFactory, SessionTable};
use std::num::NonZeroUsize;
use std::time::Instant;

struct Measurement {
    workers: u64,
    assignments: u64,
    secs: f64,
}

fn start_handle(instance: &Instance, shards: usize) -> ServiceHandle {
    ServiceBuilder::from_instance(instance)
        .algorithm(Algorithm::Laf)
        .shards(NonZeroUsize::new(shards).unwrap())
        .start()
        .expect("sigmoid synthetic instances always start")
}

fn run_in_process(instance: &Instance, shards: usize) -> Measurement {
    let mut handle = start_handle(instance, shards);
    let start = Instant::now();
    let mut workers = 0u64;
    for worker in instance.workers() {
        if handle.all_completed() {
            break;
        }
        handle.submit_worker(worker).expect("runtime lost");
        workers += 1;
    }
    handle.drain().expect("drain failed");
    let secs = start.elapsed().as_secs_f64();
    Measurement {
        workers,
        assignments: handle.n_assignments(),
        secs,
    }
}

/// One request/response round trip per submission — the lockstep cost
/// an interactive client pays.
fn run_remote_lockstep(instance: &Instance, shards: usize, stop_at: u64) -> Measurement {
    let server = LtcServer::bind("127.0.0.1:0", start_handle(instance, shards))
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
    let mut client = LtcClient::connect(server.addr()).expect("connect");
    let start = Instant::now();
    let mut workers = 0u64;
    for worker in instance.workers() {
        if workers >= stop_at {
            break;
        }
        client.submit_worker(worker).expect("submit");
        workers += 1;
    }
    client.drain().expect("drain");
    let secs = start.elapsed().as_secs_f64();
    let metrics = client.metrics().expect("metrics");
    client.shutdown().expect("shutdown");
    server.wait().expect("server stops");
    Measurement {
        workers,
        assignments: metrics.n_assignments,
        secs,
    }
}

/// Windowed submission over `v2`: up to `window` submit frames in
/// flight before their acknowledgements arrive. The stream of applied
/// decisions is identical to lockstep (the server applies frames in
/// arrival order either way); what changes is how many TCP round trips
/// the client's wall clock absorbs.
fn run_remote_windowed(
    instance: &Instance,
    shards: usize,
    stop_at: u64,
    window: usize,
) -> Measurement {
    let server = LtcServer::bind("127.0.0.1:0", start_handle(instance, shards))
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
    let mut client = LtcClient::connect_v2(server.addr()).expect("connect v2");
    let granted = client.set_window(window).expect("negotiate window");
    assert_eq!(granted, window, "server narrowed the bench window");
    let start = Instant::now();
    let mut workers = 0u64;
    for worker in instance.workers() {
        if workers >= stop_at {
            break;
        }
        client.submit_worker_windowed(worker).expect("submit");
        workers += 1;
    }
    client.flush_window().expect("flush window");
    client.drain().expect("drain");
    let secs = start.elapsed().as_secs_f64();
    let metrics = client.metrics().expect("metrics");
    client.shutdown().expect("shutdown");
    server.wait().expect("server stops");
    Measurement {
        workers,
        assignments: metrics.n_assignments,
        secs,
    }
}

/// Per-verb cost of the `ltc-proto v2` session lifecycle against a
/// loopback multi-session server. `open` is the expensive verb — it
/// spawns a whole service (shard threads, engine loaded with the
/// template instance) behind a fresh name; `close` quiesces and
/// removes it. One open + close pair per cycle, each verb timed
/// separately; the untimed re-attach to the default session between
/// them keeps the connection bound to a live session throughout.
fn run_session_lifecycle(instance: &Instance, cycles: u64) -> (f64, f64) {
    let template = ServiceBuilder::from_instance(instance).algorithm(Algorithm::Laf);
    let factory: SessionFactory = {
        let template = template.clone();
        Box::new(move |config: &SessionConfig| {
            let mut builder = template.clone();
            if let Some(algo) = config.algorithm {
                builder = builder.algorithm(algo);
            }
            if let Some(shards) = config.shards {
                let shards = NonZeroUsize::new(shards)
                    .ok_or_else(|| ServiceError::Session("0 shards".into()))?;
                builder = builder.shards(shards);
            }
            if let Some(region) = config.region {
                builder = builder.region(region);
            }
            Ok(Box::new(builder.start()?))
        })
    };
    let table = SessionTable::with_factory(
        template.start().expect("default session starts"),
        factory,
        2,
        None,
    );
    let server = LtcServer::bind_table("127.0.0.1:0", table)
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
    let mut client = LtcClient::connect_v2(server.addr()).expect("connect v2");
    let config = SessionConfig::default();
    let (mut open_secs, mut close_secs) = (0.0, 0.0);
    for i in 0..cycles {
        let sid = format!("bench-{i}");
        let t = Instant::now();
        client.open_session(&sid, &config).expect("open");
        open_secs += t.elapsed().as_secs_f64();
        client.attach_session("default").expect("attach default");
        let t = Instant::now();
        client.close_session(&sid).expect("close");
        close_secs += t.elapsed().as_secs_f64();
    }
    client.shutdown().expect("shutdown");
    server.wait().expect("server stops");
    (open_secs, close_secs)
}

fn session_row(name: &str, cycles: u64, secs: f64) -> Row {
    Row::new(name)
        .field("cycles", cycles)
        .field("secs", secs)
        .field("us_per_op", 1e6 * secs / cycles.max(1) as f64)
}

fn report(label: &str, m: &Measurement) {
    println!(
        "  {label:<26} {:>9} workers in {:>8.3}s  =  {:>10.0} workers/sec  \
         ({} assignments)",
        m.workers,
        m.secs,
        m.workers as f64 / m.secs.max(f64::EPSILON),
        m.assignments,
    );
}

fn json_row(name: &str, shards: usize, m: &Measurement) -> Row {
    Row::new(name)
        .field("shards", shards)
        .field("workers", m.workers)
        .field("secs", m.secs)
        .field(
            "workers_per_sec",
            m.workers as f64 / m.secs.max(f64::EPSILON),
        )
        .field("assignments", m.assignments)
}

fn main() {
    let out_path = ltc_bench::json::out_path_from_args();
    let scale = ltc_bench::bench_scale().min(64);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "wire_throughput (LTC_BENCH_SCALE = {scale}; LAF policy) cores={cores} \
         — remote numbers include one localhost TCP round trip per submission"
    );
    let cfg = ltc_workload::SyntheticConfig::default().scaled_down(scale);
    let instance = cfg.generate();
    println!(
        "table-iv/default: |T| = {}, |W| = {}, K = {}, eps = {}",
        instance.n_tasks(),
        instance.n_workers(),
        instance.params().capacity,
        instance.params().epsilon
    );

    let mut json = BenchReport::new("wire", scale);
    for shards in [1usize, 4] {
        let local = run_in_process(&instance, shards);
        report(&format!("in-process x{shards}"), &local);
        // The in-process driver stops within its in-flight window of
        // completion; feed the remote run exactly as many workers so
        // the decision streams are comparable.
        let remote = run_remote_lockstep(&instance, shards, local.workers);
        report(&format!("remote lockstep x{shards}"), &remote);
        assert_eq!(
            remote.assignments, local.assignments,
            "remote LAF diverged from in-process at {shards} shard(s)"
        );
        println!(
            "  wire overhead x{shards}: {:.1}x the in-process wall clock \
             ({:.1} µs/submission round trip)",
            remote.secs / local.secs.max(f64::EPSILON),
            1e6 * remote.secs / remote.workers.max(1) as f64
        );
        json.push_row(json_row(&format!("in-process/x{shards}"), shards, &local));
        json.push_row(json_row(
            &format!("remote-lockstep/x{shards}"),
            shards,
            &remote,
        ));
    }
    // Windowed submission at 1 shard: the lockstep row above is the
    // W = 1 baseline's semantic twin (same round-trip cadence over the
    // v1 handshake); the wider windows show what the in-flight pipeline
    // buys. Identical assignment counts prove the stream of decisions
    // never changed — only the waiting did.
    {
        let shards = 1usize;
        let baseline = run_in_process(&instance, shards);
        let lockstep = run_remote_lockstep(&instance, shards, baseline.workers);
        for window in [1usize, 16, 256] {
            let windowed = run_remote_windowed(&instance, shards, baseline.workers, window);
            report(&format!("remote windowed w={window}"), &windowed);
            assert_eq!(
                windowed.assignments, baseline.assignments,
                "windowed LAF diverged from in-process at window {window}"
            );
            println!(
                "  window {window}: {:.2}x lockstep submission throughput",
                lockstep.secs / windowed.secs.max(f64::EPSILON)
            );
            json.push_row(
                json_row(&format!("remote-windowed/w{window}"), shards, &windowed)
                    .field("window", window as u64)
                    .field(
                        "speedup_vs_lockstep",
                        lockstep.secs / windowed.secs.max(f64::EPSILON),
                    ),
            );
        }
    }
    let cycles = 32;
    let (open_secs, close_secs) = run_session_lifecycle(&instance, cycles);
    println!(
        "  session lifecycle ({cycles} open+close cycles): \
         open {:.1} µs/op, close {:.1} µs/op",
        1e6 * open_secs / cycles as f64,
        1e6 * close_secs / cycles as f64,
    );
    json.push_row(session_row("session-open", cycles, open_secs));
    json.push_row(session_row("session-close", cycles, close_secs));
    if let Some(path) = out_path {
        json.write_to(&path)
            .unwrap_or_else(|e| panic!("writing {} failed: {e}", path.display()));
        println!("  wrote {}", path.display());
    }
}
