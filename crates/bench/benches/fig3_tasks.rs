//! Fig. 3 (a,e,i) — runtime of all five algorithms while varying `|T|`
//! over the paper's grid {1000, …, 5000} (down-scaled; see
//! `ltc_bench::bench_scale`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltc_bench::{bench_scale, ALL_ALGOS};
use ltc_workload::SyntheticConfig;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig3_tasks");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n_tasks in [1000usize, 2000, 3000, 4000, 5000] {
        let instance = SyntheticConfig {
            n_tasks,
            ..SyntheticConfig::default()
        }
        .scaled_down(scale)
        .generate();
        for algo in ALL_ALGOS {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), n_tasks),
                &instance,
                |b, inst| b.iter(|| algo.run(inst, 1)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
