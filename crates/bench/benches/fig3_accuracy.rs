//! Fig. 3 (c,g,k) and (d,h,l) — runtime of all five algorithms under the
//! Normal and Uniform historical-accuracy distributions of Table IV.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltc_bench::{bench_scale, ALL_ALGOS};
use ltc_workload::{AccuracyDistribution, SyntheticConfig};

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    for (dist_name, make) in [
        (
            "normal",
            (|m| AccuracyDistribution::normal(m)) as fn(f64) -> AccuracyDistribution,
        ),
        ("uniform", |m| AccuracyDistribution::uniform(m)),
    ] {
        let mut group = c.benchmark_group(format!("fig3_accuracy_{dist_name}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        for mean in [0.82f64, 0.86, 0.90] {
            let instance = SyntheticConfig {
                accuracy: make(mean),
                ..SyntheticConfig::default()
            }
            .scaled_down(scale)
            .generate();
            for algo in ALL_ALGOS {
                group.bench_with_input(
                    BenchmarkId::new(algo.name(), format!("{mean:.2}")),
                    &instance,
                    |b, inst| b.iter(|| algo.run(inst, 1)),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
