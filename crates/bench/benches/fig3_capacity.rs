//! Fig. 3 (b,f,j) — runtime of all five algorithms while varying the
//! worker capacity `K` over the paper's grid {4, …, 8}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltc_bench::{bench_scale, ALL_ALGOS};
use ltc_workload::SyntheticConfig;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig3_capacity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for capacity in [4u32, 5, 6, 7, 8] {
        let instance = SyntheticConfig {
            capacity,
            ..SyntheticConfig::default()
        }
        .scaled_down(scale)
        .generate();
        for algo in ALL_ALGOS {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), capacity),
                &instance,
                |b, inst| b.iter(|| algo.run(inst, 1)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
