//! Fig. 4 (b,f,j) — scalability: runtime while growing `|T|` with
//! `|W| = 400 000` (Table IV's scalability row, down-scaled).
//!
//! The paper's largest point (|T| = 100k) takes ~2 500 s for MCF-LTC on a
//! 40-core server; at the default 1/64 bench scale the shape (MCF-LTC ≫
//! online algorithms, near-linear growth for LAF/AAM) reproduces in
//! seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltc_bench::{bench_scale, ALL_ALGOS};
use ltc_workload::SyntheticConfig;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig4_scalability");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n_tasks in [10_000usize, 30_000, 50_000, 100_000] {
        let instance = SyntheticConfig::scalability(n_tasks)
            .scaled_down(scale)
            .generate();
        for algo in ALL_ALGOS {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), n_tasks),
                &instance,
                |b, inst| b.iter(|| algo.run(inst, 1)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
