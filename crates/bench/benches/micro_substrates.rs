//! Micro-benchmarks of the two substrates every LTC algorithm leans on:
//! the uniform grid index (one radius query per arriving worker) and the
//! min-cost-flow solver (one solve per MCF-LTC batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltc_mcmf::FlowNetwork;
use ltc_spatial::{GridIndex, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn grid_points(n: usize, seed: u64) -> Vec<(u32, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u32)
        .map(|i| {
            (
                i,
                Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
            )
        })
        .collect()
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_index");
    for n in [1_000usize, 10_000, 100_000] {
        let pts = grid_points(n, 7);
        group.bench_with_input(BenchmarkId::new("build", n), &pts, |b, pts| {
            b.iter(|| GridIndex::build(30.0, pts.iter().copied()))
        });
        let index = GridIndex::build(30.0, pts.iter().copied());
        let mut rng = StdRng::seed_from_u64(8);
        group.bench_with_input(BenchmarkId::new("query_r30", n), &index, |b, index| {
            b.iter(|| {
                let center = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                index.within(center, 30.0).count()
            })
        });
    }
    group.finish();
}

/// A bipartite worker→task assignment network shaped like an MCF-LTC
/// batch: `w` workers of capacity `k`, `t` tasks demanding 4 units, ~8
/// eligible tasks per worker.
fn assignment_network(
    w: usize,
    t: usize,
    k: i64,
    seed: u64,
) -> (FlowNetwork, ltc_mcmf::NodeId, ltc_mcmf::NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = FlowNetwork::with_capacity(w + t + 2, w * 9 + w + t);
    let st = net.add_node();
    let ed = net.add_node();
    let workers: Vec<_> = (0..w).map(|_| net.add_node()).collect();
    let tasks: Vec<_> = (0..t).map(|_| net.add_node()).collect();
    for &wn in &workers {
        net.add_edge(st, wn, k, 0.0);
        for _ in 0..8 {
            let tn = tasks[rng.gen_range(0..t)];
            net.add_edge(wn, tn, 1, rng.gen_range(0.0..0.3));
        }
    }
    for &tn in &tasks {
        net.add_edge(tn, ed, 4, 0.0);
    }
    (net, st, ed)
}

fn bench_mcmf(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcmf_sspa");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (w, t) in [(200usize, 50usize), (1000, 250), (4000, 1000)] {
        let (proto, st, ed) = assignment_network(w, t, 6, 3);
        group.bench_with_input(
            BenchmarkId::new("solve", format!("{w}w_{t}t")),
            &proto,
            |b, proto| {
                b.iter_batched(
                    || proto.clone(),
                    |mut net| net.min_cost_max_flow(st, ed),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grid, bench_mcmf);
criterion_main!(benches);
