//! Fig. 4 (c,g,k) and (d,h,l) — runtime on the New-York-like and
//! Tokyo-like check-in streams (Table V substitution) while varying `ε`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltc_bench::{bench_scale, ALL_ALGOS};
use ltc_workload::CheckinCityConfig;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    for (city, base) in [
        ("newyork", CheckinCityConfig::new_york_like()),
        ("tokyo", CheckinCityConfig::tokyo_like()),
    ] {
        let mut group = c.benchmark_group(format!("fig4_real_{city}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        for epsilon in [0.06f64, 0.14, 0.22] {
            let mut cfg = base.scaled_down(scale);
            cfg.epsilon = epsilon;
            let instance = cfg.generate();
            for algo in ALL_ALGOS {
                group.bench_with_input(
                    BenchmarkId::new(algo.name(), format!("{epsilon:.2}")),
                    &instance,
                    |b, inst| b.iter(|| algo.run(inst, 1)),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
