//! Uniform runner over the paper's five evaluated algorithms.

use crate::alloc;
use ltc_core::model::{Instance, RunOutcome};
use ltc_core::offline::{BaseOff, McfLtc};
use ltc_core::online::{run_online, Aam, Laf, RandomAssign};
use std::time::Instant;

/// The five algorithms of the paper's evaluation, in the legend order of
/// Figs. 3–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Offline baseline (fewest-nearby-workers greedy).
    BaseOff,
    /// Offline min-cost-flow approximation (Algorithm 1).
    McfLtc,
    /// Online random baseline.
    Random,
    /// Online Largest Acc* First (Algorithm 2).
    Laf,
    /// Online Average And Maximum (Algorithm 3).
    Aam,
}

/// All five algorithms in the paper's legend order.
pub const ALL_ALGOS: [Algo; 5] = [
    Algo::BaseOff,
    Algo::McfLtc,
    Algo::Random,
    Algo::Laf,
    Algo::Aam,
];

impl Algo {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algo::BaseOff => "Base-off",
            Algo::McfLtc => "MCF-LTC",
            Algo::Random => "Random",
            Algo::Laf => "LAF",
            Algo::Aam => "AAM",
        }
    }

    /// Runs the algorithm on an instance. `seed` only affects
    /// [`Algo::Random`].
    pub fn run(self, instance: &Instance, seed: u64) -> RunOutcome {
        match self {
            Algo::BaseOff => BaseOff::new().run(instance),
            Algo::McfLtc => McfLtc::new().run(instance),
            Algo::Random => run_online(instance, &mut RandomAssign::seeded(seed)),
            Algo::Laf => run_online(instance, &mut Laf::new()),
            Algo::Aam => run_online(instance, &mut Aam::new()),
        }
    }
}

/// One measured run: the paper's three metrics.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Max worker index (the latency); `None` when the stream was
    /// exhausted before completing all tasks.
    pub latency: Option<u64>,
    /// Wall-clock seconds of the algorithm run (excludes dataset
    /// generation).
    pub seconds: f64,
    /// Peak live heap bytes above the pre-run baseline.
    pub peak_bytes: u64,
}

/// Runs one algorithm under the stopwatch and the counting allocator.
pub fn measure(algo: Algo, instance: &Instance, seed: u64) -> Measurement {
    let baseline = alloc::reset_peak();
    let start = Instant::now(); // ltc-lint: allow(L006) bench stopwatch: measuring wall-clock is the point
    let outcome = algo.run(instance, seed);
    let seconds = start.elapsed().as_secs_f64();
    let peak_bytes = alloc::peak_bytes().saturating_sub(baseline);
    Measurement {
        latency: outcome.latency(),
        seconds,
        peak_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_workload::SyntheticConfig;

    #[test]
    fn all_algorithms_run_and_complete_a_small_instance() {
        let inst = SyntheticConfig::default().scaled_down(400).generate();
        for algo in ALL_ALGOS {
            let m = measure(algo, &inst, 1);
            assert!(m.latency.is_some(), "{} did not complete", algo.name());
            assert!(m.seconds >= 0.0);
            assert!(m.peak_bytes > 0, "{} recorded no allocations", algo.name());
        }
    }

    #[test]
    fn names_match_paper_legend() {
        let names: Vec<_> = ALL_ALGOS.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["Base-off", "MCF-LTC", "Random", "LAF", "AAM"]);
    }
}
