//! `ltc-bench hotpath` — the reproducible hot-path runner behind the
//! committed `BENCH_hotpath.json` trajectory artifact.
//!
//! Streams the paper's Table-IV synthetic workloads through the evicting
//! [`AssignmentEngine`] under the LAF policy and reports, per
//! configuration: sustained workers/sec, peak live heap bytes, and the
//! allocation-event counts of the steady state (allocations per
//! `push_worker` after a warmup prefix — the metric the zero-alloc
//! regression test in `crates/bench/tests/alloc_regression.rs` gates).
//!
//! ```text
//! cargo run --release -p ltc-bench --bin hotpath            # print + BENCH_hotpath.json
//! cargo run --release -p ltc-bench --bin hotpath -- --out X # custom path
//! cargo run --release -p ltc-bench --bin hotpath -- --smoke # tiny stream, schema check
//! ```
//!
//! `--smoke` shrinks the stream to CI scale, validates the emitted JSON
//! against the `ltc-bench/v1` schema, and exits non-zero on drift — it
//! never gates on the timing numbers themselves. Scale the full run with
//! `LTC_BENCH_SCALE` (1 = the paper's cardinalities) like every other
//! bench.

use ltc_bench::{alloc, json, BenchReport, Row};
use ltc_core::engine::AssignmentEngine;
use ltc_core::model::Instance;
use ltc_core::online::Laf;
use ltc_workload::SyntheticConfig;
use std::time::Instant;

/// Workers pushed before the steady-state allocation window opens (the
/// scratch buffers and bucket slabs reach their watermarks during this
/// prefix — a generous prefix, since a late worker in an unusually
/// dense neighborhood can still grow the candidate scratch once).
const WARMUP_WORKERS: usize = 1024;

struct HotpathRun {
    workers: u64,
    secs: f64,
    assignments: usize,
    completed: bool,
    peak_live_bytes: u64,
    steady_allocs: u64,
    steady_workers: u64,
}

fn run_hotpath(instance: &Instance) -> HotpathRun {
    // Peak-byte baseline set before engine construction, so the row
    // reports the engine's whole live footprint (index, state vectors,
    // arrangement log), not just stream-time growth.
    let baseline_peak = alloc::reset_peak();
    let mut engine = AssignmentEngine::from_instance(instance);
    // Pre-size the append-only arrangement log: with it reserved, the
    // steady-state serve path performs no heap allocation at all.
    engine.reserve_assignments(instance.n_workers() * instance.params().capacity as usize);
    let mut algo = Laf::new();
    let mut allocs_mark = alloc::thread_alloc_count();
    let start = Instant::now(); // ltc-lint: allow(L006) bench stopwatch: measuring wall-clock is the point
    let mut workers = 0u64;
    for (i, worker) in instance.workers().iter().enumerate() {
        if engine.all_completed() {
            break;
        }
        if i == WARMUP_WORKERS {
            allocs_mark = alloc::thread_alloc_count();
        }
        engine.push_worker(worker, &mut algo);
        workers += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    let steady_workers = workers.saturating_sub(WARMUP_WORKERS as u64);
    let steady_allocs = if steady_workers > 0 {
        alloc::thread_alloc_count() - allocs_mark
    } else {
        0
    };
    HotpathRun {
        workers,
        secs,
        assignments: engine.arrangement().len(),
        completed: engine.all_completed(),
        peak_live_bytes: alloc::peak_bytes().saturating_sub(baseline_peak),
        steady_allocs,
        steady_workers,
    }
}

fn row(name: &str, run: &HotpathRun) -> Row {
    Row::new(name)
        .field("workers", run.workers)
        .field("secs", run.secs)
        .field(
            "workers_per_sec",
            run.workers as f64 / run.secs.max(f64::EPSILON),
        )
        .field("assignments", run.assignments)
        .field("completed", run.completed)
        .field("peak_live_bytes", run.peak_live_bytes)
        .field("steady_allocs", run.steady_allocs)
        .field(
            "allocs_per_worker_steady",
            run.steady_allocs as f64 / run.steady_workers.max(1) as f64,
        )
}

fn configs(scale: usize, smoke: bool) -> Vec<(&'static str, SyntheticConfig)> {
    let mut out = vec![
        (
            "table-iv/default",
            SyntheticConfig::default().scaled_down(scale),
        ),
        (
            "table-iv/eps0.06",
            SyntheticConfig {
                epsilon: 0.06,
                ..SyntheticConfig::default().scaled_down(scale)
            },
        ),
    ];
    if !smoke {
        out.push((
            "scalability/40k-workers",
            SyntheticConfig {
                n_tasks: (10_000 / scale).max(1),
                n_workers: 40_000,
                ..SyntheticConfig::default()
            },
        ));
    }
    out
}

fn main() {
    let mut smoke = false;
    let mut out_path = std::path::PathBuf::from("BENCH_hotpath.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    })
                    .into();
            }
            // Criterion-style flags cargo bench forwards; harmless here.
            "--bench" => {}
            other => {
                eprintln!("unknown flag {other} (supported: --smoke, --out PATH)");
                std::process::exit(2);
            }
        }
    }

    let scale = if smoke {
        512
    } else {
        ltc_bench::bench_scale().min(64)
    };
    let mut report = BenchReport::new("hotpath", scale);
    println!("hotpath (LTC_BENCH_SCALE = {scale}; LAF policy; evicting engine)");
    for (name, cfg) in configs(scale, smoke) {
        let instance = cfg.generate();
        let run = run_hotpath(&instance);
        println!(
            "  {name:<26} {:>9} workers in {:>8.3}s  =  {:>10.0} workers/sec  \
             (peak {} KiB live, {:.3} allocs/worker steady, completed: {})",
            run.workers,
            run.secs,
            run.workers as f64 / run.secs.max(f64::EPSILON),
            run.peak_live_bytes / 1024,
            run.steady_allocs as f64 / run.steady_workers.max(1) as f64,
            run.completed,
        );
        report.push_row(row(name, &run));
    }

    report
        .write_to(&out_path)
        .unwrap_or_else(|e| panic!("writing {} failed: {e}", out_path.display()));
    let written = std::fs::read_to_string(&out_path)
        .unwrap_or_else(|e| panic!("reading back {} failed: {e}", out_path.display()));
    if let Err(e) = json::validate(&written) {
        eprintln!("schema validation failed for {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!(
        "  wrote {} ({} schema{})",
        out_path.display(),
        json::SCHEMA,
        if smoke { ", smoke-validated" } else { "" }
    );
}
