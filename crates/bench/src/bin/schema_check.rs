//! `schema_check` — validates report files against the `ltc-bench/v1`
//! schema from the command line, so CI jobs (and developers) can gate
//! any emitted artifact — bench trajectories, `ltc-lint --json` reports
//! — with the same checker the library test-suites use.
//!
//! ```text
//! cargo run -p ltc-bench --bin schema_check -- FILE [FILE...]
//! ```
//!
//! Exit codes: 0 when every file validates, 1 on the first schema or
//! parse error, 2 on usage or I/O problems.

use ltc_bench::json;
use std::process::ExitCode;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() || files.iter().any(|f| f.starts_with('-')) {
        eprintln!("usage: schema_check FILE [FILE...]");
        return ExitCode::from(2);
    }
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(what) = json::validate(&text) {
            eprintln!("{file}: not a valid ltc-bench/v1 report: {what}");
            return ExitCode::from(1);
        }
        println!("{file}: ok (ltc-bench/v1)");
    }
    ExitCode::SUCCESS
}
