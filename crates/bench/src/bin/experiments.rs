//! Regenerates every panel of the paper's evaluation (Figs. 3 and 4).
//!
//! ```text
//! cargo run --release -p ltc-bench --bin experiments -- [OPTIONS]
//!
//! OPTIONS:
//!   --quick          1/16-scale datasets (default; laptop-friendly)
//!   --full           paper-scale datasets (Table IV/V cardinalities;
//!                    the scalability panel takes hours, as in the paper)
//!   --scale N        custom down-scaling factor (1 = paper scale)
//!   --repeats R      average metrics over R seeded repetitions (default 3;
//!                    the paper averages 30 runs)
//!   --only LIST      comma-separated panel subset, e.g.
//!                    --only fig3-tasks,fig4-epsilon
//!   --list           print the panel names and exit
//! ```
//!
//! Each panel prints three tables — max worker index (latency), running
//! time, and peak memory — with one row per x-axis value and one column
//! per algorithm, mirroring the corresponding sub-figures.

use ltc_bench::{measure, Measurement, ALL_ALGOS};
use ltc_core::model::{Eligibility, Instance};
use ltc_core::offline::McfLtc;
use ltc_core::online::{run_online, Aam, AamStrategy, Laf};
use ltc_sim::{simulate, GroundTruth};
use ltc_workload::{AccuracyDistribution, CheckinCityConfig, SyntheticConfig};

#[derive(Clone, Copy)]
struct Options {
    scale: usize,
    repeats: u64,
}

const PANELS: &[(&str, &str)] = &[
    ("fig3-tasks", "Fig. 3 (a,e,i): varying |T| in 1000..5000"),
    ("fig3-capacity", "Fig. 3 (b,f,j): varying K in 4..8"),
    (
        "fig3-acc-normal",
        "Fig. 3 (c,g,k): accuracy ~ Normal(mu, 0.05)",
    ),
    (
        "fig3-acc-uniform",
        "Fig. 3 (d,h,l): accuracy ~ Uniform(mean +/- 0.08)",
    ),
    (
        "fig4-epsilon",
        "Fig. 4 (a,e,i): varying epsilon in 0.06..0.22",
    ),
    (
        "fig4-scalability",
        "Fig. 4 (b,f,j): |T| in 10k..100k, |W| = 400k",
    ),
    (
        "fig4-newyork",
        "Fig. 4 (c,g,k): New-York-like stream, varying epsilon",
    ),
    (
        "fig4-tokyo",
        "Fig. 4 (d,h,l): Tokyo-like stream, varying epsilon",
    ),
    (
        "abl-batch",
        "Ablation: MCF-LTC batch size 0.5m..2m (DESIGN.md 6)",
    ),
    ("abl-aam", "Ablation: AAM hybrid vs pure LGF / pure LRF"),
    (
        "abl-eligibility",
        "Ablation: nearby-only vs unrestricted eligibility",
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 16usize;
    let mut repeats = 3u64;
    let mut only: Option<Vec<String>> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = 16,
            "--full" => scale = 1,
            "--scale" => {
                scale = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"));
            }
            "--repeats" => {
                repeats = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--repeats needs a positive integer"));
            }
            "--only" => {
                let list = iter
                    .next()
                    .unwrap_or_else(|| die("--only needs a comma-separated list"));
                only = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--list" => {
                for (name, desc) in PANELS {
                    println!("{name:18} {desc}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick|--full|--scale N] [--repeats R] [--only LIST]"
                );
                for (name, desc) in PANELS {
                    println!("  {name:18} {desc}");
                }
                return;
            }
            other => die(&format!("unknown option `{other}` (try --help)")),
        }
    }
    if scale == 0 || repeats == 0 {
        die("--scale and --repeats must be positive");
    }
    let opts = Options { scale, repeats };

    println!("# LTC experiment suite (ICDE 2018 reproduction)");
    println!("# scale = 1/{scale} of the paper's cardinalities, repeats = {repeats}");
    println!();

    if let Some(list) = &only {
        for name in list {
            if !PANELS.iter().any(|(p, _)| p == name) {
                die(&format!("unknown panel `{name}` (try --list)"));
            }
        }
    }
    let wanted = |name: &str| only.as_ref().is_none_or(|l| l.iter().any(|x| x == name));

    if wanted("fig3-tasks") {
        fig3_tasks(opts);
    }
    if wanted("fig3-capacity") {
        fig3_capacity(opts);
    }
    if wanted("fig3-acc-normal") {
        fig3_accuracy(opts, false);
    }
    if wanted("fig3-acc-uniform") {
        fig3_accuracy(opts, true);
    }
    if wanted("fig4-epsilon") {
        fig4_epsilon(opts);
    }
    if wanted("fig4-scalability") {
        fig4_scalability(opts);
    }
    if wanted("fig4-newyork") {
        fig4_city(
            opts,
            CheckinCityConfig::new_york_like(),
            "fig4-newyork (New York)",
        );
    }
    if wanted("fig4-tokyo") {
        fig4_city(opts, CheckinCityConfig::tokyo_like(), "fig4-tokyo (Tokyo)");
    }
    if wanted("abl-batch") {
        ablation_batch(opts);
    }
    if wanted("abl-aam") {
        ablation_aam(opts);
    }
    if wanted("abl-eligibility") {
        ablation_eligibility(opts);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

// ---------------------------------------------------------------- panels

fn fig3_tasks(opts: Options) {
    let xs = [1000usize, 2000, 3000, 4000, 5000];
    run_panel(
        "Fig. 3 (a,e,i) — varying |T|",
        "|T|",
        &xs.map(|t| t.to_string()),
        opts,
        |i, seed| {
            SyntheticConfig {
                n_tasks: xs[i],
                seed,
                ..SyntheticConfig::default()
            }
            .scaled_down(opts.scale)
            .generate()
        },
    );
}

fn fig3_capacity(opts: Options) {
    let xs = [4u32, 5, 6, 7, 8];
    run_panel(
        "Fig. 3 (b,f,j) — varying K",
        "K",
        &xs.map(|k| k.to_string()),
        opts,
        |i, seed| {
            SyntheticConfig {
                capacity: xs[i],
                seed,
                ..SyntheticConfig::default()
            }
            .scaled_down(opts.scale)
            .generate()
        },
    );
}

fn fig3_accuracy(opts: Options, uniform: bool) {
    let xs = [0.82f64, 0.84, 0.86, 0.88, 0.90];
    let title = if uniform {
        "Fig. 3 (d,h,l) — accuracy ~ Uniform(mean ± 0.08)"
    } else {
        "Fig. 3 (c,g,k) — accuracy ~ Normal(μ, 0.05)"
    };
    run_panel(
        title,
        if uniform { "mean" } else { "μ" },
        &xs.map(|m| format!("{m:.2}")),
        opts,
        |i, seed| {
            let accuracy = if uniform {
                AccuracyDistribution::uniform(xs[i])
            } else {
                AccuracyDistribution::normal(xs[i])
            };
            SyntheticConfig {
                accuracy,
                seed,
                ..SyntheticConfig::default()
            }
            .scaled_down(opts.scale)
            .generate()
        },
    );
}

fn fig4_epsilon(opts: Options) {
    let xs = [0.06f64, 0.10, 0.14, 0.18, 0.22];
    run_panel(
        "Fig. 4 (a,e,i) — varying ε",
        "ε",
        &xs.map(|e| format!("{e:.2}")),
        opts,
        |i, seed| {
            SyntheticConfig {
                epsilon: xs[i],
                seed,
                ..SyntheticConfig::default()
            }
            .scaled_down(opts.scale)
            .generate()
        },
    );
}

fn fig4_scalability(opts: Options) {
    let xs = [10_000usize, 20_000, 30_000, 40_000, 50_000, 100_000];
    run_panel(
        "Fig. 4 (b,f,j) — scalability (|W| = 400k)",
        "|T|",
        &xs.map(|t| t.to_string()),
        opts,
        |i, seed| {
            SyntheticConfig {
                seed,
                ..SyntheticConfig::scalability(xs[i])
            }
            .scaled_down(opts.scale)
            .generate()
        },
    );
}

fn fig4_city(opts: Options, base: CheckinCityConfig, title: &str) {
    let xs = [0.06f64, 0.10, 0.14, 0.18, 0.22];
    run_panel(
        title,
        "ε",
        &xs.map(|e| format!("{e:.2}")),
        opts,
        |i, seed| {
            let mut cfg = base.scaled_down(opts.scale);
            cfg.epsilon = xs[i];
            cfg.seed = cfg.seed.wrapping_add(seed);
            cfg.generate()
        },
    );
}

// ------------------------------------------------------------ ablations

/// MCF-LTC batch-size ablation: latency and runtime for batches of
/// 0.5×–2× the Theorem-2 lower bound `m`, on the default workload.
fn ablation_batch(opts: Options) {
    println!("== Ablation — MCF-LTC batch size (× m) ==");
    println!(
        "{:>8}\t{:>9}\t{:>10}\t{:>12}",
        "scale", "latency", "time (s)", "assignments"
    );
    let instance = SyntheticConfig::default()
        .scaled_down(opts.scale)
        .generate();
    for scale in [0.5f64, 1.0, 1.5, 2.0] {
        let started = std::time::Instant::now(); // ltc-lint: allow(L006) bench stopwatch: measuring wall-clock is the point
        let outcome = McfLtc::with_batch_scale(scale).run(&instance);
        let secs = started.elapsed().as_secs_f64();
        println!(
            "{scale:>8.1}\t{:>9}\t{secs:>10.4}\t{:>12}",
            outcome
                .latency()
                .map_or_else(|| "inc.".to_string(), |l| l.to_string()),
            outcome.arrangement.len()
        );
    }
    println!();
}

/// AAM strategy ablation: the hybrid against its two halves.
fn ablation_aam(opts: Options) {
    println!("== Ablation — AAM switching rule ==");
    println!(
        "{:>12}\t{:>9}\t{:>12}\t{:>10}",
        "strategy", "latency", "assignments", "overshoot"
    );
    let instance = SyntheticConfig::default()
        .scaled_down(opts.scale)
        .generate();
    for strategy in [
        AamStrategy::Hybrid,
        AamStrategy::AlwaysLgf,
        AamStrategy::AlwaysLrf,
    ] {
        let outcome = run_online(&instance, &mut Aam::with_strategy(strategy));
        let stats = ltc_core::metrics::ArrangementStats::new(&instance, &outcome.arrangement);
        println!(
            "{:>12}\t{:>9}\t{:>12}\t{:>10.3}",
            format!("{strategy:?}"),
            outcome
                .latency()
                .map_or_else(|| "inc.".to_string(), |l| l.to_string()),
            outcome.arrangement.len(),
            stats.mean_overshoot().unwrap_or(f64::NAN),
        );
    }
    println!();
}

/// Eligibility ablation: the paper-faithful nearby-only policy vs the
/// unrestricted degenerate reading of Eq. 1.
///
/// Under the unrestricted policy, LAF showers tasks with far-away workers
/// whose predicted accuracy ≈ 0 gives `Acc* ≈ 1`: latency collapses. If
/// those accuracies were *exactly* right the arrangement would even be
/// informative (a reliably wrong worker is an expert with the sign
/// flipped) — the realistic failure is that a worker who has never seen
/// the POI *guesses* (true accuracy 0.5) while the platform weights them
/// as a confident anti-expert. The second error column simulates that
/// misestimation: far answers are coin flips, voting weights stay at the
/// model's `2·Acc − 1`.
fn ablation_eligibility(opts: Options) {
    println!("== Ablation — eligibility policy (LAF) ==");
    println!(
        "{:>14}\t{:>9}\t{:>16}\t{:>18}",
        "policy", "latency", "err(model acc)", "err(far = guess)"
    );
    for (name, eligibility) in [
        ("within-range", Eligibility::WithinRange),
        ("unrestricted", Eligibility::Unrestricted),
    ] {
        let instance = SyntheticConfig {
            eligibility,
            ..SyntheticConfig::default()
        }
        .scaled_down(opts.scale)
        .generate();
        let outcome = run_online(&instance, &mut Laf::new());
        let truth = GroundTruth::random(instance.n_tasks(), 17);
        let report = simulate(&instance, &outcome.arrangement, &truth, 300, 23);
        let guess_err = simulate_with_guessing_far_workers(&instance, &outcome, &truth, 300);
        println!(
            "{name:>14}\t{:>9}\t{:>16.4}\t{:>18.4}",
            outcome
                .latency()
                .map_or_else(|| "inc.".to_string(), |l| l.to_string()),
            report.max_task_error_rate(),
            guess_err,
        );
    }
    println!("(ε = 0.14; the unrestricted policy's quality is an artifact of");
    println!(" trusting the accuracy model outside its domain)");
    println!();
}

/// Worst-task error rate when workers beyond predicted accuracy 0.5
/// answer by coin flip while voting weights stay at the model's value.
fn simulate_with_guessing_far_workers(
    instance: &Instance,
    outcome: &ltc_core::model::RunOutcome,
    truth: &GroundTruth,
    trials: usize,
) -> f64 {
    use ltc_sim::{sample_answer, weighted_majority};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0xFA2);
    let mut per_task: Vec<Vec<f64>> = vec![Vec::new(); instance.n_tasks()];
    for a in outcome.arrangement.assignments() {
        per_task[a.task.index()].push(a.acc);
    }
    let mut worst = 0.0f64;
    for (t, accs) in per_task.iter().enumerate() {
        let mut errors = 0usize;
        for _ in 0..trials {
            let label = truth.label(t);
            let vote = weighted_majority(accs.iter().map(|&model_acc| {
                let true_acc = if model_acc < 0.5 { 0.5 } else { model_acc };
                (model_acc, sample_answer(&mut rng, true_acc, label))
            }));
            if vote.label != label {
                errors += 1;
            }
        }
        worst = worst.max(errors as f64 / trials as f64);
    }
    worst
}

// ------------------------------------------------------------- machinery

/// Runs one panel: for every x value, `repeats` seeded instances, all five
/// algorithms; prints the three metric tables.
fn run_panel(
    title: &str,
    x_label: &str,
    xs: &[String],
    opts: Options,
    make: impl Fn(usize, u64) -> Instance,
) {
    println!("== {title} ==");
    // cells[x][algo] = averaged measurements.
    let mut cells: Vec<Vec<AvgCell>> = vec![vec![AvgCell::default(); ALL_ALGOS.len()]; xs.len()];
    for (xi, _) in xs.iter().enumerate() {
        for rep in 0..opts.repeats {
            let instance = make(xi, 0xA11CE ^ rep);
            for (ai, algo) in ALL_ALGOS.iter().enumerate() {
                let m = measure(
                    *algo,
                    &instance,
                    rep.wrapping_mul(1_099_511_628_211) ^ 0x5EED,
                );
                cells[xi][ai].add(m);
            }
        }
    }

    print_metric_table(x_label, xs, &cells, "Max index of worker (latency)", |c| {
        c.latency_text()
    });
    print_metric_table(x_label, xs, &cells, "Time (secs)", |c| {
        format!("{:.4}", c.seconds_mean())
    });
    print_metric_table(x_label, xs, &cells, "Memory (MB)", |c| {
        format!("{:.2}", c.mb_mean())
    });
    println!();
}

#[derive(Default, Clone)]
struct AvgCell {
    latency_sum: u64,
    completed: u64,
    runs: u64,
    seconds_sum: f64,
    bytes_sum: f64,
}

impl AvgCell {
    fn add(&mut self, m: Measurement) {
        self.runs += 1;
        self.seconds_sum += m.seconds;
        self.bytes_sum += m.peak_bytes as f64;
        if let Some(l) = m.latency {
            self.completed += 1;
            self.latency_sum += l;
        }
    }

    /// Mean latency over completed runs; a `*` marks settings where some
    /// repetition exhausted the stream, `inc.` marks all-incomplete.
    fn latency_text(&self) -> String {
        if self.completed == 0 {
            "inc.".to_string()
        } else {
            let mean = self.latency_sum as f64 / self.completed as f64;
            if self.completed < self.runs {
                format!("{mean:.0}*")
            } else {
                format!("{mean:.0}")
            }
        }
    }

    fn seconds_mean(&self) -> f64 {
        self.seconds_sum / self.runs as f64
    }

    fn mb_mean(&self) -> f64 {
        self.bytes_sum / self.runs as f64 / (1024.0 * 1024.0)
    }
}

fn print_metric_table(
    x_label: &str,
    xs: &[String],
    cells: &[Vec<AvgCell>],
    metric: &str,
    fmt: impl Fn(&AvgCell) -> String,
) {
    println!("-- {metric} --");
    print!("{x_label:>10}");
    for algo in ALL_ALGOS {
        print!("\t{:>9}", algo.name());
    }
    println!();
    for (xi, x) in xs.iter().enumerate() {
        print!("{x:>10}");
        for (ai, _) in ALL_ALGOS.iter().enumerate() {
            print!("\t{:>9}", fmt(&cells[xi][ai]));
        }
        println!();
    }
}
