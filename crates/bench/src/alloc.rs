//! A byte- and call-counting global allocator.
//!
//! The paper reports per-algorithm memory footprints (Figs. 3–4, bottom
//! rows). OS-level RSS is noisy and machine-dependent, so the harness
//! counts live heap bytes exactly: the allocator tracks the current and
//! peak number of live bytes, and [`reset_peak`]-scoped measurement resets
//! the peak around each run.
//!
//! It also counts *allocation events* (every `alloc`/`realloc` call),
//! both globally and per thread. The per-thread counter is what the
//! zero-allocation hot-path regression tests read: unlike the global
//! count it cannot be polluted by the test harness's other threads, so
//! `thread_alloc_count()` deltas are exact for the code the current
//! thread ran.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // `const` init keeps the TLS access itself allocation-free, and
    // `try_with` below tolerates reads during thread teardown.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A [`System`]-backed allocator that tracks live and peak heap bytes.
pub struct CountingAllocator;

// SAFETY: delegates every allocation verbatim to `System`; the atomic
// bookkeeping has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            count_event();
            add(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            count_event();
            CURRENT.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            add(new_size as u64);
        }
        new_ptr
    }
}

#[inline]
fn count_event() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    // Ignore failures during thread teardown — the global count still
    // sees the event.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

#[inline]
fn add(bytes: u64) {
    let now = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    // Racy max update is fine: measurement runs are single-threaded.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size and returns that baseline.
pub fn reset_peak() -> u64 {
    let now = current_bytes();
    PEAK.store(now, Ordering::Relaxed);
    now
}

/// Total allocation events (`alloc` + `realloc` calls) across all
/// threads since process start. Monotone; measure with deltas.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Allocation events performed by the *current thread* since it started.
/// Monotone; measure with deltas. Immune to allocations on other threads
/// (e.g. a parallel test harness), which makes it the right counter for
/// zero-allocation assertions.
pub fn thread_alloc_count() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_a_large_allocation() {
        let baseline = reset_peak();
        let v = vec![0u8; 1 << 20];
        assert!(peak_bytes() >= baseline + (1 << 20));
        drop(v);
        assert!(current_bytes() < baseline + (1 << 20));
    }

    #[test]
    fn peak_survives_deallocation() {
        let baseline = reset_peak();
        {
            let _v = vec![0u64; 100_000];
        }
        assert!(peak_bytes() >= baseline + 800_000);
    }

    #[test]
    fn realloc_tracks_growth() {
        let baseline = reset_peak();
        let mut v: Vec<u8> = Vec::with_capacity(16);
        v.extend(std::iter::repeat_n(1u8, 1 << 18));
        assert!(peak_bytes() >= baseline + (1 << 18));
    }

    #[test]
    fn counts_allocation_events_per_thread() {
        let before = thread_alloc_count();
        let global_before = alloc_count();
        let v = vec![0u8; 64];
        let w = vec![0u8; 64];
        drop((v, w));
        assert!(thread_alloc_count() >= before + 2);
        assert!(alloc_count() >= global_before + 2);
    }

    #[test]
    fn thread_counter_is_isolated() {
        let before = thread_alloc_count();
        std::thread::spawn(|| {
            let _v = vec![0u8; 4096];
        })
        .join()
        .unwrap();
        // Thread spawn/join allocate on *this* thread too, so only check
        // the other thread's own counter started from zero-ish: its vec
        // must not be attributed retroactively here beyond what the spawn
        // machinery itself allocated. The meaningful property — deltas on
        // a quiet thread are exact — is what the hot-path test relies on;
        // here we just pin the API contract that the counter is monotone.
        assert!(thread_alloc_count() >= before);
    }
}
