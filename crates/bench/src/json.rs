//! Schema-stable JSON emission for committed benchmark artifacts.
//!
//! The throughput benches historically printed human-readable panels
//! and nothing else, so the repository carried no machine-checkable
//! performance trajectory. This module gives every runner one emitter
//! with a fixed schema (`ltc-bench/v1`), so `BENCH_*.json` files can be
//! committed, diffed across PRs, and validated structurally in CI
//! without ever gating on timing noise:
//!
//! ```json
//! {
//!   "schema": "ltc-bench/v1",
//!   "bench": "hotpath",
//!   "scale": 1,
//!   "cores": 8,
//!   "rows": [
//!     { "name": "table-iv/default", "workers": 9982, "secs": 0.004, ... }
//!   ]
//! }
//! ```
//!
//! Top-level keys and the per-row `name` key are **required** and
//! checked by [`validate`] (which reuses the `ltc-proto` wire parser —
//! no external JSON dependency); every other row field is
//! bench-specific free-form numeric/string data. CI fails on schema
//! drift, never on the metric values.

use std::fmt::Write as _;

/// The schema identifier stamped into (and required from) every report.
pub const SCHEMA: &str = "ltc-bench/v1";

/// One metric value. Numbers are emitted as JSON numbers; non-finite
/// floats (which raw JSON cannot carry) are emitted as `null`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An exact counter.
    U64(u64),
    /// A measurement (seconds, rates, ratios).
    F64(f64),
    /// A flag.
    Bool(bool),
    /// A label.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

/// One named measurement row (a configuration × driver data point).
#[derive(Debug, Clone)]
pub struct Row {
    name: String,
    fields: Vec<(&'static str, Value)>,
}

impl Row {
    /// A row named after its configuration (e.g. `"table-iv/default"`).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// Appends a metric field (builder-style). Field order is preserved
    /// in the emitted JSON.
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        debug_assert!(key != "name", "'name' is reserved for the row label");
        self.fields.push((key, value.into()));
        self
    }
}

/// A full benchmark report: the fixed header plus measurement rows.
#[derive(Debug, Clone)]
pub struct BenchReport {
    bench: String,
    scale: usize,
    cores: usize,
    rows: Vec<Row>,
}

impl BenchReport {
    /// Starts a report for the named bench at the given
    /// `LTC_BENCH_SCALE`; the `cores` header field is read from the
    /// host so a committed artifact documents its own environment.
    pub fn new(bench: impl Into<String>, scale: usize) -> Self {
        Self {
            bench: bench.into(),
            scale,
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            rows: Vec::new(),
        }
    }

    /// Appends a measurement row.
    pub fn push_row(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Renders the schema-stable JSON document (2-space indent, newline
    /// terminated, keys in fixed order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 128 * self.rows.len());
        out.push_str("{\n");
        push_kv_str(&mut out, 1, "schema", SCHEMA);
        out.push_str(",\n");
        push_kv_str(&mut out, 1, "bench", &self.bench);
        out.push_str(",\n");
        let _ = write!(
            out,
            "  \"scale\": {},\n  \"cores\": {},\n",
            self.scale, self.cores
        );
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            push_kv_str(&mut out, 3, "name", &row.name);
            for (key, value) in &row.fields {
                out.push_str(",\n      ");
                push_escaped_key(&mut out, key);
                out.push_str(": ");
                push_value(&mut out, value);
            }
            out.push_str("\n    }");
        }
        out.push_str(if self.rows.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        debug_assert!(
            validate(&out).is_ok(),
            "emitter produced invalid JSON: {:?}\n{out}",
            validate(&out)
        );
        out
    }

    /// Writes the report to `path` (see [`BenchReport::to_json`]),
    /// after re-validating it against the schema — an artifact that
    /// would fail CI's drift check is never written in the first place.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        let text = self.to_json();
        validate(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("schema drift: {e}"),
            )
        })?;
        std::fs::write(path, text)
    }
}

/// `ltc_proto::json::push_escaped` emits a complete string literal,
/// quotes included.
fn push_escaped_key(out: &mut String, key: &str) {
    ltc_proto::json::push_escaped(out, key);
}

fn push_kv_str(out: &mut String, indent: usize, key: &str, value: &str) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    push_escaped_key(out, key);
    out.push_str(": ");
    ltc_proto::json::push_escaped(out, value);
}

fn push_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(v) if v.is_finite() => {
            // Rust's shortest-roundtrip formatting (integral floats
            // emit without a decimal point; still a valid JSON number).
            // ltc-lint: allow(L001) ltc-bench/v1 commits to shortest-roundtrip JSON numbers; reports are human artifacts, never replay inputs
            let _ = write!(out, "{v}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(flag) => {
            let _ = write!(out, "{flag}");
        }
        Value::Str(text) => ltc_proto::json::push_escaped(out, text),
    }
}

/// Parses an optional `--out PATH` from the process arguments — the
/// shared convention by which `cargo bench -p ltc-bench --bench X --
/// --out BENCH_X.json` asks a print-only bench to also commit its
/// measurements as a report. Criterion-style flags that cargo forwards
/// (e.g. `--bench`) are ignored.
pub fn out_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            match args.next() {
                Some(path) => return Some(path.into()),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Validates a report document against the `ltc-bench/v1` schema:
/// parseable JSON, the exact `schema` marker, a `bench` name, integral
/// `scale ≥ 1` and `cores ≥ 1`, and a `rows` array whose entries all
/// carry a string `name`. Metric values are **not** interpreted — CI
/// uses this to catch schema drift without gating on timing noise.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = ltc_proto::json::parse(text).map_err(|e| e.to_string())?;
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or("missing string field 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("schema is '{schema}', expected '{SCHEMA}'"));
    }
    doc.get("bench")
        .and_then(|v| v.as_str())
        .ok_or("missing string field 'bench'")?;
    for key in ["scale", "cores"] {
        let v = doc
            .get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("missing integral field '{key}'"))?;
        if v == 0 {
            return Err(format!("'{key}' must be >= 1"));
        }
    }
    let rows = doc
        .get("rows")
        .and_then(|v| v.as_arr())
        .ok_or("missing array field 'rows'")?;
    for (i, row) in rows.iter().enumerate() {
        row.get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("row {i} is missing its string 'name'"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut report = BenchReport::new("hotpath", 4);
        report.push_row(
            Row::new("table-iv/default")
                .field("workers", 128u64)
                .field("secs", 0.5)
                .field("workers_per_sec", 256.0)
                .field("completed", true)
                .field("driver", "engine"),
        );
        report
    }

    #[test]
    fn emitted_reports_validate() {
        let text = sample().to_json();
        validate(&text).unwrap();
        assert!(text.contains("\"schema\": \"ltc-bench/v1\""));
        assert!(text.contains("\"workers\": 128"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn empty_rows_are_valid() {
        let text = BenchReport::new("empty", 1).to_json();
        validate(&text).unwrap();
    }

    #[test]
    fn non_finite_floats_emit_null() {
        let mut report = BenchReport::new("x", 1);
        report.push_row(Row::new("r").field("ratio", f64::INFINITY));
        let text = report.to_json();
        validate(&text).unwrap();
        assert!(text.contains("\"ratio\": null"));
    }

    #[test]
    fn validation_rejects_drift() {
        // Wrong schema marker.
        assert!(
            validate(r#"{"schema":"ltc-bench/v0","bench":"x","scale":1,"cores":1,"rows":[]}"#)
                .is_err()
        );
        // Missing rows.
        assert!(validate(r#"{"schema":"ltc-bench/v1","bench":"x","scale":1,"cores":1}"#).is_err());
        // Row without a name.
        assert!(validate(
            r#"{"schema":"ltc-bench/v1","bench":"x","scale":1,"cores":1,"rows":[{"secs":1}]}"#
        )
        .is_err());
        // Zero cores.
        assert!(
            validate(r#"{"schema":"ltc-bench/v1","bench":"x","scale":1,"cores":0,"rows":[]}"#)
                .is_err()
        );
        // Not JSON at all.
        assert!(validate("not json").is_err());
    }

    #[test]
    fn strings_are_escaped() {
        let mut report = BenchReport::new("quote\"bench", 1);
        report.push_row(Row::new("row\\name").field("label", "a\"b"));
        let text = report.to_json();
        validate(&text).unwrap();
        let doc = ltc_proto::json::parse(&text).unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("quote\"bench"));
    }
}
