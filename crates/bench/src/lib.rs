//! Shared harness for the LTC experiment suite.
//!
//! Provides the pieces every bench target and the `experiments` binary
//! need: a byte-counting global allocator (the paper's *Memory (MB)*
//! metric), a uniform runner over the five algorithms of the evaluation
//! (Base-off, MCF-LTC, Random, LAF, AAM), and plain-text panel printing
//! that mirrors the figures of Sec. V.

#![warn(missing_docs)]

pub mod alloc;
pub mod json;
pub mod runner;

pub use json::{BenchReport, Row};
pub use runner::{measure, Algo, Measurement, ALL_ALGOS};

/// Down-scaling factor used by the Criterion benches, overridable with the
/// `LTC_BENCH_SCALE` environment variable (1 = the paper's cardinalities).
/// The default of 64 keeps a full `cargo bench` run in the minutes range.
pub fn bench_scale() -> usize {
    std::env::var("LTC_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(64)
}

/// The counting allocator is installed once here so that every binary and
/// bench linking this crate records allocation peaks.
#[global_allocator]
static GLOBAL: alloc::CountingAllocator = alloc::CountingAllocator;
