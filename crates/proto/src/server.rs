//! The `ltc serve` layer: a TCP server multiplexing N concurrent
//! clients onto a [`SessionTable`] of named in-process [`Session`]s
//! (bare [`ServiceHandle`](ltc_core::service::ServiceHandle)s, or any
//! wrapper implementing the trait — the durability layer serves through
//! here unchanged).
//!
//! ## Sessions
//!
//! Every connection is **bound to exactly one session** at a time. A
//! `v1` connection is bound to the default session by the handshake and
//! stays there — the `v1` serving model is a special case of the table.
//! A `v2` connection starts on the default session and may rebind with
//! the `open`/`attach` verbs (until it subscribes — a subscribed
//! connection's event stream belongs to one session, so rebinding is
//! refused). Each `v2` request must carry the bound session's `"sid"`;
//! every `v2` response and event carries it back. A connection bound to
//! session A never observes session B's events — isolation falls out of
//! the binding, not filtering.
//!
//! ## Ordering model
//!
//! Each session sits behind its own mutex. Every state-touching request
//! runs under its bound session's lock, so the **per-session global
//! submission order is the connection-interleaved arrival order** —
//! exactly the order in which requests won that session's lock — and
//! the committed assignments are the ones a single in-process session
//! fed that interleaving would commit (asserted by the loopback
//! differential tests). Sessions never serialize against each other.
//! Arrival ids are assigned under the lock and returned in each
//! response, so clients can reconstruct the per-session order after the
//! fact.
//!
//! Windowed submission (`v2`) changes none of this: a client firing up
//! to W `submit`/`post` frames ahead of their acknowledgements simply
//! keeps the connection's read loop saturated — the frames queue in the
//! socket, each is applied under the session lock in arrival order, and
//! each response echoes its request's `"seq"` so the client can verify
//! the one-response-per-request FIFO correspondence. The per-session
//! submission mutex is untouched; global order is still the
//! connection-interleaved lock order.
//!
//! Back-pressure composes per session: when a shard mailbox is full,
//! the submitting request blocks *inside* its session's lock until the
//! shard catches up — which pauses that session's other clients too.
//! That is deliberate: admitting other submissions while one is blocked
//! would reorder arrivals. Subscribers observe the stall as the usual
//! [`Lifecycle::ShardStalled`](ltc_core::service::Lifecycle::ShardStalled)
//! event, forwarded on the wire like every other event.
//!
//! ## Event flow
//!
//! A connection that sends `subscribe` gets its own
//! [`Session::subscribe`] stream on its bound session, pumped to the
//! socket by a dedicated forwarder thread (events and responses
//! interleave on the wire; frames are written atomically under the
//! connection's writer lock). Delivery per subscriber is in exact
//! submission order — the runtime's collector guarantees it, the
//! forwarder preserves it. The forwarder paces its waits so it can
//! notice a departed peer, a stopping server, or an evicted session
//! instead of blocking forever on an idle stream.
//!
//! ## Lifecycle and shutdown
//!
//! A `v2` `close` evicts **one** named session: its subscribers receive
//! [`Lifecycle::SessionEvicted`](ltc_core::service::Lifecycle::SessionEvicted),
//! the session drains and shuts down
//! ([`Lifecycle::ShuttingDown`](ltc_core::service::Lifecycle::ShuttingDown)
//! ends the streams), and its name becomes free. The idle policy
//! ([`SessionTable::with_factory`]) evicts the same way, from a reaper
//! thread. A `shutdown` request (either version) still ends the *whole
//! server*: every session shuts down, subscribers' streams end, the
//! requester gets its response, and then the acceptor stops. Requests
//! on surviving connections get an error response (never a hang); their
//! threads exit when the client disconnects.

use crate::session_table::{SessionConfig, SessionEntry, SessionTable};
use crate::wire::{self, Request, Response};
use ltc_core::service::{ServiceError, Session};
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Locks a mutex, recovering from poisoning instead of propagating it:
/// a connection thread that panicked mid-request must fail *its own*
/// connection, not wedge every other client behind a permanently
/// poisoned lock. The guarded values stay sound across a recovered
/// panic — the session rejects later calls itself once closed, and a
/// writer is just a socket.
fn lock_recovering<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How often an idle event forwarder re-checks whether its peer is
/// gone, its session was evicted, or the server is stopping (events
/// themselves are forwarded the moment they arrive; only silence costs
/// a poll).
const FORWARDER_POLL: Duration = Duration::from_millis(100);

/// How often the idle reaper re-checks the stop flag between sweeps.
const REAPER_POLL: Duration = Duration::from_millis(100);

/// The serving state every connection thread shares.
struct Shared {
    /// The session registry. Server `shutdown` leaves every session
    /// inert, so later calls fail with `RuntimeStopped` rather than
    /// panicking.
    table: SessionTable,
    /// Set by a `shutdown` request; checked by the acceptor, the event
    /// forwarders, and the reaper.
    stopping: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Stops the acceptor (the flag, plus a throw-away connection to
    /// ourselves to unblock `accept`). A wildcard bind (0.0.0.0 / ::)
    /// is not connectable on every platform, so the wake-up targets
    /// loopback on the bound port instead.
    fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        let target = if self.addr.ip().is_unspecified() {
            let ip: std::net::IpAddr = if self.addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            SocketAddr::new(ip, self.addr.port())
        } else {
            self.addr
        };
        TcpStream::connect(target).ok();
    }
}

/// A bound, not-yet-running `ltc-proto` server over a [`SessionTable`]
/// (or, via [`LtcServer::bind`], a single [`Session`] — the `v1`
/// serving model). [`LtcServer::run`] serves on the calling thread
/// until a client requests shutdown; [`LtcServer::spawn`] does the same
/// on a background thread (tests, and anything that needs the bound
/// address before serving).
pub struct LtcServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A server running on a background thread (see [`LtcServer::spawn`]).
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    join: JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// The bound address (resolved, so port 0 becomes the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server as a client's `shutdown` request would (every
    /// session shuts down, then the acceptor stops) and waits for the
    /// serving thread. Idempotent with a client-sent `shutdown`.
    pub fn stop(self) -> io::Result<()> {
        self.shared.table.shutdown_all().ok();
        self.shared.stop();
        self.join
            .join()
            .map_err(|_| io::Error::other("the server thread panicked"))?
    }

    /// Waits for the server to stop on its own (a client sent
    /// `shutdown`).
    pub fn wait(self) -> io::Result<()> {
        self.join
            .join()
            .map_err(|_| io::Error::other("the server thread panicked"))?
    }
}

impl LtcServer {
    /// Binds the listener over one fixed [`Session`] — the in-process
    /// handle, or a wrapper (durability, instrumentation) layered over
    /// it. The session becomes the table's default (and only) session;
    /// `open` is refused. `addr` may use port 0; read the resolved
    /// address back with [`LtcServer::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        session: impl Session + Send + 'static,
    ) -> io::Result<Self> {
        Self::bind_table(addr, SessionTable::single(session))
    }

    /// Binds the listener over a full [`SessionTable`] — the
    /// multi-session serving model (`ltc serve --max-sessions`).
    pub fn bind_table(addr: impl ToSocketAddrs, table: SessionTable) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                table,
                stopping: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until a client requests shutdown. Connection threads exit
    /// when their client disconnects (or promptly after the stop, for
    /// subscribed ones); they never outlive their session usefully —
    /// every request they make afterwards is answered with an error.
    pub fn run(self) -> io::Result<()> {
        if let Some(timeout) = self.shared.table.idle_timeout() {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("ltc-serve-reaper".into())
                .spawn(move || reap_idle(&shared, timeout))
                .ok();
        }
        loop {
            let (conn, _) = self.listener.accept()?;
            if self.shared.stopping.load(Ordering::SeqCst) {
                return Ok(());
            }
            conn.set_nodelay(true).ok();
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("ltc-serve-conn".into())
                .spawn(move || serve_connection(conn, shared))
                .ok();
        }
    }

    /// Runs the server on a background thread.
    pub fn spawn(self) -> io::Result<RunningServer> {
        let addr = self.local_addr();
        let shared = Arc::clone(&self.shared);
        let join = std::thread::Builder::new()
            .name("ltc-serve-accept".into())
            .spawn(move || self.run())
            .map_err(|_| io::Error::other("could not spawn the acceptor thread"))?;
        Ok(RunningServer { addr, shared, join })
    }
}

/// The idle-eviction loop: sweep the table on the idle-timeout cadence
/// until the server stops. The poll between sweeps stays short so a
/// stopping server is never held up by a long timeout.
fn reap_idle(shared: &Shared, timeout: Duration) {
    let sweep = timeout.max(REAPER_POLL);
    let mut since_sweep = Duration::ZERO;
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(REAPER_POLL);
        since_sweep += REAPER_POLL;
        if since_sweep >= sweep {
            since_sweep = Duration::ZERO;
            shared.table.evict_idle();
        }
    }
}

/// A connection's session binding: counted on the entry, so the idle
/// policy can see live bindings, and moved by the `v2` rebind verbs.
/// Dropping the binding (the connection ended) releases the count and
/// restarts the session's idle clock.
struct Binding {
    entry: Arc<SessionEntry>,
}

impl Binding {
    fn new(entry: Arc<SessionEntry>) -> Self {
        entry.bind();
        Self { entry }
    }

    fn rebind(&mut self, entry: Arc<SessionEntry>) {
        entry.bind();
        self.entry.unbind();
        self.entry = entry;
    }
}

impl Drop for Binding {
    fn drop(&mut self) {
        self.entry.unbind();
    }
}

/// One connection, handshake to EOF. On every exit path the socket is
/// shut down (so clones held by a forwarder cannot keep the peer
/// waiting on a half-dead connection) and the forwarder is joined.
fn serve_connection(conn: TcpStream, shared: Arc<Shared>) {
    let Ok(read_half) = conn.try_clone() else {
        conn.shutdown(Shutdown::Both).ok();
        return;
    };
    let mut reader = BufReader::new(read_half);
    // Frames are written whole under this lock — responses from this
    // thread and events from the forwarder interleave only at frame
    // boundaries.
    let writer = Arc::new(Mutex::new(conn));
    let gone = Arc::new(AtomicBool::new(false));
    let mut forwarder: Option<JoinHandle<()>> = None;

    converse(&mut reader, &writer, &gone, &shared, &mut forwarder);

    gone.store(true, Ordering::SeqCst);
    lock_recovering(&writer).shutdown(Shutdown::Both).ok();
    if let Some(join) = forwarder {
        join.join().ok();
    }
}

/// The request/response loop (separated out so `serve_connection` owns
/// exactly one cleanup path).
fn converse(
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    gone: &Arc<AtomicBool>,
    shared: &Arc<Shared>,
    forwarder: &mut Option<JoinHandle<()>>,
) {
    // Handshake: exactly one hello, version-checked. Both versions bind
    // the default session; `v2` echoes its sid.
    let Ok(Some(hello)) = wire::read_frame(reader) else {
        return;
    };
    let (version, reply) = match wire::decode_hello(&hello) {
        Ok(version @ (wire::PROTO_VERSION | wire::PROTO_VERSION_V2)) => {
            let entry = shared.table.default_entry();
            let info = entry.lock().info();
            let frame = if version == wire::PROTO_VERSION {
                Response::Hello { info, win: 1 }.encode()
            } else {
                // A `v2` hello advertises the submission window the
                // server honors; `v1` stays byte-identical (lockstep).
                wire::with_sid(
                    wire::encode_hello_response_v2(&info, wire::MAX_WINDOW),
                    entry.name(),
                )
            };
            (Some((version, entry)), frame)
        }
        Ok(version) => (
            None,
            Response::Err {
                message: format!(
                    "unsupported {} version {version} (serving {} and {})",
                    wire::PROTO_NAME,
                    wire::PROTO_VERSION,
                    wire::PROTO_VERSION_V2
                ),
            }
            .encode(),
        ),
        Err(what) => (
            None,
            Response::Err {
                message: format!("bad handshake: {what}"),
            }
            .encode(),
        ),
    };
    let written = write_frame(writer, reply);
    let Some((version, entry)) = version else {
        return;
    };
    if written.is_err() {
        return;
    }
    let mut binding = Binding::new(entry);

    // Acknowledgements to windowed frames batch here and go out in one
    // `write` when the pipelined burst is exhausted (or a lockstep
    // response needs the wire first) — the server half of the windowed
    // throughput win. The client never blocks on bytes held here: it
    // only awaits acks for frames it finished sending, and the batch is
    // flushed before this thread blocks on the next read.
    let mut acks: Vec<u8> = Vec::new();
    loop {
        // About to block? Everything batched must be on the wire first.
        // (A partial frame in the read buffer means its remainder is
        // already in flight from a client that writes whole frames
        // before awaiting, so waiting for it cannot deadlock.)
        if !acks.is_empty() && reader.buffer().is_empty() && flush_acks(writer, &mut acks).is_err()
        {
            return;
        }
        let frame = match wire::read_frame(reader) {
            Ok(Some(frame)) => frame,
            _ => return, // EOF, socket shutdown, or an oversized frame
        };
        let decoded = Request::decode_with_sid(&frame);
        let windowed = matches!(
            &decoded,
            Ok((
                Request::Submit { seq: Some(_), .. } | Request::Post { seq: Some(_), .. },
                _
            ))
        );
        let (response, stop_after) = match decoded {
            Err(what) => (
                Response::Err {
                    message: format!("bad request: {what}"),
                },
                false,
            ),
            Ok((request, sid)) => match check_sid(&request, sid.as_deref(), version, &binding) {
                Err(message) => (Response::Err { message }, false),
                Ok(()) => execute(
                    &request,
                    shared,
                    writer,
                    gone,
                    forwarder,
                    &mut binding,
                    version,
                ),
            },
        };
        // Responses carry the *post-execution* binding's sid, so a
        // successful open/attach is acknowledged under its new session.
        let mut encoded = response.encode();
        if version == wire::PROTO_VERSION_V2 {
            encoded = wire::with_sid(encoded, binding.entry.name());
        }
        if windowed {
            // Windowed acks (including refusals of windowed frames) are
            // tiny and never `stop_after`; they ride the batch in FIFO
            // position.
            acks.extend_from_slice(encoded.as_bytes());
            acks.push(b'\n');
            if acks.len() >= ACK_BATCH_CAP && flush_acks(writer, &mut acks).is_err() {
                return;
            }
            continue;
        }
        // Lockstep responses keep their immediate write, behind any
        // batched acks still owed (FIFO across the whole connection).
        if !acks.is_empty() && flush_acks(writer, &mut acks).is_err() {
            return;
        }
        // The requester hears the outcome *before* the acceptor stops —
        // a `shutdown` must be acknowledged, not met with a dead socket.
        let written = write_frame(writer, encoded);
        if stop_after {
            shared.stop();
            return;
        }
        if written.is_err() {
            return;
        }
    }
}

/// Flush threshold for batched windowed acknowledgements.
const ACK_BATCH_CAP: usize = 64 * 1024;

/// Writes the batched windowed acknowledgements in one locked `write`
/// (events from the forwarder still interleave only at frame
/// boundaries).
fn flush_acks(writer: &Arc<Mutex<TcpStream>>, acks: &mut Vec<u8>) -> io::Result<()> {
    use std::io::Write as _;
    let mut stream = lock_recovering(writer);
    let result = stream.write_all(acks);
    acks.clear();
    result
}

/// The `v2` addressing rules (and their `v1` absence): session verbs
/// need `v2`; a `v2` frame's `"sid"` must name the bound session —
/// except on the session verbs themselves, where it *is* the target.
fn check_sid(
    request: &Request,
    sid: Option<&str>,
    version: u64,
    binding: &Binding,
) -> Result<(), String> {
    let session_verb = matches!(
        request,
        Request::Open { .. } | Request::Attach { .. } | Request::Close { .. } | Request::Sessions
    );
    if version == wire::PROTO_VERSION {
        if session_verb {
            return Err(format!(
                "session verbs require {} v{}",
                wire::PROTO_NAME,
                wire::PROTO_VERSION_V2
            ));
        }
        if sid.is_some() {
            return Err(format!(
                "`sid` requires {} v{}",
                wire::PROTO_NAME,
                wire::PROTO_VERSION_V2
            ));
        }
        if matches!(
            request,
            Request::Submit { seq: Some(_), .. } | Request::Post { seq: Some(_), .. }
        ) {
            return Err(format!(
                "windowed submission (`seq`) requires {} v{}",
                wire::PROTO_NAME,
                wire::PROTO_VERSION_V2
            ));
        }
        return Ok(());
    }
    // Open/attach/close address their target; everything else must
    // address the session this connection is bound to.
    if matches!(request, Request::Sessions) || !session_verb {
        let bound = binding.entry.name();
        match sid {
            None => return Err("missing `sid` (every v2 request carries one)".into()),
            Some(sid) if sid != bound => {
                return Err(format!(
                    "request sid `{sid}` does not match the bound session `{bound}`"
                ));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

/// Writes one already-encoded frame, degrading an oversized one into an
/// error frame first — a response that would overflow the peer's frame
/// cap (a snapshot of an enormous service) must stay recoverable;
/// sending it anyway would kill the connection on the client side.
fn write_frame(writer: &Arc<Mutex<TcpStream>>, frame: String) -> io::Result<()> {
    let frame = if frame.len() >= wire::MAX_FRAME {
        Response::Err {
            message: format!(
                "response of {} bytes exceeds the {}-byte frame cap",
                frame.len(),
                wire::MAX_FRAME
            ),
        }
        .encode()
    } else {
        frame
    };
    let mut stream = lock_recovering(writer);
    wire::write_frame(&mut *stream, &frame)
}

fn err_response(e: ServiceError) -> Response {
    Response::Err {
        message: e.to_string(),
    }
}

/// Executes one request against the connection's bound session (or the
/// session table, for the session verbs), returning the response and
/// whether the server should stop once it is written. Every
/// state-touching arm locks the session for the whole operation — the
/// lock *is* that session's global submission order.
fn execute(
    request: &Request,
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    gone: &Arc<AtomicBool>,
    forwarder: &mut Option<JoinHandle<()>>,
    binding: &mut Binding,
    version: u64,
) -> (Response, bool) {
    let response = match request {
        Request::Submit { worker, seq } => {
            // Windowed or lockstep, the handling is identical: the
            // session lock is taken per request, so frames the client
            // fired ahead queue in the socket and are applied
            // back-to-back in arrival order — the pipelining *is* the
            // read loop. The echoed `"seq"` lets the client verify the
            // FIFO correspondence.
            let mut session = binding.entry.lock();
            match session.submit_worker(worker) {
                Ok(worker) => Response::Submit { worker, seq: *seq },
                Err(e) => err_response(e),
            }
        }
        Request::Post { task, row, seq } => {
            let mut session = binding.entry.lock();
            let posted = match row {
                None => session.post_task(*task),
                Some(row) => session.post_task_with_accuracies(*task, row),
            };
            match posted {
                Ok(task) => Response::Post { task, seq: *seq },
                Err(e) => err_response(e),
            }
        }
        Request::Subscribe => {
            if forwarder.is_some() {
                return (Response::Subscribe, false); // idempotent per connection
            }
            let stream = {
                let mut session = binding.entry.lock();
                match session.subscribe() {
                    Ok(stream) => stream,
                    Err(e) => return (err_response(e), false),
                }
            };
            let writer = Arc::clone(writer);
            let gone = Arc::clone(gone);
            let shared = Arc::clone(shared);
            let entry = Arc::clone(&binding.entry);
            let join = std::thread::Builder::new()
                .name("ltc-serve-events".into())
                .spawn(move || {
                    // `v2` events carry the bound session's sid like
                    // every other frame; `v1` events stay byte-identical
                    // to the `v1` grammar.
                    let sid = (version == wire::PROTO_VERSION_V2).then(|| entry.name().to_string());
                    let emit = |event: &_, writer: &Arc<Mutex<TcpStream>>| {
                        let mut frame = wire::encode_event(event);
                        if let Some(sid) = &sid {
                            frame = wire::with_sid(frame, sid);
                        }
                        let mut sock = lock_recovering(writer);
                        wire::write_frame(&mut *sock, &frame)
                    };
                    loop {
                        match stream.recv_timeout(FORWARDER_POLL) {
                            Some(event) => {
                                if emit(&event, &writer).is_err() {
                                    return;
                                }
                            }
                            // Idle (or the stream ended — the two are
                            // indistinguishable here): keep pacing until
                            // the peer leaves, the session is evicted, or
                            // the server stops, then let the channel
                            // drain one last time and exit.
                            None => {
                                if gone.load(Ordering::SeqCst)
                                    || entry.is_closed()
                                    || shared.stopping.load(Ordering::SeqCst)
                                {
                                    while let Some(event) = stream.try_recv() {
                                        if emit(&event, &writer).is_err() {
                                            return;
                                        }
                                    }
                                    return;
                                }
                            }
                        }
                    }
                })
                .ok();
            match join {
                Some(join) => {
                    *forwarder = Some(join);
                    Response::Subscribe
                }
                None => Response::Err {
                    message: "could not spawn the event forwarder".into(),
                },
            }
        }
        Request::Drain => {
            let mut session = binding.entry.lock();
            match session.drain() {
                Ok(()) => Response::Drain,
                Err(e) => err_response(e),
            }
        }
        Request::Snapshot => {
            let mut session = binding.entry.lock();
            match session.snapshot() {
                Ok(snapshot) => {
                    let mut text = Vec::new();
                    match ltc_core::snapshot::write_snapshot(&snapshot, &mut text) {
                        Ok(()) => Response::Snapshot {
                            // The writer emits ASCII text.
                            text: String::from_utf8_lossy(&text).into_owned(),
                        },
                        Err(e) => Response::Err {
                            message: format!("could not serialize the snapshot: {e}"),
                        },
                    }
                }
                Err(e) => err_response(e),
            }
        }
        Request::Rebalance => {
            let mut session = binding.entry.lock();
            match session.rebalance() {
                Ok(outcome) => Response::Rebalance { outcome },
                Err(e) => err_response(e),
            }
        }
        Request::Metrics => {
            let mut session = binding.entry.lock();
            match session.metrics() {
                Ok(mut metrics) => {
                    // The hosting process's view, not the session's: the
                    // table knows how many sessions this server carries.
                    metrics.sessions_open = shared.table.open_count();
                    metrics.sessions_evicted = shared.table.evicted_count();
                    Response::Metrics { metrics }
                }
                Err(e) => err_response(e),
            }
        }
        Request::Shutdown => {
            let result = shared.table.shutdown_all();
            return match result {
                Ok(()) => (Response::Shutdown, true),
                Err(e) => (err_response(e), false),
            };
        }
        Request::Open {
            sid,
            algorithm,
            shards,
            region,
        } => {
            if forwarder.is_some() {
                return (
                    Response::Err {
                        message: "a subscribed connection cannot rebind (open a new connection)"
                            .into(),
                    },
                    false,
                );
            }
            let config = SessionConfig {
                algorithm: *algorithm,
                shards: *shards,
                region: *region,
            };
            match shared.table.open(sid, &config) {
                Ok(entry) => {
                    let info = entry.lock().info();
                    binding.rebind(entry);
                    Response::Open { info }
                }
                Err(e) => err_response(e),
            }
        }
        Request::Attach { sid } => {
            if forwarder.is_some() {
                return (
                    Response::Err {
                        message: "a subscribed connection cannot rebind (open a new connection)"
                            .into(),
                    },
                    false,
                );
            }
            match shared.table.get(sid) {
                Ok(entry) => {
                    let info = entry.lock().info();
                    binding.rebind(entry);
                    Response::Attach { info }
                }
                Err(e) => err_response(e),
            }
        }
        Request::Close { sid } => match shared.table.close(sid) {
            Ok(()) => Response::Close,
            Err(e) => err_response(e),
        },
        Request::Sessions => Response::Sessions {
            sessions: shared.table.list(),
        },
    };
    (response, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LtcClient;
    use ltc_core::model::{ProblemParams, Worker};
    use ltc_core::service::ServiceBuilder;
    use ltc_spatial::{BoundingBox, Point};

    fn test_session() -> ltc_core::service::ServiceHandle {
        let params = ProblemParams::builder()
            .epsilon(0.3)
            .capacity(1)
            .build()
            .unwrap();
        let region = BoundingBox::new(Point::ORIGIN, Point::new(100.0, 100.0));
        ServiceBuilder::new(params, region).start().unwrap()
    }

    /// Regression: a connection thread panicking while it holds a
    /// session lock used to poison the mutex for good — every later
    /// request on every other connection died unwrapping it. The lock
    /// must recover so only the offending connection fails.
    #[test]
    fn a_poisoned_session_mutex_does_not_wedge_other_clients() {
        let server = LtcServer::bind("127.0.0.1:0", test_session()).unwrap();
        let shared = Arc::clone(&server.shared);
        let running = server.spawn().unwrap();

        // Simulate the offending connection: panic while holding the
        // default session's lock, exactly as a request handler would.
        let poisoner = shared.table.default_entry();
        std::thread::Builder::new()
            .name("poisoner".into())
            .spawn(move || {
                let _guard = poisoner.lock();
                panic!("connection thread dies mid-request");
            })
            .unwrap()
            .join()
            .unwrap_err();
        assert!(shared.table.default_entry().is_poisoned());

        // Every later client must still get served, end to end.
        let mut client = LtcClient::connect(running.addr()).unwrap();
        let id = client
            .submit_worker(&Worker::new(Point::new(1.0, 1.0), 0.9))
            .unwrap();
        assert_eq!(id.0, 0);
        let metrics = client.metrics().unwrap();
        assert_eq!(metrics.n_workers_seen, 1);
        client.shutdown().unwrap();
        running.wait().unwrap();
    }
}
