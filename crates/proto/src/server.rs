//! The `ltc serve` layer: a TCP server multiplexing N concurrent
//! clients onto one in-process [`Session`] (the bare
//! [`ServiceHandle`](ltc_core::service::ServiceHandle), or any wrapper
//! implementing the trait — the durability layer serves through here
//! unchanged).
//!
//! ## Ordering model
//!
//! The served handle sits behind one mutex. Every state-touching request
//! (submit, post, drain, snapshot, rebalance, metrics, shutdown) runs
//! under it, so the **global submission order is the connection-
//! interleaved arrival order** — exactly the order in which requests won
//! the lock — and the committed assignments are the ones a single
//! in-process session fed that interleaving would commit (asserted by
//! the loopback differential tests). Arrival ids are assigned under the
//! lock and returned in each response, so clients can reconstruct the
//! global order after the fact.
//!
//! Back-pressure composes: when a shard mailbox is full, the submitting
//! request blocks *inside* the lock until the shard catches up — which
//! pauses every other client too. That is deliberate: admitting other
//! submissions while one is blocked would reorder arrivals. Subscribers
//! observe the stall as the usual
//! [`Lifecycle::ShardStalled`](ltc_core::service::Lifecycle::ShardStalled)
//! event, forwarded on the wire like every other event.
//!
//! ## Event flow
//!
//! A connection that sends `subscribe` gets its own
//! [`Session::subscribe`] stream, pumped to the socket by a
//! dedicated forwarder thread (events and responses interleave on the
//! wire; frames are written atomically under the connection's writer
//! lock). Delivery per subscriber is in exact submission order — the
//! runtime's collector guarantees it, the forwarder preserves it. The
//! forwarder paces its waits so it can notice a departed peer or a
//! stopping server instead of blocking forever on an idle stream.
//!
//! ## Shutdown
//!
//! A `shutdown` request ends the *session* for everyone: the handle
//! drains, subscribers receive
//! [`Lifecycle::ShuttingDown`](ltc_core::service::Lifecycle::ShuttingDown)
//! and their streams end, the requester gets its response, and then the
//! acceptor stops. Requests on surviving connections get an error
//! response (never a hang); their threads exit when the client
//! disconnects.

use crate::wire::{self, Request, Response};
use ltc_core::service::{ServiceError, Session};
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// The boxed session every connection thread drives — any [`Session`]
/// implementation works: the in-process
/// [`ServiceHandle`](ltc_core::service::ServiceHandle), or a durability
/// wrapper layered over it.
type BoxedSession = Box<dyn Session + Send>;

/// Locks a mutex, recovering from poisoning instead of propagating it:
/// a connection thread that panicked mid-request must fail *its own*
/// connection, not wedge every other client behind a permanently
/// poisoned lock. The guarded values stay sound across a recovered
/// panic — the session rejects later calls itself once closed, and a
/// writer is just a socket.
fn lock_recovering<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How often an idle event forwarder re-checks whether its peer is gone
/// or the server is stopping (events themselves are forwarded the
/// moment they arrive; only silence costs a poll).
const FORWARDER_POLL: Duration = Duration::from_millis(100);

/// The serving state every connection thread shares.
struct Shared {
    /// The one served session. [`Session::shutdown`] leaves it inert
    /// after a shutdown request, so later calls fail with
    /// `RuntimeStopped` rather than panicking.
    session: Mutex<BoxedSession>,
    /// Set by a `shutdown` request; checked by the acceptor and the
    /// event forwarders.
    stopping: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Stops the acceptor (the flag, plus a throw-away connection to
    /// ourselves to unblock `accept`). A wildcard bind (0.0.0.0 / ::)
    /// is not connectable on every platform, so the wake-up targets
    /// loopback on the bound port instead.
    fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        let target = if self.addr.ip().is_unspecified() {
            let ip: std::net::IpAddr = if self.addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            SocketAddr::new(ip, self.addr.port())
        } else {
            self.addr
        };
        TcpStream::connect(target).ok();
    }
}

/// A bound, not-yet-running `ltc-proto v1` server over one
/// [`Session`]. [`LtcServer::run`] serves on the calling thread
/// until a client requests shutdown; [`LtcServer::spawn`] does the same
/// on a background thread (tests, and anything that needs the bound
/// address before serving).
pub struct LtcServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A server running on a background thread (see [`LtcServer::spawn`]).
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    join: JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// The bound address (resolved, so port 0 becomes the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server as a client's `shutdown` request would (session
    /// shutdown + acceptor stop) and waits for the serving thread.
    /// Idempotent with a client-sent `shutdown`.
    pub fn stop(self) -> io::Result<()> {
        {
            let mut session = lock_recovering(&self.shared.session);
            session.shutdown().ok();
        }
        self.shared.stop();
        self.join
            .join()
            .map_err(|_| io::Error::other("the server thread panicked"))?
    }

    /// Waits for the server to stop on its own (a client sent
    /// `shutdown`).
    pub fn wait(self) -> io::Result<()> {
        self.join
            .join()
            .map_err(|_| io::Error::other("the server thread panicked"))?
    }
}

impl LtcServer {
    /// Binds the listener over any [`Session`] implementation — the
    /// in-process handle, or a wrapper (durability, instrumentation)
    /// layered over it. `addr` may use port 0; read the resolved
    /// address back with [`LtcServer::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        session: impl Session + Send + 'static,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                session: Mutex::new(Box::new(session)),
                stopping: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until a client requests shutdown. Connection threads exit
    /// when their client disconnects (or promptly after the stop, for
    /// subscribed ones); they never outlive the session usefully —
    /// every request they make afterwards is answered with an error.
    pub fn run(self) -> io::Result<()> {
        loop {
            let (conn, _) = self.listener.accept()?;
            if self.shared.stopping.load(Ordering::SeqCst) {
                return Ok(());
            }
            conn.set_nodelay(true).ok();
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("ltc-serve-conn".into())
                .spawn(move || serve_connection(conn, shared))
                .ok();
        }
    }

    /// Runs the server on a background thread.
    pub fn spawn(self) -> io::Result<RunningServer> {
        let addr = self.local_addr();
        let shared = Arc::clone(&self.shared);
        let join = std::thread::Builder::new()
            .name("ltc-serve-accept".into())
            .spawn(move || self.run())
            .map_err(|_| io::Error::other("could not spawn the acceptor thread"))?;
        Ok(RunningServer { addr, shared, join })
    }
}

/// One connection, handshake to EOF. On every exit path the socket is
/// shut down (so clones held by a forwarder cannot keep the peer
/// waiting on a half-dead connection) and the forwarder is joined.
fn serve_connection(conn: TcpStream, shared: Arc<Shared>) {
    let Ok(read_half) = conn.try_clone() else {
        conn.shutdown(Shutdown::Both).ok();
        return;
    };
    let mut reader = BufReader::new(read_half);
    // Frames are written whole under this lock — responses from this
    // thread and events from the forwarder interleave only at frame
    // boundaries.
    let writer = Arc::new(Mutex::new(conn));
    let gone = Arc::new(AtomicBool::new(false));
    let mut forwarder: Option<JoinHandle<()>> = None;

    converse(&mut reader, &writer, &gone, &shared, &mut forwarder);

    gone.store(true, Ordering::SeqCst);
    lock_recovering(&writer).shutdown(Shutdown::Both).ok();
    if let Some(join) = forwarder {
        join.join().ok();
    }
}

/// The request/response loop (separated out so `serve_connection` owns
/// exactly one cleanup path).
fn converse(
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    gone: &Arc<AtomicBool>,
    shared: &Arc<Shared>,
    forwarder: &mut Option<JoinHandle<()>>,
) {
    // Handshake: exactly one hello, version-checked.
    let Ok(Some(hello)) = wire::read_frame(reader) else {
        return;
    };
    let reply = match wire::decode_hello(&hello) {
        Ok(wire::PROTO_VERSION) => {
            let session = lock_recovering(&shared.session);
            Response::Hello {
                info: session.info(),
            }
        }
        Ok(version) => Response::Err {
            message: format!(
                "unsupported {} version {version} (serving {})",
                wire::PROTO_NAME,
                wire::PROTO_VERSION
            ),
        },
        Err(what) => Response::Err {
            message: format!("bad handshake: {what}"),
        },
    };
    let fatal = matches!(reply, Response::Err { .. });
    if write_response(writer, &reply).is_err() || fatal {
        return;
    }

    loop {
        let frame = match wire::read_frame(reader) {
            Ok(Some(frame)) => frame,
            _ => return, // EOF, socket shutdown, or an oversized frame
        };
        let (response, stop_after) = match Request::decode(&frame) {
            Err(what) => (
                Response::Err {
                    message: format!("bad request: {what}"),
                },
                false,
            ),
            Ok(request) => execute(&request, shared, writer, gone, forwarder),
        };
        // The requester hears the outcome *before* the acceptor stops —
        // a `shutdown` must be acknowledged, not met with a dead socket.
        let written = write_response(writer, &response);
        if stop_after {
            shared.stop();
            return;
        }
        if written.is_err() {
            return;
        }
    }
}

fn write_response(writer: &Arc<Mutex<TcpStream>>, response: &Response) -> io::Result<()> {
    let mut frame = response.encode();
    // A response that would overflow the peer's frame cap (a snapshot of
    // an enormous service) must degrade into a recoverable error frame —
    // sending it anyway would kill the connection on the client side.
    if frame.len() >= wire::MAX_FRAME {
        frame = Response::Err {
            message: format!(
                "response of {} bytes exceeds the {}-byte frame cap",
                frame.len(),
                wire::MAX_FRAME
            ),
        }
        .encode();
    }
    let mut stream = lock_recovering(writer);
    wire::write_frame(&mut *stream, &frame)
}

fn err_response(e: ServiceError) -> Response {
    Response::Err {
        message: e.to_string(),
    }
}

/// Executes one request against the shared session, returning the
/// response and whether the server should stop once it is written.
/// Every arm locks the session for the whole operation — the lock *is*
/// the global submission order.
fn execute(
    request: &Request,
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    gone: &Arc<AtomicBool>,
    forwarder: &mut Option<JoinHandle<()>>,
) -> (Response, bool) {
    let response = match request {
        Request::Submit { worker } => {
            let mut session = lock_recovering(&shared.session);
            match session.submit_worker(worker) {
                Ok(worker) => Response::Submit { worker },
                Err(e) => err_response(e),
            }
        }
        Request::Post { task, row } => {
            let mut session = lock_recovering(&shared.session);
            let posted = match row {
                None => session.post_task(*task),
                Some(row) => session.post_task_with_accuracies(*task, row),
            };
            match posted {
                Ok(task) => Response::Post { task },
                Err(e) => err_response(e),
            }
        }
        Request::Subscribe => {
            if forwarder.is_some() {
                return (Response::Subscribe, false); // idempotent per connection
            }
            let stream = {
                let mut session = lock_recovering(&shared.session);
                match session.subscribe() {
                    Ok(stream) => stream,
                    Err(e) => return (err_response(e), false),
                }
            };
            let writer = Arc::clone(writer);
            let gone = Arc::clone(gone);
            let shared = Arc::clone(shared);
            let join = std::thread::Builder::new()
                .name("ltc-serve-events".into())
                .spawn(move || loop {
                    match stream.recv_timeout(FORWARDER_POLL) {
                        Some(event) => {
                            let frame = wire::encode_event(&event);
                            let mut sock = lock_recovering(&writer);
                            if wire::write_frame(&mut *sock, &frame).is_err() {
                                return;
                            }
                        }
                        // Idle (or the stream ended — the two are
                        // indistinguishable here): keep pacing until the
                        // peer leaves or the server stops, then let the
                        // channel drain one last time and exit.
                        None => {
                            if gone.load(Ordering::SeqCst) || shared.stopping.load(Ordering::SeqCst)
                            {
                                while let Some(event) = stream.try_recv() {
                                    let frame = wire::encode_event(&event);
                                    let mut sock = lock_recovering(&writer);
                                    if wire::write_frame(&mut *sock, &frame).is_err() {
                                        return;
                                    }
                                }
                                return;
                            }
                        }
                    }
                })
                .ok();
            match join {
                Some(join) => {
                    *forwarder = Some(join);
                    Response::Subscribe
                }
                None => Response::Err {
                    message: "could not spawn the event forwarder".into(),
                },
            }
        }
        Request::Drain => {
            let mut session = lock_recovering(&shared.session);
            match session.drain() {
                Ok(()) => Response::Drain,
                Err(e) => err_response(e),
            }
        }
        Request::Snapshot => {
            let mut session = lock_recovering(&shared.session);
            match session.snapshot() {
                Ok(snapshot) => {
                    let mut text = Vec::new();
                    match ltc_core::snapshot::write_snapshot(&snapshot, &mut text) {
                        Ok(()) => Response::Snapshot {
                            // The writer emits ASCII text.
                            text: String::from_utf8_lossy(&text).into_owned(),
                        },
                        Err(e) => Response::Err {
                            message: format!("could not serialize the snapshot: {e}"),
                        },
                    }
                }
                Err(e) => err_response(e),
            }
        }
        Request::Rebalance => {
            let mut session = lock_recovering(&shared.session);
            match session.rebalance() {
                Ok(outcome) => Response::Rebalance { outcome },
                Err(e) => err_response(e),
            }
        }
        Request::Metrics => {
            let mut session = lock_recovering(&shared.session);
            match session.metrics() {
                Ok(metrics) => Response::Metrics { metrics },
                Err(e) => err_response(e),
            }
        }
        Request::Shutdown => {
            let result = {
                let mut session = lock_recovering(&shared.session);
                session.shutdown()
            };
            return match result {
                Ok(()) => (Response::Shutdown, true),
                Err(e) => (err_response(e), false),
            };
        }
    };
    (response, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LtcClient;
    use ltc_core::model::{ProblemParams, Worker};
    use ltc_core::service::ServiceBuilder;
    use ltc_spatial::{BoundingBox, Point};

    fn test_session() -> ltc_core::service::ServiceHandle {
        let params = ProblemParams::builder()
            .epsilon(0.3)
            .capacity(1)
            .build()
            .unwrap();
        let region = BoundingBox::new(Point::ORIGIN, Point::new(100.0, 100.0));
        ServiceBuilder::new(params, region).start().unwrap()
    }

    /// Regression: a connection thread panicking while it holds the
    /// session lock used to poison the mutex for good — every later
    /// request on every other connection died unwrapping it. The lock
    /// must recover so only the offending connection fails.
    #[test]
    fn a_poisoned_session_mutex_does_not_wedge_other_clients() {
        let server = LtcServer::bind("127.0.0.1:0", test_session()).unwrap();
        let shared = Arc::clone(&server.shared);
        let running = server.spawn().unwrap();

        // Simulate the offending connection: panic while holding the
        // session lock, exactly as a request handler would.
        let poisoner = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("poisoner".into())
            .spawn(move || {
                let _guard = poisoner.session.lock().unwrap();
                panic!("connection thread dies mid-request");
            })
            .unwrap()
            .join()
            .unwrap_err();
        assert!(shared.session.is_poisoned());

        // Every later client must still get served, end to end.
        let mut client = LtcClient::connect(running.addr()).unwrap();
        let id = client
            .submit_worker(&Worker::new(Point::new(1.0, 1.0), 0.9))
            .unwrap();
        assert_eq!(id.0, 0);
        let metrics = client.metrics().unwrap();
        assert_eq!(metrics.n_workers_seen, 1);
        client.shutdown().unwrap();
        running.wait().unwrap();
    }
}
