//! The server-side session registry: named, independently-lived
//! sessions behind one `ltc serve` process.
//!
//! A [`SessionTable`] owns every session the server hosts. Each entry
//! is its own [`Session`] behind its own mutex — sessions never
//! serialize against each other, and *within* one session the lock
//! order is still the global submission order (the `v1` ordering
//! contract, now per session). The table always holds the
//! **default session** (the one `v1` clients bind through the version
//! handshake and fresh `v2` connections start on); additional sessions
//! come and go through the `v2` `open`/`close` verbs or the idle
//! reaper.
//!
//! ## Lifecycle
//!
//! ```text
//! open → serve → quiesce → evict
//! ```
//!
//! `open` builds a new session from the table's **factory** (the
//! server template, with optional per-session algorithm/shard/region
//! overrides) and registers it under its name. Eviction — an explicit
//! `close`, or the idle policy firing — removes the entry from the
//! registry first (so no new connection can bind it), then announces
//! [`Lifecycle::SessionEvicted`] to its subscribers, and shuts the
//! session down (which drains, delivers the final
//! `Lifecycle::ShuttingDown`, and stops its runtime threads). The
//! default session is immune: it is closed only by server `shutdown`.
//!
//! ## Idle policy
//!
//! A session with **zero bound connections** whose last activity is
//! older than the configured idle timeout is evicted by
//! [`SessionTable::evict_idle`] (the server runs it periodically).
//! Sessions with live bindings never expire, however quiet.

use crate::wire;
use ltc_core::service::{Algorithm, Lifecycle, ServiceError, Session, SessionInfo};
use ltc_spatial::BoundingBox;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The boxed session a table entry serves — any [`Session`]
/// implementation: the in-process
/// [`ServiceHandle`](ltc_core::service::ServiceHandle), or a wrapper
/// (durability, instrumentation) layered over it.
pub type BoxedSession = Box<dyn Session + Send>;

/// What a `v2` `open` may override relative to the server's template.
/// `None` everywhere reproduces the default session's configuration
/// (fresh state, same knobs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionConfig {
    /// Policy override (a random policy's seed rides inside
    /// [`Algorithm::Random`]).
    pub algorithm: Option<Algorithm>,
    /// Shard-count override.
    pub shards: Option<usize>,
    /// Service-region override.
    pub region: Option<BoundingBox>,
}

/// Builds a fresh session for a `v2` `open` — the server template,
/// parameterized by the request's [`SessionConfig`].
pub type SessionFactory =
    Box<dyn Fn(&SessionConfig) -> Result<BoxedSession, ServiceError> + Send + Sync>;

type EvictHook = Box<dyn Fn(&str) + Send + Sync>;

fn lock_recovering<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn refuse(what: impl Into<String>) -> ServiceError {
    ServiceError::Session(what.into())
}

/// One named session in the table. Connections hold an
/// `Arc<SessionEntry>` as their binding; the entry outlives its
/// registry slot, so a connection never dangles across an eviction —
/// it just starts seeing `RuntimeStopped` errors from the shut-down
/// session.
pub struct SessionEntry {
    name: String,
    session: Mutex<BoxedSession>,
    /// Connections currently bound to this session.
    attached: AtomicU64,
    /// Set the moment eviction begins; forwarders drain and exit on it.
    closed: AtomicBool,
    /// Last bind, unbind, or locked request — the idle clock.
    last_used: Mutex<Instant>,
}

impl SessionEntry {
    fn new(name: String, session: BoxedSession) -> Arc<Self> {
        Arc::new(Self {
            name,
            session: Mutex::new(session),
            attached: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            // ltc-lint: allow(L006) idle-eviction clock: wall-time by contract (idle_timeout is a real-time bound, never replayed)
            last_used: Mutex::new(Instant::now()),
        })
    }

    /// The session's id.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Locks the session for one request, stamping the idle clock. The
    /// lock *is* this session's global submission order; poisoning is
    /// recovered so one panicked connection cannot wedge the rest.
    pub fn lock(&self) -> MutexGuard<'_, BoxedSession> {
        *lock_recovering(&self.last_used) = Instant::now(); // ltc-lint: allow(L006) idle-eviction clock stamp, not decision input
        lock_recovering(&self.session)
    }

    /// Whether eviction has begun (event forwarders drain and exit).
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Whether a holder of the session lock panicked (test support:
    /// [`lock`](SessionEntry::lock) itself recovers).
    #[cfg(test)]
    pub(crate) fn is_poisoned(&self) -> bool {
        self.session.is_poisoned()
    }

    /// Records one more bound connection.
    pub fn bind(&self) {
        self.attached.fetch_add(1, Ordering::SeqCst);
        *lock_recovering(&self.last_used) = Instant::now(); // ltc-lint: allow(L006) idle-eviction clock stamp, not decision input
    }

    /// Records a departed connection (restarting the idle clock).
    pub fn unbind(&self) {
        self.attached.fetch_sub(1, Ordering::SeqCst);
        *lock_recovering(&self.last_used) = Instant::now(); // ltc-lint: allow(L006) idle-eviction clock stamp, not decision input
    }

    fn idle_for(&self) -> (u64, Duration) {
        let attached = self.attached.load(Ordering::SeqCst);
        let idle = lock_recovering(&self.last_used).elapsed();
        (attached, idle)
    }

    /// Quiesce and stop: drain, announce the eviction to subscribers,
    /// then shut the session down (drain → `ShuttingDown` → threads
    /// join). The explicit drain *before* the announcement makes the
    /// eviction boundary deterministic for subscribers: every
    /// submission that won the session lock ahead of this eviction has
    /// fully applied and its events are already ordered ahead of
    /// `SessionEvicted`; everything after the lock is refused whole —
    /// a racing submission is never half-visible.
    fn evict(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let mut session = lock_recovering(&self.session);
        session.drain().ok();
        session.announce_lifecycle(Lifecycle::SessionEvicted);
        session.shutdown().ok();
    }
}

/// The registry of named sessions one server process hosts. See the
/// module docs for the lifecycle; see `LtcServer::bind_table` for
/// serving one.
pub struct SessionTable {
    entries: Mutex<BTreeMap<String, Arc<SessionEntry>>>,
    factory: Option<SessionFactory>,
    max_sessions: usize,
    idle_timeout: Option<Duration>,
    evicted: AtomicU64,
    evict_hook: Option<EvictHook>,
}

impl std::fmt::Debug for SessionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTable")
            .field("sessions_open", &self.open_count())
            .field("sessions_evicted", &self.evicted_count())
            .field("max_sessions", &self.max_sessions)
            .field("idle_timeout", &self.idle_timeout)
            .finish_non_exhaustive()
    }
}

impl SessionTable {
    /// A fixed single-session table: just the default session, no
    /// factory — `open` is refused. This is what `LtcServer::bind`
    /// wraps a bare session in, preserving the `v1` serving model.
    pub fn single(default: impl Session + Send + 'static) -> Self {
        Self {
            entries: Mutex::new(BTreeMap::from([(
                wire::DEFAULT_SESSION.to_string(),
                SessionEntry::new(wire::DEFAULT_SESSION.to_string(), Box::new(default)),
            )])),
            factory: None,
            max_sessions: 1,
            idle_timeout: None,
            evicted: AtomicU64::new(0),
            evict_hook: None,
        }
    }

    /// A dynamic table: the default session plus up to
    /// `max_sessions - 1` factory-built ones (`max_sessions` counts the
    /// default; it is clamped to at least 1). `idle_timeout = None`
    /// disables the idle policy.
    pub fn with_factory(
        default: impl Session + Send + 'static,
        factory: SessionFactory,
        max_sessions: usize,
        idle_timeout: Option<Duration>,
    ) -> Self {
        Self {
            factory: Some(factory),
            max_sessions: max_sessions.max(1),
            idle_timeout,
            ..Self::single(default)
        }
    }

    /// Registers a hook observing every eviction (explicit `close` and
    /// idle expiry alike) with the evicted session's name — the CLI
    /// announces them as serve-banner NDJSON lines.
    pub fn on_evict(mut self, hook: impl Fn(&str) + Send + Sync + 'static) -> Self {
        self.evict_hook = Some(Box::new(hook));
        self
    }

    /// The configured idle timeout (the server sizes its reaper's poll
    /// from it).
    pub fn idle_timeout(&self) -> Option<Duration> {
        self.idle_timeout
    }

    /// The session a `v1` hello (or a fresh `v2` connection) binds.
    pub fn default_entry(&self) -> Arc<SessionEntry> {
        Arc::clone(
            lock_recovering(&self.entries)
                .get(wire::DEFAULT_SESSION)
                .expect("the default session is never removed"),
        )
    }

    /// Looks up a live session by name (`attach`).
    pub fn get(&self, name: &str) -> Result<Arc<SessionEntry>, ServiceError> {
        lock_recovering(&self.entries)
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| refuse(format!("no session `{name}`")))
    }

    /// Creates a named session through the factory (`open`). Refused
    /// when the name is taken or illegal, the table is full, or the
    /// server hosts a fixed session set.
    pub fn open(
        &self,
        name: &str,
        config: &SessionConfig,
    ) -> Result<Arc<SessionEntry>, ServiceError> {
        if !wire::valid_session_name(name) {
            return Err(refuse(format!("illegal session id `{name}`")));
        }
        let factory = self
            .factory
            .as_ref()
            .ok_or_else(|| refuse("this server hosts a fixed session set"))?;
        let mut entries = lock_recovering(&self.entries);
        if entries.contains_key(name) {
            return Err(refuse(format!("session `{name}` already exists")));
        }
        if entries.len() >= self.max_sessions {
            return Err(refuse(format!(
                "session capacity reached ({} of {})",
                entries.len(),
                self.max_sessions
            )));
        }
        let entry = SessionEntry::new(name.to_string(), factory(config)?);
        entries.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Evicts a named session (`close`): unregisters it, announces
    /// [`Lifecycle::SessionEvicted`] to its subscribers, and shuts it
    /// down. The default session is protected (server `shutdown` is the
    /// way to end it).
    pub fn close(&self, name: &str) -> Result<(), ServiceError> {
        if name == wire::DEFAULT_SESSION {
            return Err(refuse(
                "the default session cannot be closed (shutdown ends the server)",
            ));
        }
        let entry = lock_recovering(&self.entries)
            .remove(name)
            .ok_or_else(|| refuse(format!("no session `{name}`")))?;
        self.finish_eviction(&entry);
        Ok(())
    }

    /// Applies the idle policy once: every non-default session with no
    /// bound connections that has been idle past the timeout is
    /// evicted. Returns the evicted names (already announced through
    /// the hook). A no-op without a configured timeout.
    pub fn evict_idle(&self) -> Vec<String> {
        let Some(timeout) = self.idle_timeout else {
            return Vec::new();
        };
        let expired: Vec<Arc<SessionEntry>> = {
            let entries = lock_recovering(&self.entries);
            entries
                .values()
                .filter(|e| {
                    if e.name() == wire::DEFAULT_SESSION {
                        return false;
                    }
                    let (attached, idle) = e.idle_for();
                    attached == 0 && idle >= timeout
                })
                .map(Arc::clone)
                .collect()
        };
        let mut names = Vec::with_capacity(expired.len());
        for entry in expired {
            // Re-check under the registry lock: a connection may have
            // bound (or a close raced) since the scan.
            let still_idle = {
                let mut entries = lock_recovering(&self.entries);
                let (attached, idle) = entry.idle_for();
                if attached == 0 && idle >= timeout && entries.contains_key(entry.name()) {
                    entries.remove(entry.name());
                    true
                } else {
                    false
                }
            };
            if still_idle {
                self.finish_eviction(&entry);
                names.push(entry.name().to_string());
            }
        }
        names
    }

    fn finish_eviction(&self, entry: &SessionEntry) {
        entry.evict();
        self.evicted.fetch_add(1, Ordering::SeqCst);
        if let Some(hook) = &self.evict_hook {
            hook(entry.name());
        }
    }

    /// Live sessions right now (the default included).
    pub fn open_count(&self) -> u64 {
        lock_recovering(&self.entries).len() as u64
    }

    /// Sessions evicted over the server's lifetime (closes + idle
    /// expiries; server shutdown is not an eviction).
    pub fn evicted_count(&self) -> u64 {
        self.evicted.load(Ordering::SeqCst)
    }

    /// One [`wire::SessionStat`] per live session, in name order (the
    /// `sessions` admin verb). Briefly locks each session for its
    /// description.
    pub fn list(&self) -> Vec<wire::SessionStat> {
        let entries: Vec<Arc<SessionEntry>> = lock_recovering(&self.entries)
            .values()
            .map(Arc::clone)
            .collect();
        entries
            .iter()
            .map(|e| {
                let info = e.lock().info();
                wire::SessionStat {
                    sid: e.name().to_string(),
                    algorithm: info.algorithm,
                    n_shards: info.n_shards,
                    n_tasks: info.n_tasks,
                    attached: e.attached.load(Ordering::SeqCst),
                }
            })
            .collect()
    }

    /// Describes one live session without a connection binding (the
    /// serve banner uses it for the default session).
    pub fn info_of(&self, name: &str) -> Result<SessionInfo, ServiceError> {
        Ok(self.get(name)?.lock().info())
    }

    /// Shuts every session down (server `shutdown` / stop). Sessions
    /// stay registered so late metrics requests still resolve their
    /// binding — they answer `RuntimeStopped` from the dead sessions.
    pub fn shutdown_all(&self) -> Result<(), ServiceError> {
        let entries: Vec<Arc<SessionEntry>> = lock_recovering(&self.entries)
            .values()
            .map(Arc::clone)
            .collect();
        let mut result = Ok(());
        for entry in entries {
            entry.closed.store(true, Ordering::SeqCst);
            let outcome = lock_recovering(&entry.session).shutdown();
            if result.is_ok() {
                result = outcome;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_core::model::ProblemParams;
    use ltc_core::service::ServiceBuilder;
    use ltc_spatial::{BoundingBox, Point};
    use std::num::NonZeroUsize;

    fn handle() -> ltc_core::service::ServiceHandle {
        let params = ProblemParams::builder()
            .epsilon(0.3)
            .capacity(1)
            .build()
            .unwrap();
        let region = BoundingBox::new(Point::ORIGIN, Point::new(100.0, 100.0));
        ServiceBuilder::new(params, region).start().unwrap()
    }

    fn factory() -> SessionFactory {
        Box::new(|config: &SessionConfig| {
            let params = ProblemParams::builder()
                .epsilon(0.3)
                .capacity(1)
                .build()
                .unwrap();
            let region = config
                .region
                .unwrap_or_else(|| BoundingBox::new(Point::ORIGIN, Point::new(100.0, 100.0)));
            let mut builder = ServiceBuilder::new(params, region);
            if let Some(algorithm) = config.algorithm {
                builder = builder.algorithm(algorithm);
            }
            if let Some(shards) = config.shards {
                let shards = NonZeroUsize::new(shards)
                    .ok_or(ServiceError::Session("shards must be positive".into()))?;
                builder = builder.shards(shards);
            }
            Ok(Box::new(builder.start()?) as BoxedSession)
        })
    }

    #[test]
    fn fixed_tables_refuse_session_verbs_and_protect_the_default() {
        let table = SessionTable::single(handle());
        assert_eq!(table.open_count(), 1);
        assert!(matches!(
            table.open("extra", &SessionConfig::default()),
            Err(ServiceError::Session(_))
        ));
        assert!(matches!(
            table.close(wire::DEFAULT_SESSION),
            Err(ServiceError::Session(_))
        ));
        assert!(matches!(table.get("nope"), Err(ServiceError::Session(_))));
        table.shutdown_all().unwrap();
    }

    #[test]
    fn open_close_lifecycle_counts_and_caps() {
        let table = SessionTable::with_factory(handle(), factory(), 3, None);
        let a = table.open("a", &SessionConfig::default()).unwrap();
        table
            .open(
                "b",
                &SessionConfig {
                    shards: Some(2),
                    ..SessionConfig::default()
                },
            )
            .unwrap();
        assert_eq!(table.open_count(), 3);
        // Full: the default counts against the cap.
        assert!(table.open("c", &SessionConfig::default()).is_err());
        // Duplicate and illegal names are refused.
        assert!(table.open("a", &SessionConfig::default()).is_err());
        assert!(table.open("a b", &SessionConfig::default()).is_err());

        // Close announces the eviction to subscribers, then ends the
        // stream.
        let events = a.lock().subscribe().unwrap();
        table.close("a").unwrap();
        let seen: Vec<_> = events.collect();
        assert!(seen.contains(&ltc_core::service::StreamEvent::Lifecycle(
            Lifecycle::SessionEvicted
        )));
        assert_eq!(
            seen.last(),
            Some(&ltc_core::service::StreamEvent::Lifecycle(
                Lifecycle::ShuttingDown
            ))
        );
        assert!(a.is_closed());
        assert_eq!(table.open_count(), 2);
        assert_eq!(table.evicted_count(), 1);
        assert!(table.close("a").is_err(), "already gone");

        // The slot is reusable.
        table.open("c", &SessionConfig::default()).unwrap();
        let stats = table.list();
        assert_eq!(
            stats.iter().map(|s| s.sid.as_str()).collect::<Vec<_>>(),
            vec!["b", "c", wire::DEFAULT_SESSION]
        );
        assert_eq!(stats[0].n_shards, 2);
        table.shutdown_all().unwrap();
    }

    #[test]
    fn idle_policy_spares_bound_and_fresh_sessions() {
        let evicted_log = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&evicted_log);
        let table =
            SessionTable::with_factory(handle(), factory(), 8, Some(Duration::from_millis(0)))
                .on_evict(move |name| log.lock().unwrap().push(name.to_string()));
        let bound = table.open("bound", &SessionConfig::default()).unwrap();
        bound.bind();
        table.open("idle", &SessionConfig::default()).unwrap();
        let evicted = table.evict_idle();
        assert_eq!(evicted, vec!["idle".to_string()]);
        assert_eq!(*evicted_log.lock().unwrap(), vec!["idle".to_string()]);
        assert_eq!(table.open_count(), 2, "default + bound survive");
        bound.unbind();
        assert_eq!(table.evict_idle(), vec!["bound".to_string()]);
        assert_eq!(table.evicted_count(), 2);
        table.shutdown_all().unwrap();
    }
}
