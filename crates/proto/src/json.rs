//! A minimal, dependency-free JSON reader/writer — just enough for the
//! fixed message shapes of `ltc-proto v1` (see [`crate::wire`]).
//!
//! Like `ltc_core::snapshot`, this is hand-rolled because the build
//! environment has no crate registry; unlike a general-purpose JSON
//! library it makes two simplifying choices that the protocol leans on:
//!
//! * **Numbers stay text.** A [`Json::Num`] keeps the raw token, so
//!   64-bit ids round-trip without passing through `f64` (which would
//!   corrupt ids above 2^53). Accessors parse on demand.
//! * **Floats never appear as JSON numbers.** Protocol messages carry
//!   every `f64` as its 16-hex-digit IEEE-754 bit pattern in a string
//!   (the snapshot format's convention), so decimal formatting can never
//!   perturb a coordinate or accuracy on the wire.
//!
//! The reader is hostile-input safe: recursion is depth-capped, escapes
//! are validated, and every failure is a typed [`JsonError`] — never a
//! panic.

use std::fmt;

/// Maximum nesting depth the parser accepts (protocol messages use 3).
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (see the module docs).
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if this is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Why a frame failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the frame.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value (one protocol frame). Trailing
/// non-whitespace is an error — a frame is exactly one value.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("unknown literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("empty number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        // Validate the token now so accessors can't meet garbage like
        // `1.2.3`; the raw text is still what gets stored.
        raw.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .ok_or_else(|| self.err("malformed number"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // A surrogate pair: the low half must
                                // follow immediately as another \uXXXX.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("unescaped control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar. The frame arrived as
                    // &str and the cursor only ever stops on char
                    // boundaries, so the suffix re-validates cheaply.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("bad UTF-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("bad UTF-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-UTF-8 unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad unicode escape"))?;
        self.pos = end;
        Ok(v)
    }
}

/// Appends `text` to `out` as a JSON string literal (quotes included),
/// escaping the characters JSON requires.
pub fn push_escaped(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"op":"submit","x":"3fe0000000000000","ids":[1,2,3],"deep":{"a":null,"b":true},"n":42}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("submit"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("ids").unwrap().as_arr().unwrap().len(), 3);
        assert!(v.get("deep").unwrap().get("a").unwrap().is_null());
        assert_eq!(v.get("deep").unwrap().get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn big_ids_do_not_pass_through_f64() {
        let v = parse(r#"{"worker":18446744073709551615}"#).unwrap();
        assert_eq!(v.get("worker").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn strings_round_trip_through_escaping() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newlines\nand\ttabs",
            "unicode ✓ → λ",
            "control \u{1} char",
        ] {
            let mut lit = String::new();
            push_escaped(&mut lit, s);
            let parsed = parse(&lit).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "round-tripping {s:?}");
        }
        // Raw astral-plane text and surrogate-pair escapes both decode.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
    }

    #[test]
    fn malformed_frames_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
            "{\"a\":1} trailing",
            "nan",
            "1e999",
            &("[".repeat(100) + &"]".repeat(100)),
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
