//! The remote [`Session`] implementation: a TCP client speaking
//! `ltc-proto` (`v1`, or `v2` with its session namespace) to an
//! `ltc serve` process.

use crate::session_table::SessionConfig;
use crate::wire::{self, Request, Response, SessionStat};
use ltc_core::model::{Task, TaskId, Worker, WorkerId};
use ltc_core::service::{
    EventStream, RebalanceOutcome, ServiceError, ServiceMetrics, ServiceSnapshot, Session,
    SessionInfo, StreamEvent, WindowAck,
};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long one request may wait for its response before the session is
/// declared wedged (override per client with
/// [`LtcClient::with_timeout`]). Generous: a drain of a deep pipeline
/// legitimately takes a while, but a dead server must surface as an
/// error, not a hang (the server's own drain gives up after 60 s, so
/// 90 s covers the full round trip).
pub const DEFAULT_RESPONSE_TIMEOUT: Duration = Duration::from_secs(90);

/// Flush threshold for batched windowed sends — far above a window of
/// small frames, so it only triggers on wide `post` rows.
const SEND_BATCH_CAP: usize = 256 * 1024;

/// What kind of acknowledgement an in-flight windowed frame owes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    Submit,
    Post,
}

/// Locks the subscriber fanout, recovering from poisoning instead of
/// propagating it: a subscriber that panicked mid-send must not wedge
/// the reader thread (and with it every other subscriber) behind a
/// permanently poisoned lock. The guarded `Vec<Sender>` is sound at
/// every point a panic can unwind through — dead receivers are pruned
/// on the next fanout anyway.
fn lock_recovering<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn transport(what: impl Into<String>) -> ServiceError {
    ServiceError::Transport(what.into())
}

/// A remote LTC session over TCP — the [`Session`] implementation that
/// makes `ltc serve` reachable from another process. One connection is
/// one session view: requests are answered in order, and once
/// [`subscribe`](Session::subscribe)d, the server forwards every event
/// (in exact submission order) down the same connection, where a reader
/// thread demultiplexes them from the responses.
///
/// Everything observable is identical to driving the server's
/// [`ServiceHandle`](ltc_core::service::ServiceHandle) in process:
/// floats cross the wire as bit patterns, ids as integers, and the
/// server assigns arrival ids in request-arrival order — the loopback
/// differential tests assert byte-identical NDJSON output through both
/// paths.
///
/// A `v2` client ([`LtcClient::connect_v2`]) is additionally a citizen
/// of the server's session namespace: it starts bound to the default
/// session and can [`open_session`](LtcClient::open_session) /
/// [`attach_session`](LtcClient::attach_session) to rebind, every frame
/// it sends and receives carrying the bound session's `"sid"`.
///
/// ## Windowed submission
///
/// By default every request is lockstep: one frame out, one response
/// awaited. [`Session::set_window`] negotiates a submission window of
/// up to W (clamped to what the server's hello advertised; `v1` servers
/// advertise nothing and stay lockstep), after which
/// [`submit_worker_windowed`](Session::submit_worker_windowed) /
/// [`post_task_windowed`](Session::post_task_windowed) fire their
/// frames immediately and defer the acknowledgements. Each windowed
/// frame carries a `"seq"` correlation number the server echoes back;
/// responses arrive strictly FIFO per connection, and the client
/// verifies every echoed `"seq"` against the head of its in-flight
/// queue — a mismatch is a protocol corruption that fails the session
/// rather than reordering anything. When the window is full, the next
/// windowed call **stalls** on the oldest in-flight ack (back-pressure
/// surfaces as that stall, never as reordering); every lockstep request
/// is a sequence point that first drains the window completely.
#[derive(Debug)]
pub struct LtcClient {
    stream: TcpStream,
    responses: Receiver<Result<Response, String>>,
    subscribers: Arc<Mutex<Vec<Sender<StreamEvent>>>>,
    reader: Option<JoinHandle<()>>,
    info: SessionInfo,
    version: u64,
    /// The bound session's id (meaningful on `v2`; `v1` keeps the
    /// default it can never leave).
    sid: String,
    subscribed: bool,
    closed: bool,
    /// Per-request response deadline ([`DEFAULT_RESPONSE_TIMEOUT`]
    /// unless overridden with [`LtcClient::with_timeout`]).
    timeout: Duration,
    /// The granted submission window (1 = lockstep).
    window: usize,
    /// The largest window the server's hello advertised (1 on `v1`).
    server_window: usize,
    /// The next windowed frame's `"seq"` correlation number.
    next_seq: u64,
    /// In-flight windowed submissions, oldest first: each owes exactly
    /// one response carrying this `"seq"`.
    pending: VecDeque<(u64, PendingKind)>,
    /// Windowed frames batched for the next send: fires coalesce into
    /// one `write` per stall instead of one per frame, which is most of
    /// the windowed throughput win. Invariant: non-empty only while
    /// `pending` is non-empty, and always flushed before a blocking
    /// wait, so the server never owes a response to bytes still here.
    send_buf: Vec<u8>,
}

impl LtcClient {
    /// Connects and runs the `ltc-proto v1` handshake. The returned
    /// client is ready to submit; [`Session::subscribe`] starts the
    /// event flow.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::connect_version(addr, wire::PROTO_VERSION)
    }

    /// Connects with the `ltc-proto v2` handshake: same session surface,
    /// plus the session verbs. The connection starts bound to the
    /// server's default session.
    pub fn connect_v2(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::connect_version(addr, wire::PROTO_VERSION_V2)
    }

    fn connect_version(addr: impl ToSocketAddrs, version: u64) -> Result<Self, ServiceError> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| transport(format!("connect: {e}")))?;
        stream.set_nodelay(true).ok();
        let hello = if version == wire::PROTO_VERSION_V2 {
            wire::encode_hello_v2()
        } else {
            wire::encode_hello()
        };
        wire::write_frame(&mut stream, &hello)
            .map_err(|e| transport(format!("handshake send: {e}")))?;

        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| transport(format!("clone socket: {e}")))?,
        );
        let hello = wire::read_frame(&mut reader)
            .map_err(|e| transport(format!("handshake read: {e}")))?
            .ok_or_else(|| transport("server closed during the handshake"))?;
        let (info, advertised) = match Response::decode(&hello).map_err(transport)? {
            Response::Hello { info, win } => (info, win),
            Response::Err { message } => return Err(transport(message)),
            other => return Err(transport(format!("unexpected handshake reply {other:?}"))),
        };

        let (response_tx, responses) = mpsc::channel();
        let subscribers: Arc<Mutex<Vec<Sender<StreamEvent>>>> = Arc::new(Mutex::new(Vec::new()));
        let fanout = Arc::clone(&subscribers);
        let reader = std::thread::Builder::new()
            .name("ltc-client-reader".into())
            .spawn(move || loop {
                match wire::read_frame(&mut reader) {
                    Ok(Some(frame)) if wire::is_event_frame(&frame) => {
                        match wire::decode_event(&frame) {
                            Ok(event) => {
                                let mut subs = lock_recovering(&fanout);
                                subs.retain(|tx| tx.send(event.clone()).is_ok());
                            }
                            Err(what) => {
                                response_tx
                                    .send(Err(format!("bad event frame: {what}")))
                                    .ok();
                                return;
                            }
                        }
                    }
                    Ok(Some(frame)) => {
                        let decoded =
                            Response::decode(&frame).map_err(|what| format!("bad frame: {what}"));
                        let failed = decoded.is_err();
                        response_tx.send(decoded).ok();
                        if failed {
                            return;
                        }
                    }
                    Ok(None) => return, // clean close: drop the channels
                    Err(e) => {
                        response_tx.send(Err(format!("read: {e}"))).ok();
                        return;
                    }
                }
            })
            .map_err(|_| transport("could not spawn the reader thread"))?;

        Ok(Self {
            stream,
            responses,
            subscribers,
            reader: Some(reader),
            info,
            version,
            sid: wire::DEFAULT_SESSION.to_string(),
            subscribed: false,
            closed: false,
            timeout: DEFAULT_RESPONSE_TIMEOUT,
            window: 1,
            server_window: advertised.clamp(1, wire::MAX_WINDOW) as usize,
            next_seq: 0,
            pending: VecDeque::new(),
            send_buf: Vec::new(),
        })
    }

    /// Replaces the per-request response deadline
    /// ([`DEFAULT_RESPONSE_TIMEOUT`] otherwise): how long any await on
    /// the server — a lockstep response, a deferred windowed ack — may
    /// take before the session is declared wedged. Tests shrink this so
    /// a dead server fails in seconds, not minutes.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The largest submission window the server's hello advertised
    /// (what [`Session::set_window`] requests are clamped to; 1 on a
    /// `v1` or pre-windowing server).
    pub fn server_window(&self) -> usize {
        self.server_window
    }

    /// The currently granted submission window (1 = lockstep).
    pub fn window(&self) -> usize {
        self.window
    }

    /// How many windowed submissions are in flight right now.
    pub fn window_in_flight(&self) -> usize {
        self.pending.len()
    }

    /// The address of the serving peer.
    pub fn peer_addr(&self) -> Option<std::net::SocketAddr> {
        self.stream.peer_addr().ok()
    }

    /// The session this connection is bound to (`"default"` until a
    /// successful [`open_session`](LtcClient::open_session) or
    /// [`attach_session`](LtcClient::attach_session)).
    pub fn session_id(&self) -> &str {
        &self.sid
    }

    /// Creates (and binds to) a named session on the server — the `v2`
    /// `open` verb. Knobs left `None` in `config` inherit the server's
    /// template. Fails on a `v1` connection, after
    /// [`subscribe`](Session::subscribe), on a duplicate or illegal
    /// name, and on a full or fixed session table.
    pub fn open_session(
        &mut self,
        sid: &str,
        config: &SessionConfig,
    ) -> Result<SessionInfo, ServiceError> {
        self.require_v2()?;
        match self.request(&Request::Open {
            sid: sid.to_string(),
            algorithm: config.algorithm,
            shards: config.shards,
            region: config.region,
        })? {
            Response::Open { info } => {
                self.sid = sid.to_string();
                self.info = info.clone();
                Ok(info)
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Binds this connection to an existing named session — the `v2`
    /// `attach` verb.
    pub fn attach_session(&mut self, sid: &str) -> Result<SessionInfo, ServiceError> {
        self.require_v2()?;
        match self.request(&Request::Attach {
            sid: sid.to_string(),
        })? {
            Response::Attach { info } => {
                self.sid = sid.to_string();
                self.info = info.clone();
                Ok(info)
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Quiesces and evicts a named session — the `v2` `close` verb. The
    /// connection's own binding is untouched (closing the bound session
    /// leaves later requests failing with `RuntimeStopped`).
    pub fn close_session(&mut self, sid: &str) -> Result<(), ServiceError> {
        self.require_v2()?;
        match self.request(&Request::Close {
            sid: sid.to_string(),
        })? {
            Response::Close => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Lists the server's live sessions — the `v2` `sessions` verb.
    pub fn list_sessions(&mut self) -> Result<Vec<SessionStat>, ServiceError> {
        self.require_v2()?;
        match self.request(&Request::Sessions)? {
            Response::Sessions { sessions } => Ok(sessions),
            other => Err(Self::unexpected(other)),
        }
    }

    fn require_v2(&self) -> Result<(), ServiceError> {
        if self.version != wire::PROTO_VERSION_V2 {
            return Err(ServiceError::Session(format!(
                "session verbs require {} v{} (connect with `connect_v2`)",
                wire::PROTO_NAME,
                wire::PROTO_VERSION_V2
            )));
        }
        Ok(())
    }

    fn request(&mut self, request: &Request) -> Result<Response, ServiceError> {
        if self.closed {
            return Err(ServiceError::RuntimeStopped("the session is shut down"));
        }
        // Every lockstep request is a sequence point: the in-flight
        // window must drain first so responses keep matching requests
        // one-to-one. A deferred refusal surfaces here, before the new
        // request is sent; ids that matter should have been collected
        // with `flush_window` already.
        while !self.pending.is_empty() {
            self.await_oldest()?;
        }
        let mut frame = request.encode();
        if self.version == wire::PROTO_VERSION_V2 {
            // The session verbs already carry their target `"sid"`;
            // everything else addresses the bound session.
            let carries_sid = matches!(
                request,
                Request::Open { .. } | Request::Attach { .. } | Request::Close { .. }
            );
            if !carries_sid {
                frame = wire::with_sid(frame, &self.sid);
            }
        }
        wire::write_frame(&mut (&self.stream), &frame)
            .map_err(|e| transport(format!("send: {e}")))?;
        match self.responses.recv_timeout(self.timeout) {
            Ok(Ok(Response::Err { message })) => Err(transport(message)),
            Ok(Ok(response)) => Ok(response),
            Ok(Err(what)) => Err(transport(what)),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(transport("no response within the timeout — server wedged?"))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(transport("the server closed the connection"))
            }
        }
    }

    /// Consumes the oldest in-flight windowed acknowledgement. A server
    /// refusal (`err` frame) consumes the entry and surfaces as the
    /// submission's error; anything that breaks the FIFO/`"seq"`
    /// correspondence — a transport failure, a timeout, or an ack whose
    /// echoed `"seq"` is not the head of the window — is a protocol
    /// corruption that fails the whole session.
    fn await_oldest(&mut self) -> Result<WindowAck, ServiceError> {
        // Batched fires must be on the wire before anything blocks on
        // their responses.
        self.flush_sends()?;
        let (seq, kind) = self
            .pending
            .pop_front()
            .expect("await_oldest requires an in-flight window");
        let response = match self.responses.recv_timeout(self.timeout) {
            Ok(Ok(response)) => response,
            Ok(Err(what)) => {
                self.closed = true;
                return Err(transport(what));
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.closed = true;
                return Err(transport("no response within the timeout — server wedged?"));
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.closed = true;
                return Err(transport("the server closed the connection"));
            }
        };
        match (kind, response) {
            (_, Response::Err { message }) => Err(transport(message)),
            (
                PendingKind::Submit,
                Response::Submit {
                    worker,
                    seq: Some(got),
                },
            ) if got == seq => Ok(WindowAck::Worker(worker)),
            (
                PendingKind::Post,
                Response::Post {
                    task,
                    seq: Some(got),
                },
            ) if got == seq => Ok(WindowAck::Task(task)),
            (_, other) => {
                self.closed = true;
                Err(transport(format!(
                    "window ack out of range: expected seq {seq}, got {other:?}"
                )))
            }
        }
    }

    /// Consumes one deferred windowed acknowledgement, oldest first:
    /// `None` when nothing is in flight, otherwise the submission's
    /// outcome (its [`WindowAck`], or the error it was refused with).
    /// Finer-grained than [`Session::flush_window`] — per-submission
    /// outcomes survive an interleaved refusal.
    pub fn next_window_ack(&mut self) -> Option<Result<WindowAck, ServiceError>> {
        if self.pending.is_empty() {
            return None;
        }
        Some(self.await_oldest())
    }

    /// Fires one windowed frame (stalling on the oldest ack first if
    /// the window is full) and records its pending acknowledgement.
    fn fire_windowed(
        &mut self,
        request: &Request,
        kind: PendingKind,
        seq: u64,
    ) -> Result<Option<WindowAck>, ServiceError> {
        if self.closed {
            return Err(ServiceError::RuntimeStopped("the session is shut down"));
        }
        let acked = if self.pending.len() >= self.window {
            Some(self.await_oldest()?)
        } else {
            None
        };
        // A granted window above 1 implies a v2 connection (v1 servers
        // advertise no window), so the frame always carries the sid.
        debug_assert_eq!(self.version, wire::PROTO_VERSION_V2);
        let frame = wire::with_sid(request.encode(), &self.sid);
        self.send_buf.extend_from_slice(frame.as_bytes());
        self.send_buf.push(b'\n');
        self.pending.push_back((seq, kind));
        // Unusually large batches (posts with wide probability rows) go
        // out early rather than ballooning the buffer.
        if self.send_buf.len() >= SEND_BATCH_CAP {
            self.flush_sends()?;
        }
        Ok(acked)
    }

    /// Puts every batched windowed frame on the wire in one `write`. A
    /// torn send breaks the frame/response correspondence for good —
    /// it fails the session, not just one submission.
    fn flush_sends(&mut self) -> Result<(), ServiceError> {
        if self.send_buf.is_empty() {
            return Ok(());
        }
        use std::io::Write as _;
        let result = (&self.stream).write_all(&self.send_buf);
        self.send_buf.clear();
        if let Err(e) = result {
            self.closed = true;
            return Err(transport(format!("send: {e}")));
        }
        Ok(())
    }

    fn unexpected(response: Response) -> ServiceError {
        transport(format!("out-of-order response {response:?}"))
    }
}

impl Session for LtcClient {
    fn info(&self) -> SessionInfo {
        self.info.clone()
    }

    fn submit_worker(&mut self, worker: &Worker) -> Result<WorkerId, ServiceError> {
        match self.request(&Request::Submit {
            worker: *worker,
            seq: None,
        })? {
            Response::Submit { worker, seq: None } => Ok(worker),
            other => Err(Self::unexpected(other)),
        }
    }

    fn post_task(&mut self, task: Task) -> Result<TaskId, ServiceError> {
        match self.request(&Request::Post {
            task,
            row: None,
            seq: None,
        })? {
            Response::Post { task, seq: None } => Ok(task),
            other => Err(Self::unexpected(other)),
        }
    }

    fn post_task_with_accuracies(
        &mut self,
        task: Task,
        accuracies: &[f64],
    ) -> Result<TaskId, ServiceError> {
        match self.request(&Request::Post {
            task,
            row: Some(accuracies.to_vec()),
            seq: None,
        })? {
            Response::Post { task, seq: None } => Ok(task),
            other => Err(Self::unexpected(other)),
        }
    }

    fn set_window(&mut self, window: usize) -> Result<usize, ServiceError> {
        if self.closed {
            return Err(ServiceError::RuntimeStopped("the session is shut down"));
        }
        // Resizing is a sequence point too: the old window drains under
        // its own discipline before the new one applies.
        while !self.pending.is_empty() {
            self.await_oldest()?;
        }
        self.window = window.clamp(1, self.server_window);
        Ok(self.window)
    }

    fn submit_worker_windowed(
        &mut self,
        worker: &Worker,
    ) -> Result<Option<WindowAck>, ServiceError> {
        if self.window <= 1 {
            return self
                .submit_worker(worker)
                .map(|id| Some(WindowAck::Worker(id)));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.fire_windowed(
            &Request::Submit {
                worker: *worker,
                seq: Some(seq),
            },
            PendingKind::Submit,
            seq,
        )
    }

    fn post_task_windowed(&mut self, task: Task) -> Result<Option<WindowAck>, ServiceError> {
        if self.window <= 1 {
            return self.post_task(task).map(|id| Some(WindowAck::Task(id)));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.fire_windowed(
            &Request::Post {
                task,
                row: None,
                seq: Some(seq),
            },
            PendingKind::Post,
            seq,
        )
    }

    fn flush_window(&mut self) -> Result<Vec<WindowAck>, ServiceError> {
        let mut acks = Vec::with_capacity(self.pending.len());
        while !self.pending.is_empty() {
            acks.push(self.await_oldest()?);
        }
        Ok(acks)
    }

    fn subscribe(&mut self) -> Result<EventStream, ServiceError> {
        // Register the local receiver *before* the wire round trip: the
        // server may race an event frame ahead of the Subscribe response
        // (another client's submission committing just after the
        // server-side subscribe), and the reader thread must already
        // have somewhere to deliver it. The server forwards each event
        // once per connection; local subscribers fan out from the reader
        // thread, so only the first subscription crosses the wire.
        let (tx, rx) = mpsc::channel();
        lock_recovering(&self.subscribers).push(tx);
        if !self.subscribed {
            match self.request(&Request::Subscribe) {
                Ok(Response::Subscribe) => self.subscribed = true,
                Ok(other) => {
                    lock_recovering(&self.subscribers).pop();
                    return Err(Self::unexpected(other));
                }
                Err(e) => {
                    lock_recovering(&self.subscribers).pop();
                    return Err(e);
                }
            }
        }
        Ok(EventStream::from_receiver(rx))
    }

    fn drain(&mut self) -> Result<(), ServiceError> {
        match self.request(&Request::Drain)? {
            Response::Drain => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    fn snapshot(&mut self) -> Result<ServiceSnapshot, ServiceError> {
        match self.request(&Request::Snapshot)? {
            Response::Snapshot { text } => ltc_core::snapshot::read_snapshot(text.as_bytes())
                .map_err(|e| transport(format!("undecodable snapshot from the server: {e}"))),
            other => Err(Self::unexpected(other)),
        }
    }

    fn rebalance(&mut self) -> Result<Option<RebalanceOutcome>, ServiceError> {
        match self.request(&Request::Rebalance)? {
            Response::Rebalance { outcome } => Ok(outcome),
            other => Err(Self::unexpected(other)),
        }
    }

    fn metrics(&mut self) -> Result<ServiceMetrics, ServiceError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { metrics } => Ok(metrics),
            other => Err(Self::unexpected(other)),
        }
    }

    fn shutdown(&mut self) -> Result<(), ServiceError> {
        if self.closed {
            return Ok(());
        }
        // Settle the window first, swallowing deferred refusals — a
        // shutdown must not be derailed by a submission the server
        // already answered with an error (transport failures mark the
        // client closed and end the loop).
        while !self.pending.is_empty() && !self.closed {
            let _ = self.await_oldest();
        }
        if self.closed {
            return Ok(());
        }
        let result = match self.request(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            other => Err(Self::unexpected(other)),
        };
        self.closed = true;
        self.stream.shutdown(Shutdown::Both).ok();
        if let Some(join) = self.reader.take() {
            join.join().ok();
        }
        result
    }
}

impl Drop for LtcClient {
    /// Closes the connection (the server keeps serving its other
    /// clients) and joins the reader thread.
    fn drop(&mut self) {
        self.stream.shutdown(Shutdown::Both).ok();
        if let Some(join) = self.reader.take() {
            join.join().ok();
        }
    }
}
