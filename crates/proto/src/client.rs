//! The remote [`Session`] implementation: a TCP client speaking
//! `ltc-proto` (`v1`, or `v2` with its session namespace) to an
//! `ltc serve` process.

use crate::session_table::SessionConfig;
use crate::wire::{self, Request, Response, SessionStat};
use ltc_core::model::{Task, TaskId, Worker, WorkerId};
use ltc_core::service::{
    EventStream, RebalanceOutcome, ServiceError, ServiceMetrics, ServiceSnapshot, Session,
    SessionInfo, StreamEvent,
};
use std::io::BufReader;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long one request may wait for its response before the session is
/// declared wedged. Generous: a drain of a deep pipeline legitimately
/// takes a while, but a dead server must surface as an error, not a
/// hang (the server's own drain gives up after 60 s, so 90 s covers the
/// full round trip).
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(90);

fn transport(what: impl Into<String>) -> ServiceError {
    ServiceError::Transport(what.into())
}

/// A remote LTC session over TCP — the [`Session`] implementation that
/// makes `ltc serve` reachable from another process. One connection is
/// one session view: requests are answered in order, and once
/// [`subscribe`](Session::subscribe)d, the server forwards every event
/// (in exact submission order) down the same connection, where a reader
/// thread demultiplexes them from the responses.
///
/// Everything observable is identical to driving the server's
/// [`ServiceHandle`](ltc_core::service::ServiceHandle) in process:
/// floats cross the wire as bit patterns, ids as integers, and the
/// server assigns arrival ids in request-arrival order — the loopback
/// differential tests assert byte-identical NDJSON output through both
/// paths.
///
/// A `v2` client ([`LtcClient::connect_v2`]) is additionally a citizen
/// of the server's session namespace: it starts bound to the default
/// session and can [`open_session`](LtcClient::open_session) /
/// [`attach_session`](LtcClient::attach_session) to rebind, every frame
/// it sends and receives carrying the bound session's `"sid"`.
#[derive(Debug)]
pub struct LtcClient {
    stream: TcpStream,
    responses: Receiver<Result<Response, String>>,
    subscribers: Arc<Mutex<Vec<Sender<StreamEvent>>>>,
    reader: Option<JoinHandle<()>>,
    info: SessionInfo,
    version: u64,
    /// The bound session's id (meaningful on `v2`; `v1` keeps the
    /// default it can never leave).
    sid: String,
    subscribed: bool,
    closed: bool,
}

impl LtcClient {
    /// Connects and runs the `ltc-proto v1` handshake. The returned
    /// client is ready to submit; [`Session::subscribe`] starts the
    /// event flow.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::connect_version(addr, wire::PROTO_VERSION)
    }

    /// Connects with the `ltc-proto v2` handshake: same session surface,
    /// plus the session verbs. The connection starts bound to the
    /// server's default session.
    pub fn connect_v2(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        Self::connect_version(addr, wire::PROTO_VERSION_V2)
    }

    fn connect_version(addr: impl ToSocketAddrs, version: u64) -> Result<Self, ServiceError> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| transport(format!("connect: {e}")))?;
        stream.set_nodelay(true).ok();
        let hello = if version == wire::PROTO_VERSION_V2 {
            wire::encode_hello_v2()
        } else {
            wire::encode_hello()
        };
        wire::write_frame(&mut stream, &hello)
            .map_err(|e| transport(format!("handshake send: {e}")))?;

        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| transport(format!("clone socket: {e}")))?,
        );
        let hello = wire::read_frame(&mut reader)
            .map_err(|e| transport(format!("handshake read: {e}")))?
            .ok_or_else(|| transport("server closed during the handshake"))?;
        let info = match Response::decode(&hello).map_err(transport)? {
            Response::Hello { info } => info,
            Response::Err { message } => return Err(transport(message)),
            other => return Err(transport(format!("unexpected handshake reply {other:?}"))),
        };

        let (response_tx, responses) = mpsc::channel();
        let subscribers: Arc<Mutex<Vec<Sender<StreamEvent>>>> = Arc::new(Mutex::new(Vec::new()));
        let fanout = Arc::clone(&subscribers);
        let reader = std::thread::Builder::new()
            .name("ltc-client-reader".into())
            .spawn(move || loop {
                match wire::read_frame(&mut reader) {
                    Ok(Some(frame)) if wire::is_event_frame(&frame) => {
                        match wire::decode_event(&frame) {
                            Ok(event) => {
                                let mut subs = fanout.lock().unwrap();
                                subs.retain(|tx| tx.send(event.clone()).is_ok());
                            }
                            Err(what) => {
                                response_tx
                                    .send(Err(format!("bad event frame: {what}")))
                                    .ok();
                                return;
                            }
                        }
                    }
                    Ok(Some(frame)) => {
                        let decoded =
                            Response::decode(&frame).map_err(|what| format!("bad frame: {what}"));
                        let failed = decoded.is_err();
                        response_tx.send(decoded).ok();
                        if failed {
                            return;
                        }
                    }
                    Ok(None) => return, // clean close: drop the channels
                    Err(e) => {
                        response_tx.send(Err(format!("read: {e}"))).ok();
                        return;
                    }
                }
            })
            .map_err(|_| transport("could not spawn the reader thread"))?;

        Ok(Self {
            stream,
            responses,
            subscribers,
            reader: Some(reader),
            info,
            version,
            sid: wire::DEFAULT_SESSION.to_string(),
            subscribed: false,
            closed: false,
        })
    }

    /// The address of the serving peer.
    pub fn peer_addr(&self) -> Option<std::net::SocketAddr> {
        self.stream.peer_addr().ok()
    }

    /// The session this connection is bound to (`"default"` until a
    /// successful [`open_session`](LtcClient::open_session) or
    /// [`attach_session`](LtcClient::attach_session)).
    pub fn session_id(&self) -> &str {
        &self.sid
    }

    /// Creates (and binds to) a named session on the server — the `v2`
    /// `open` verb. Knobs left `None` in `config` inherit the server's
    /// template. Fails on a `v1` connection, after
    /// [`subscribe`](Session::subscribe), on a duplicate or illegal
    /// name, and on a full or fixed session table.
    pub fn open_session(
        &mut self,
        sid: &str,
        config: &SessionConfig,
    ) -> Result<SessionInfo, ServiceError> {
        self.require_v2()?;
        match self.request(&Request::Open {
            sid: sid.to_string(),
            algorithm: config.algorithm,
            shards: config.shards,
            region: config.region,
        })? {
            Response::Open { info } => {
                self.sid = sid.to_string();
                self.info = info.clone();
                Ok(info)
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Binds this connection to an existing named session — the `v2`
    /// `attach` verb.
    pub fn attach_session(&mut self, sid: &str) -> Result<SessionInfo, ServiceError> {
        self.require_v2()?;
        match self.request(&Request::Attach {
            sid: sid.to_string(),
        })? {
            Response::Attach { info } => {
                self.sid = sid.to_string();
                self.info = info.clone();
                Ok(info)
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Quiesces and evicts a named session — the `v2` `close` verb. The
    /// connection's own binding is untouched (closing the bound session
    /// leaves later requests failing with `RuntimeStopped`).
    pub fn close_session(&mut self, sid: &str) -> Result<(), ServiceError> {
        self.require_v2()?;
        match self.request(&Request::Close {
            sid: sid.to_string(),
        })? {
            Response::Close => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Lists the server's live sessions — the `v2` `sessions` verb.
    pub fn list_sessions(&mut self) -> Result<Vec<SessionStat>, ServiceError> {
        self.require_v2()?;
        match self.request(&Request::Sessions)? {
            Response::Sessions { sessions } => Ok(sessions),
            other => Err(Self::unexpected(other)),
        }
    }

    fn require_v2(&self) -> Result<(), ServiceError> {
        if self.version != wire::PROTO_VERSION_V2 {
            return Err(ServiceError::Session(format!(
                "session verbs require {} v{} (connect with `connect_v2`)",
                wire::PROTO_NAME,
                wire::PROTO_VERSION_V2
            )));
        }
        Ok(())
    }

    fn request(&mut self, request: &Request) -> Result<Response, ServiceError> {
        if self.closed {
            return Err(ServiceError::RuntimeStopped("the session is shut down"));
        }
        let mut frame = request.encode();
        if self.version == wire::PROTO_VERSION_V2 {
            // The session verbs already carry their target `"sid"`;
            // everything else addresses the bound session.
            let carries_sid = matches!(
                request,
                Request::Open { .. } | Request::Attach { .. } | Request::Close { .. }
            );
            if !carries_sid {
                frame = wire::with_sid(frame, &self.sid);
            }
        }
        wire::write_frame(&mut (&self.stream), &frame)
            .map_err(|e| transport(format!("send: {e}")))?;
        match self.responses.recv_timeout(RESPONSE_TIMEOUT) {
            Ok(Ok(Response::Err { message })) => Err(transport(message)),
            Ok(Ok(response)) => Ok(response),
            Ok(Err(what)) => Err(transport(what)),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(transport("no response within the timeout — server wedged?"))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(transport("the server closed the connection"))
            }
        }
    }

    fn unexpected(response: Response) -> ServiceError {
        transport(format!("out-of-order response {response:?}"))
    }
}

impl Session for LtcClient {
    fn info(&self) -> SessionInfo {
        self.info.clone()
    }

    fn submit_worker(&mut self, worker: &Worker) -> Result<WorkerId, ServiceError> {
        match self.request(&Request::Submit { worker: *worker })? {
            Response::Submit { worker } => Ok(worker),
            other => Err(Self::unexpected(other)),
        }
    }

    fn post_task(&mut self, task: Task) -> Result<TaskId, ServiceError> {
        match self.request(&Request::Post { task, row: None })? {
            Response::Post { task } => Ok(task),
            other => Err(Self::unexpected(other)),
        }
    }

    fn post_task_with_accuracies(
        &mut self,
        task: Task,
        accuracies: &[f64],
    ) -> Result<TaskId, ServiceError> {
        match self.request(&Request::Post {
            task,
            row: Some(accuracies.to_vec()),
        })? {
            Response::Post { task } => Ok(task),
            other => Err(Self::unexpected(other)),
        }
    }

    fn subscribe(&mut self) -> Result<EventStream, ServiceError> {
        // Register the local receiver *before* the wire round trip: the
        // server may race an event frame ahead of the Subscribe response
        // (another client's submission committing just after the
        // server-side subscribe), and the reader thread must already
        // have somewhere to deliver it. The server forwards each event
        // once per connection; local subscribers fan out from the reader
        // thread, so only the first subscription crosses the wire.
        let (tx, rx) = mpsc::channel();
        self.subscribers.lock().unwrap().push(tx);
        if !self.subscribed {
            match self.request(&Request::Subscribe) {
                Ok(Response::Subscribe) => self.subscribed = true,
                Ok(other) => {
                    self.subscribers.lock().unwrap().pop();
                    return Err(Self::unexpected(other));
                }
                Err(e) => {
                    self.subscribers.lock().unwrap().pop();
                    return Err(e);
                }
            }
        }
        Ok(EventStream::from_receiver(rx))
    }

    fn drain(&mut self) -> Result<(), ServiceError> {
        match self.request(&Request::Drain)? {
            Response::Drain => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    fn snapshot(&mut self) -> Result<ServiceSnapshot, ServiceError> {
        match self.request(&Request::Snapshot)? {
            Response::Snapshot { text } => ltc_core::snapshot::read_snapshot(text.as_bytes())
                .map_err(|e| transport(format!("undecodable snapshot from the server: {e}"))),
            other => Err(Self::unexpected(other)),
        }
    }

    fn rebalance(&mut self) -> Result<Option<RebalanceOutcome>, ServiceError> {
        match self.request(&Request::Rebalance)? {
            Response::Rebalance { outcome } => Ok(outcome),
            other => Err(Self::unexpected(other)),
        }
    }

    fn metrics(&mut self) -> Result<ServiceMetrics, ServiceError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { metrics } => Ok(metrics),
            other => Err(Self::unexpected(other)),
        }
    }

    fn shutdown(&mut self) -> Result<(), ServiceError> {
        if self.closed {
            return Ok(());
        }
        let result = match self.request(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            other => Err(Self::unexpected(other)),
        };
        self.closed = true;
        self.stream.shutdown(Shutdown::Both).ok();
        if let Some(join) = self.reader.take() {
            join.join().ok();
        }
        result
    }
}

impl Drop for LtcClient {
    /// Closes the connection (the server keeps serving its other
    /// clients) and joins the reader thread.
    fn drop(&mut self) {
        self.stream.shutdown(Shutdown::Both).ok();
        if let Some(join) = self.reader.take() {
            join.join().ok();
        }
    }
}
