//! The `ltc-proto` message vocabulary and its NDJSON codec (versions
//! [`PROTO_VERSION`] and [`PROTO_VERSION_V2`]).
//!
//! ## Framing
//!
//! A connection is a bidirectional stream of **frames**: one JSON object
//! per line, `\n`-delimited, at most [`MAX_FRAME`] bytes (the delimiter
//! bounds each frame; readers enforce the cap *while* reading, so a
//! hostile peer cannot balloon memory). The first frame in each
//! direction is the version handshake:
//!
//! ```text
//! client → {"proto":"ltc-proto","v":1}
//! server → {"proto":"ltc-proto","v":1,"info":{…}}     (or {"err":…} + close)
//! ```
//!
//! After the handshake the client sends [`Request`] frames (`"op"` key)
//! and the server answers each with exactly one [`Response`] frame
//! (`"ok"` or `"err"` key), in request order per connection. Once a
//! connection has subscribed, [`StreamEvent`] frames (`"ev"` key) flow
//! server→client interleaved between responses; the `"ev"`/`"ok"`/
//! `"err"` key is the demultiplexer.
//!
//! ## Sessions (`v2`)
//!
//! A `v2` connection speaks to a **named session** on a multi-session
//! server. The handshake is `{"proto":"ltc-proto","v":2}`, the
//! connection starts bound to the [`DEFAULT_SESSION`], and the
//! session verbs [`Request::Open`] / [`Request::Attach`] /
//! [`Request::Close`] / [`Request::Sessions`] manage the server's
//! session table. Every `v2` request, response, and event frame carries
//! the session id as a trailing `"sid"` member ([`with_sid`]); `v1`
//! frames stay byte-identical to what they always were, and a `v1`
//! hello binds the default session.
//!
//! ## Windowed submission (`v2`)
//!
//! A `v2` server advertises the largest submission window it accepts as
//! a `"win"` member of its hello response ([`MAX_WINDOW`]; absent means
//! 1, i.e. lockstep only). A windowed client then fires up to that many
//! `submit`/`post` frames without awaiting their responses, tagging
//! each with a monotonically increasing `"seq"` member; the server
//! echoes the `"seq"` back on the matching response, so the client can
//! verify the FIFO response order against its in-flight window. `"seq"`
//! never changes what an operation does — untagged `v2` frames (and all
//! of `v1`, where `"seq"` is refused like `"sid"`) stay lockstep and
//! byte-identical to what they always were.
//!
//! ## Exactness
//!
//! Every `f64` crosses the wire as its 16-hex-digit IEEE-754 bit
//! pattern inside a JSON string (the `ltc-snapshot v1` convention), so
//! a remote session observes bit-identical accuracies, gains, and
//! coordinates — the property the byte-identical NDJSON differential
//! tests rest on. Ids and counters are plain JSON integers (the parser
//! keeps them out of `f64`, so the full `u64` range is safe).
//!
//! ## Compatibility policy
//!
//! See `docs/PROTOCOL.md` for the full grammar. In short: `v1` evolves
//! by adding optional object members (readers ignore unknown members);
//! anything else bumps `v`, and a server refuses unknown versions in
//! the handshake rather than guessing.

use crate::json::{self, Json};
use ltc_core::model::{ProblemParams, QualityModel, Task, TaskId, Worker, WorkerId};
use ltc_core::service::{
    Algorithm, Event, Lifecycle, RebalanceOutcome, ServiceMetrics, SessionInfo, StreamEvent,
};
use ltc_spatial::{BoundingBox, Point};
use std::io::{self, BufRead, Read, Write};

/// The protocol name, sent in both handshake frames.
pub const PROTO_NAME: &str = "ltc-proto";
/// The baseline protocol version: one implicit session per server.
pub const PROTO_VERSION: u64 = 1;
/// The session-namespace protocol version: named sessions behind one
/// server, a `"sid"` member on every frame.
pub const PROTO_VERSION_V2: u64 = 2;
/// The session a `v1` hello (or a fresh `v2` connection) is bound to.
pub const DEFAULT_SESSION: &str = "default";
/// The largest submission window a server grants (and advertises in its
/// `v2` hello response): how many `submit`/`post` frames one connection
/// may have in flight before it must await an acknowledgement.
pub const MAX_WINDOW: u64 = 256;

/// Whether `name` is a legal session id: 1–64 ASCII characters from
/// `[A-Za-z0-9._-]`. The restriction keeps session ids free of JSON
/// escapes, so they can ride every frame verbatim.
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Appends the trailing `"sid"` member every `v2` frame carries. The
/// frame must be one JSON object (every encoder here emits exactly
/// that) and the sid a [`valid_session_name`], so no escaping is
/// needed.
pub fn with_sid(frame: String, sid: &str) -> String {
    debug_assert!(frame.ends_with('}'), "{frame}");
    debug_assert!(valid_session_name(sid), "{sid}");
    let mut out = frame;
    out.pop();
    out.push_str(",\"sid\":\"");
    out.push_str(sid);
    out.push_str("\"}");
    out
}

/// The `"sid"` member of a frame, if present and well-formed.
pub fn frame_sid(v: &Json) -> Result<Option<&str>, WireError> {
    match v.get("sid") {
        None => Ok(None),
        Some(sid) => {
            let sid = sid.as_str().ok_or("non-string `sid`")?;
            if !valid_session_name(sid) {
                return Err(format!("illegal session id `{sid}`"));
            }
            Ok(Some(sid))
        }
    }
}
/// Upper bound on one frame, delimiter included (64 MiB — snapshots of
/// large services travel as a single frame).
pub const MAX_FRAME: usize = 1 << 26;

/// A decode failure: what was wrong with the offending frame.
pub type WireError = String;

/// Renders an `f64` as its 16-hex-digit IEEE-754 bit pattern — the
/// `ltc-snapshot v1` / `ltc-proto v1` exactness convention, shared by
/// every layer that persists or transmits floats (the `ltc-durable`
/// write-ahead log reuses it verbatim).
pub fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses a [`hex`]-rendered bit pattern back into the identical `f64`,
/// rejecting anything that is not exactly 16 hex digits inside a JSON
/// string.
pub fn unhex(field: &'static str, v: Option<&Json>) -> Result<f64, WireError> {
    let s = v
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string `{field}`"))?;
    if s.len() != 16 {
        return Err(format!("`{field}` is not a 16-hex-digit f64 bit pattern"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("`{field}` is not a 16-hex-digit f64 bit pattern"))
}

fn uint(field: &'static str, v: Option<&Json>) -> Result<u64, WireError> {
    v.and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer `{field}`"))
}

fn word<'a>(field: &'static str, v: Option<&'a Json>) -> Result<&'a str, WireError> {
    v.and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string `{field}`"))
}

// ---------------------------------------------------------------------
// Exact-layout fast paths for the two frame shapes that dominate a
// streaming connection: the submission request and its acknowledgement.
// Each accepts precisely the byte layout our own encoders emit (fixed
// member order, optional `"seq"`/`"sid"` tails) and decodes to exactly
// what the generic JSON route would produce; any deviation returns
// `None` and falls back to the generic parser, so foreign-but-valid
// framings still work and hostile input hits the same guarded path it
// always did. The differential unit test pins the agreement.

/// Consumes exactly 16 hex digits (a [`hex`]-rendered `f64`).
fn eat_hex16(rest: &[u8]) -> Option<(f64, &[u8])> {
    if rest.len() < 16 {
        return None;
    }
    let (digits, rest) = rest.split_at(16);
    let mut bits = 0u64;
    for &b in digits {
        bits = (bits << 4) | (b as char).to_digit(16)? as u64;
    }
    Some((f64::from_bits(bits), rest))
}

/// Consumes a canonical JSON unsigned integer (no sign, no leading
/// zeros — anything else falls back to the generic parser).
fn eat_u64(rest: &[u8]) -> Option<(u64, &[u8])> {
    let end = rest
        .iter()
        .position(|b| !b.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 || (end > 1 && rest[0] == b'0') {
        return None;
    }
    let n: u64 = std::str::from_utf8(&rest[..end]).ok()?.parse().ok()?;
    Some((n, &rest[end..]))
}

/// Consumes the optional `,"seq":N` tail.
fn eat_seq(rest: &[u8]) -> Option<(Option<u64>, &[u8])> {
    match rest.strip_prefix(b",\"seq\":") {
        None => Some((None, rest)),
        Some(r) => {
            let (n, r) = eat_u64(r)?;
            Some((Some(n), r))
        }
    }
}

/// Consumes the optional `,"sid":"name"` tail ([`valid_session_name`]
/// enforced, like [`frame_sid`]).
fn eat_sid(rest: &[u8]) -> Option<(Option<&str>, &[u8])> {
    match rest.strip_prefix(b",\"sid\":\"") {
        None => Some((None, rest)),
        Some(r) => {
            let quote = r.iter().position(|&b| b == b'"')?;
            let name = std::str::from_utf8(&r[..quote]).ok()?;
            if !valid_session_name(name) {
                return None;
            }
            Some((Some(name), &r[quote + 1..]))
        }
    }
}

/// The submission-request fast path (see the block comment above).
fn fast_decode_submit(frame: &str) -> Option<(Request, Option<String>)> {
    let rest = frame
        .as_bytes()
        .strip_prefix(b"{\"op\":\"submit\",\"x\":\"")?;
    let (x, rest) = eat_hex16(rest)?;
    let rest = rest.strip_prefix(b"\",\"y\":\"")?;
    let (y, rest) = eat_hex16(rest)?;
    let rest = rest.strip_prefix(b"\",\"acc\":\"")?;
    let (acc, rest) = eat_hex16(rest)?;
    let rest = rest.strip_prefix(b"\"")?;
    let (seq, rest) = eat_seq(rest)?;
    let (sid, rest) = eat_sid(rest)?;
    if rest != b"}" {
        return None;
    }
    Some((
        Request::Submit {
            worker: Worker::new(Point::new(x, y), acc),
            seq,
        },
        sid.map(str::to_owned),
    ))
}

/// The acknowledgement fast path (see the block comment above): the
/// `submit`/`post` success responses, whose `"sid"` the client ignores
/// exactly like the generic route does.
fn fast_decode_ack(frame: &str) -> Option<Response> {
    let bytes = frame.as_bytes();
    let (is_submit, rest) = if let Some(r) = bytes.strip_prefix(b"{\"ok\":\"submit\",\"worker\":") {
        (true, r)
    } else if let Some(r) = bytes.strip_prefix(b"{\"ok\":\"post\",\"task\":") {
        (false, r)
    } else {
        return None;
    };
    let (id, rest) = eat_u64(rest)?;
    let (seq, rest) = eat_seq(rest)?;
    let (_sid, rest) = eat_sid(rest)?;
    if rest != b"}" {
        return None;
    }
    Some(if is_submit {
        Response::Submit {
            worker: WorkerId(id),
            seq,
        }
    } else {
        Response::Post {
            // The generic route truncates the same way (`as u32`).
            task: TaskId(id as u32),
            seq,
        }
    })
}

/// Reads one frame (without its trailing `\n`), enforcing [`MAX_FRAME`]
/// while reading. `Ok(None)` is a clean end of stream at a frame
/// boundary; a frame truncated by EOF or overflowing the cap is an
/// error.
pub fn read_frame<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut limited = reader.take(MAX_FRAME as u64);
    let n = limited.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            if n >= MAX_FRAME {
                "frame exceeds the protocol size cap"
            } else {
                "connection closed mid-frame"
            },
        ));
    }
    buf.pop();
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Writes one frame and flushes it (frames are the unit of progress;
/// buffering across them would deadlock lockstep request/response use).
pub fn write_frame<W: Write>(writer: &mut W, frame: &str) -> io::Result<()> {
    debug_assert!(!frame.contains('\n'), "frames are single lines");
    writer.write_all(frame.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// The client half of the version handshake.
pub fn encode_hello() -> String {
    format!("{{\"proto\":\"{PROTO_NAME}\",\"v\":{PROTO_VERSION}}}")
}

/// The client half of a `v2` handshake.
pub fn encode_hello_v2() -> String {
    format!("{{\"proto\":\"{PROTO_NAME}\",\"v\":{PROTO_VERSION_V2}}}")
}

/// The server half of a `v2` handshake (the caller appends the bound
/// session's sid with [`with_sid`], like on every other `v2` frame).
/// `win` advertises the largest submission window the server grants
/// (1 = lockstep only; servers built here say [`MAX_WINDOW`]).
pub fn encode_hello_response_v2(info: &SessionInfo, win: u64) -> String {
    let mut out = format!("{{\"proto\":\"{PROTO_NAME}\",\"v\":{PROTO_VERSION_V2},\"info\":");
    encode_info(&mut out, info);
    out.push_str(&format!(",\"win\":{win}"));
    out.push('}');
    out
}

/// Validates a client hello, returning the version it asked for.
pub fn decode_hello(frame: &str) -> Result<u64, WireError> {
    let v = json::parse(frame).map_err(|e| e.to_string())?;
    if word("proto", v.get("proto"))? != PROTO_NAME {
        return Err("not an ltc-proto handshake".into());
    }
    uint("v", v.get("v"))
}

/// A client→server operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `submit_worker`.
    Submit {
        /// The check-in.
        worker: Worker,
        /// `v2` windowed submission: the client's correlation number,
        /// echoed on the response. `None` = lockstep (all of `v1`).
        seq: Option<u64>,
    },
    /// `post_task` (with the accuracy-table row under tabular models).
    Post {
        /// The task.
        task: Task,
        /// Per-worker accuracies, when the model is tabular.
        row: Option<Vec<f64>>,
        /// `v2` windowed submission correlation number (see
        /// [`Request::Submit`]).
        seq: Option<u64>,
    },
    /// Start forwarding events on this connection.
    Subscribe,
    /// `drain`.
    Drain,
    /// `snapshot` (the reply embeds `ltc-snapshot v1` text).
    Snapshot,
    /// `rebalance`.
    Rebalance,
    /// `metrics`.
    Metrics,
    /// End the served session.
    Shutdown,
    /// `v2`: create a named session in the server's session table and
    /// bind this connection to it. Absent knobs inherit the server's
    /// template (the configuration its default session was built from).
    Open {
        /// The new session's id.
        sid: String,
        /// Policy override (its seed rides inside
        /// [`Algorithm::Random`]).
        algorithm: Option<Algorithm>,
        /// Shard-count override.
        shards: Option<usize>,
        /// Service-region override.
        region: Option<BoundingBox>,
    },
    /// `v2`: bind this connection to an existing named session.
    Attach {
        /// The target session's id.
        sid: String,
    },
    /// `v2`: quiesce and evict a named session (its subscribers see
    /// [`Lifecycle::SessionEvicted`] and then the stream ends). The
    /// default session cannot be closed — `shutdown` ends the server.
    Close {
        /// The doomed session's id.
        sid: String,
    },
    /// `v2`: list the server's live sessions.
    Sessions,
}

impl Request {
    /// Serializes the request as one frame.
    pub fn encode(&self) -> String {
        match self {
            Request::Submit { worker, seq } => {
                let mut out = format!(
                    "{{\"op\":\"submit\",\"x\":\"{}\",\"y\":\"{}\",\"acc\":\"{}\"",
                    hex(worker.loc.x),
                    hex(worker.loc.y),
                    hex(worker.accuracy)
                );
                if let Some(seq) = seq {
                    out.push_str(&format!(",\"seq\":{seq}"));
                }
                out.push('}');
                out
            }
            Request::Post { task, row, seq } => {
                let mut out = format!(
                    "{{\"op\":\"post\",\"x\":\"{}\",\"y\":\"{}\"",
                    hex(task.loc.x),
                    hex(task.loc.y)
                );
                if let Some(row) = row {
                    out.push_str(",\"row\":[");
                    for (i, &a) in row.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('"');
                        out.push_str(&hex(a));
                        out.push('"');
                    }
                    out.push(']');
                }
                if let Some(seq) = seq {
                    out.push_str(&format!(",\"seq\":{seq}"));
                }
                out.push('}');
                out
            }
            Request::Subscribe => "{\"op\":\"subscribe\"}".into(),
            Request::Drain => "{\"op\":\"drain\"}".into(),
            Request::Snapshot => "{\"op\":\"snapshot\"}".into(),
            Request::Rebalance => "{\"op\":\"rebalance\"}".into(),
            Request::Metrics => "{\"op\":\"metrics\"}".into(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".into(),
            Request::Open {
                sid,
                algorithm,
                shards,
                region,
            } => {
                let mut out = format!("{{\"op\":\"open\",\"sid\":\"{sid}\"");
                if let Some(algorithm) = algorithm {
                    out.push(',');
                    encode_algorithm(&mut out, *algorithm);
                }
                if let Some(shards) = shards {
                    out.push_str(&format!(",\"shards\":{shards}"));
                }
                if let Some(region) = region {
                    out.push_str(&format!(
                        ",\"region\":[\"{}\",\"{}\",\"{}\",\"{}\"]",
                        hex(region.min.x),
                        hex(region.min.y),
                        hex(region.max.x),
                        hex(region.max.y)
                    ));
                }
                out.push('}');
                out
            }
            Request::Attach { sid } => format!("{{\"op\":\"attach\",\"sid\":\"{sid}\"}}"),
            Request::Close { sid } => format!("{{\"op\":\"close\",\"sid\":\"{sid}\"}}"),
            Request::Sessions => "{\"op\":\"sessions\"}".into(),
        }
    }

    /// Parses a request frame, also returning its `"sid"` member — the
    /// session a `v2` request addresses (for the session verbs, the
    /// target session). `None` on `v1` frames.
    pub fn decode_with_sid(frame: &str) -> Result<(Request, Option<String>), WireError> {
        if let Some(decoded) = fast_decode_submit(frame) {
            return Ok(decoded);
        }
        let v = json::parse(frame).map_err(|e| e.to_string())?;
        let sid = frame_sid(&v)?.map(str::to_owned);
        let request = Self::decode_value(&v)?;
        Ok((request, sid))
    }

    /// Parses a request frame.
    pub fn decode(frame: &str) -> Result<Request, WireError> {
        if let Some((request, _)) = fast_decode_submit(frame) {
            return Ok(request);
        }
        let v = json::parse(frame).map_err(|e| e.to_string())?;
        Self::decode_value(&v)
    }

    fn decode_value(v: &Json) -> Result<Request, WireError> {
        match word("op", v.get("op"))? {
            "submit" => Ok(Request::Submit {
                worker: Worker::new(
                    Point::new(unhex("x", v.get("x"))?, unhex("y", v.get("y"))?),
                    unhex("acc", v.get("acc"))?,
                ),
                seq: optional_seq(v)?,
            }),
            "post" => {
                let task = Task::new(Point::new(unhex("x", v.get("x"))?, unhex("y", v.get("y"))?));
                let row = match v.get("row") {
                    None => None,
                    Some(row) => {
                        let items = row.as_arr().ok_or("`row` must be an array")?;
                        let mut out = Vec::with_capacity(items.len());
                        for item in items {
                            out.push(unhex("row entry", Some(item))?);
                        }
                        Some(out)
                    }
                };
                Ok(Request::Post {
                    task,
                    row,
                    seq: optional_seq(v)?,
                })
            }
            "subscribe" => Ok(Request::Subscribe),
            "drain" => Ok(Request::Drain),
            "snapshot" => Ok(Request::Snapshot),
            "rebalance" => Ok(Request::Rebalance),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "open" => Ok(Request::Open {
                sid: required_sid(v)?,
                algorithm: match v.get("algo") {
                    None => None,
                    Some(_) => Some(decode_algorithm(v)?),
                },
                shards: match v.get("shards") {
                    None => None,
                    Some(_) => Some(uint("shards", v.get("shards"))? as usize),
                },
                region: match v.get("region") {
                    None => None,
                    Some(region) => {
                        let corners = region.as_arr().filter(|a| a.len() == 4).ok_or(
                            "`region` must be a 4-element [min_x,min_y,max_x,max_y] array",
                        )?;
                        Some(BoundingBox::new(
                            Point::new(
                                unhex("region entry", Some(&corners[0]))?,
                                unhex("region entry", Some(&corners[1]))?,
                            ),
                            Point::new(
                                unhex("region entry", Some(&corners[2]))?,
                                unhex("region entry", Some(&corners[3]))?,
                            ),
                        ))
                    }
                },
            }),
            "attach" => Ok(Request::Attach {
                sid: required_sid(v)?,
            }),
            "close" => Ok(Request::Close {
                sid: required_sid(v)?,
            }),
            "sessions" => Ok(Request::Sessions),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// The optional `"seq"` correlation member of a windowed `submit`/
/// `post` frame (and its response). Absent is lockstep; present but
/// malformed is a protocol error, never a silent fallback.
fn optional_seq(v: &Json) -> Result<Option<u64>, WireError> {
    match v.get("seq") {
        None => Ok(None),
        Some(seq) => seq
            .as_u64()
            .map(Some)
            .ok_or_else(|| "non-integer `seq`".into()),
    }
}

/// The mandatory `"sid"` of a session verb.
fn required_sid(v: &Json) -> Result<String, WireError> {
    frame_sid(v)?
        .map(str::to_owned)
        .ok_or_else(|| "missing `sid`".into())
}

/// A server→client reply. Exactly one per [`Request`], in request order
/// per connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The handshake reply, describing the served session.
    Hello {
        /// The session description.
        info: SessionInfo,
        /// The largest submission window the server grants (absent on
        /// the wire means 1 — lockstep only; see [`MAX_WINDOW`]).
        win: u64,
    },
    /// A worker was accepted under this arrival id.
    Submit {
        /// The service-global arrival id.
        worker: WorkerId,
        /// The windowed request's `"seq"`, echoed back (see
        /// [`Request::Submit`]); `None` on lockstep responses.
        seq: Option<u64>,
    },
    /// A task was accepted under this global id.
    Post {
        /// The service-global task id.
        task: TaskId,
        /// The windowed request's `"seq"`, echoed back.
        seq: Option<u64>,
    },
    /// Events will now flow on this connection.
    Subscribe,
    /// Every prior submission is processed and delivered.
    Drain,
    /// The quiesced session state as `ltc-snapshot v1` text.
    Snapshot {
        /// The snapshot document.
        text: String,
    },
    /// What the rebalance did (`None`: nothing to move).
    Rebalance {
        /// The migration summary.
        outcome: Option<RebalanceOutcome>,
    },
    /// Live operational counters.
    Metrics {
        /// The counters.
        metrics: ServiceMetrics,
    },
    /// The session ended.
    Shutdown,
    /// `v2`: a session was created and this connection bound to it.
    Open {
        /// The new session's description.
        info: SessionInfo,
    },
    /// `v2`: this connection is now bound to the named session.
    Attach {
        /// The bound session's description.
        info: SessionInfo,
    },
    /// `v2`: the named session was quiesced and evicted.
    Close,
    /// `v2`: the server's live sessions.
    Sessions {
        /// One entry per live session, in session-name order.
        sessions: Vec<SessionStat>,
    },
    /// The operation failed; the session (and connection) remain usable
    /// unless the message says otherwise.
    Err {
        /// Human-readable failure description.
        message: String,
    },
}

/// One row of a `v2` `sessions` listing.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStat {
    /// The session's id.
    pub sid: String,
    /// The policy it runs.
    pub algorithm: Algorithm,
    /// Its shard count.
    pub n_shards: usize,
    /// Tasks it currently holds.
    pub n_tasks: u64,
    /// Connections currently bound to it.
    pub attached: u64,
}

fn encode_algorithm(out: &mut String, algorithm: Algorithm) {
    let (name, seed) = match algorithm {
        Algorithm::Laf => ("laf", None),
        Algorithm::Aam => ("aam", None),
        Algorithm::AamLgf => ("aam-lgf", None),
        Algorithm::AamLrf => ("aam-lrf", None),
        Algorithm::Random { seed } => ("random", Some(seed)),
    };
    out.push_str(&format!("\"algo\":\"{name}\""));
    if let Some(seed) = seed {
        out.push_str(&format!(",\"seed\":{seed}"));
    }
}

fn decode_algorithm(v: &Json) -> Result<Algorithm, WireError> {
    match word("algo", v.get("algo"))? {
        "laf" => Ok(Algorithm::Laf),
        "aam" => Ok(Algorithm::Aam),
        "aam-lgf" => Ok(Algorithm::AamLgf),
        "aam-lrf" => Ok(Algorithm::AamLrf),
        "random" => Ok(Algorithm::Random {
            seed: uint("seed", v.get("seed"))?,
        }),
        other => Err(format!("unknown algorithm `{other}`")),
    }
}

fn encode_info(out: &mut String, info: &SessionInfo) {
    out.push('{');
    encode_algorithm(out, info.algorithm);
    let p = &info.params;
    out.push_str(&format!(
        ",\"shards\":{},\"tasks\":{},\"params\":{{\"epsilon\":\"{}\",\"capacity\":{},\
         \"d_max\":\"{}\",\"min_accuracy\":\"{}\",\"eligibility\":\"{}\",\"quality\":",
        info.n_shards,
        info.n_tasks,
        hex(p.epsilon),
        p.capacity,
        hex(p.d_max),
        hex(p.min_accuracy),
        match p.eligibility {
            ltc_core::model::Eligibility::WithinRange => "within",
            ltc_core::model::Eligibility::Unrestricted => "unrestricted",
        },
    ));
    match p.quality {
        QualityModel::Hoeffding => out.push_str("\"hoeffding\""),
        QualityModel::FixedThreshold(th) => out.push_str(&format!("{{\"fixed\":\"{}\"}}", hex(th))),
    }
    out.push_str("}}");
}

fn decode_info(v: &Json) -> Result<SessionInfo, WireError> {
    let algorithm = decode_algorithm(v)?;
    let p = v.get("params").ok_or("missing `params`")?;
    let params = ProblemParams {
        epsilon: unhex("epsilon", p.get("epsilon"))?,
        capacity: uint("capacity", p.get("capacity"))? as u32,
        d_max: unhex("d_max", p.get("d_max"))?,
        min_accuracy: unhex("min_accuracy", p.get("min_accuracy"))?,
        eligibility: match word("eligibility", p.get("eligibility"))? {
            "within" => ltc_core::model::Eligibility::WithinRange,
            "unrestricted" => ltc_core::model::Eligibility::Unrestricted,
            other => return Err(format!("unknown eligibility `{other}`")),
        },
        quality: match p.get("quality") {
            Some(Json::Str(s)) if s == "hoeffding" => QualityModel::Hoeffding,
            Some(q) if q.get("fixed").is_some() => {
                QualityModel::FixedThreshold(unhex("fixed", q.get("fixed"))?)
            }
            _ => return Err("missing or unknown `quality`".into()),
        },
    };
    Ok(SessionInfo {
        algorithm,
        params,
        n_shards: uint("shards", v.get("shards"))? as usize,
        n_tasks: uint("tasks", v.get("tasks"))?,
    })
}

fn push_u64_array(out: &mut String, key: &str, values: &[u64]) {
    out.push_str(&format!(",\"{key}\":["));
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn u64_array(field: &'static str, v: Option<&Json>) -> Result<Vec<u64>, WireError> {
    let items = v
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array `{field}`"))?;
    items
        .iter()
        .map(|i| {
            i.as_u64()
                .ok_or_else(|| format!("non-integer in `{field}`"))
        })
        .collect()
}

fn usize_array(field: &'static str, v: Option<&Json>) -> Result<Vec<usize>, WireError> {
    Ok(u64_array(field, v)?
        .into_iter()
        .map(|v| v as usize)
        .collect())
}

impl Response {
    /// Serializes the response as one frame.
    pub fn encode(&self) -> String {
        match self {
            Response::Hello { info, win } => {
                let mut out =
                    format!("{{\"proto\":\"{PROTO_NAME}\",\"v\":{PROTO_VERSION},\"info\":");
                encode_info(&mut out, info);
                // The `v1` hello never advertised a window; keep it
                // byte-identical for the lockstep-only default.
                if *win != 1 {
                    out.push_str(&format!(",\"win\":{win}"));
                }
                out.push('}');
                out
            }
            Response::Submit { worker, seq } => {
                let mut out = format!("{{\"ok\":\"submit\",\"worker\":{}", worker.0);
                if let Some(seq) = seq {
                    out.push_str(&format!(",\"seq\":{seq}"));
                }
                out.push('}');
                out
            }
            Response::Post { task, seq } => {
                let mut out = format!("{{\"ok\":\"post\",\"task\":{}", task.0);
                if let Some(seq) = seq {
                    out.push_str(&format!(",\"seq\":{seq}"));
                }
                out.push('}');
                out
            }
            Response::Subscribe => "{\"ok\":\"subscribe\"}".into(),
            Response::Drain => "{\"ok\":\"drain\"}".into(),
            Response::Snapshot { text } => {
                let mut out = String::with_capacity(text.len() + 32);
                out.push_str("{\"ok\":\"snapshot\",\"data\":");
                json::push_escaped(&mut out, text);
                out.push('}');
                out
            }
            Response::Rebalance { outcome } => match outcome {
                None => "{\"ok\":\"rebalance\",\"outcome\":null}".into(),
                Some(o) => {
                    let mut out = format!(
                        "{{\"ok\":\"rebalance\",\"outcome\":{{\"moved\":{}",
                        o.moved_tasks
                    );
                    push_u64_array(&mut out, "loads", &o.live_loads);
                    let starts: Vec<u64> = o.stripe_starts.iter().map(|&s| s as u64).collect();
                    push_u64_array(&mut out, "starts", &starts);
                    out.push_str("}}");
                    out
                }
            },
            Response::Metrics { metrics: m } => {
                let mut out = format!(
                    "{{\"ok\":\"metrics\",\"workers\":{},\"assignments\":{},\"tasks\":{},\
                     \"completed\":{},\"clamped\":{},\"rebalances\":{}",
                    m.n_workers_seen,
                    m.n_assignments,
                    m.n_tasks,
                    m.n_completed,
                    m.clamped_insertions,
                    m.rebalances
                );
                push_u64_array(&mut out, "loads", &m.shard_loads);
                match m.latency {
                    Some(l) => out.push_str(&format!(",\"latency\":{l}")),
                    None => out.push_str(",\"latency\":null"),
                }
                out.push_str(&format!(
                    ",\"wal\":{},\"checkpoints\":{},\"sessions_open\":{},\
                     \"sessions_evicted\":{}}}",
                    m.wal_records, m.checkpoints, m.sessions_open, m.sessions_evicted
                ));
                out
            }
            Response::Shutdown => "{\"ok\":\"shutdown\"}".into(),
            Response::Open { info } => {
                let mut out = String::from("{\"ok\":\"open\",\"info\":");
                encode_info(&mut out, info);
                out.push('}');
                out
            }
            Response::Attach { info } => {
                let mut out = String::from("{\"ok\":\"attach\",\"info\":");
                encode_info(&mut out, info);
                out.push('}');
                out
            }
            Response::Close => "{\"ok\":\"close\"}".into(),
            Response::Sessions { sessions } => {
                let mut out = String::from("{\"ok\":\"sessions\",\"sessions\":[");
                for (i, s) in sessions.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{{\"sid\":\"{}\",", s.sid));
                    encode_algorithm(&mut out, s.algorithm);
                    out.push_str(&format!(
                        ",\"shards\":{},\"tasks\":{},\"attached\":{}}}",
                        s.n_shards, s.n_tasks, s.attached
                    ));
                }
                out.push_str("]}");
                out
            }
            Response::Err { message } => {
                let mut out = String::from("{\"err\":");
                json::push_escaped(&mut out, message);
                out.push('}');
                out
            }
        }
    }

    /// Parses a response frame (which must not be an event frame).
    pub fn decode(frame: &str) -> Result<Response, WireError> {
        if let Some(response) = fast_decode_ack(frame) {
            return Ok(response);
        }
        Self::decode_generic(frame)
    }

    /// The generic JSON route [`Response::decode`] falls back to when
    /// the frame is not a hot-path acknowledgement (also exercised
    /// directly by the fast-path differential test).
    fn decode_generic(frame: &str) -> Result<Response, WireError> {
        let v = json::parse(frame).map_err(|e| e.to_string())?;
        if let Some(message) = v.get("err") {
            return Ok(Response::Err {
                message: message.as_str().unwrap_or("unspecified failure").into(),
            });
        }
        if v.get("proto").is_some() {
            let version = uint("v", v.get("v"))?;
            if version != PROTO_VERSION && version != PROTO_VERSION_V2 {
                return Err(format!(
                    "server speaks {PROTO_NAME} v{version}, this client v{PROTO_VERSION}\
                     /v{PROTO_VERSION_V2}"
                ));
            }
            return Ok(Response::Hello {
                info: decode_info(v.get("info").ok_or("missing `info`")?)?,
                // Absent on pre-windowing servers (and every v1 hello):
                // lockstep only, per the add-optional-members policy.
                // Present-but-malformed is refused, not coerced — a
                // garbled advertisement means a garbled peer.
                win: match v.get("win") {
                    None => 1,
                    Some(w) => w.as_u64().ok_or("non-integer `win`")?.max(1),
                },
            });
        }
        match word("ok", v.get("ok"))? {
            "submit" => Ok(Response::Submit {
                worker: WorkerId(uint("worker", v.get("worker"))?),
                seq: optional_seq(&v)?,
            }),
            "post" => Ok(Response::Post {
                task: TaskId(uint("task", v.get("task"))? as u32),
                seq: optional_seq(&v)?,
            }),
            "subscribe" => Ok(Response::Subscribe),
            "drain" => Ok(Response::Drain),
            "snapshot" => Ok(Response::Snapshot {
                text: word("data", v.get("data"))?.to_string(),
            }),
            "rebalance" => {
                let outcome = v.get("outcome").ok_or("missing `outcome`")?;
                if outcome.is_null() {
                    Ok(Response::Rebalance { outcome: None })
                } else {
                    Ok(Response::Rebalance {
                        outcome: Some(RebalanceOutcome {
                            moved_tasks: uint("moved", outcome.get("moved"))?,
                            live_loads: u64_array("loads", outcome.get("loads"))?,
                            stripe_starts: usize_array("starts", outcome.get("starts"))?,
                        }),
                    })
                }
            }
            "metrics" => Ok(Response::Metrics {
                metrics: ServiceMetrics {
                    n_workers_seen: uint("workers", v.get("workers"))?,
                    n_assignments: uint("assignments", v.get("assignments"))?,
                    n_tasks: uint("tasks", v.get("tasks"))?,
                    n_completed: uint("completed", v.get("completed"))?,
                    clamped_insertions: uint("clamped", v.get("clamped"))?,
                    rebalances: uint("rebalances", v.get("rebalances"))?,
                    shard_loads: u64_array("loads", v.get("loads"))?,
                    latency: match v.get("latency") {
                        Some(Json::Null) => None,
                        other => Some(uint("latency", other)?),
                    },
                    // Added after v1 shipped: absent on frames from
                    // older peers, so default rather than reject.
                    wal_records: v.get("wal").and_then(Json::as_u64).unwrap_or(0),
                    checkpoints: v.get("checkpoints").and_then(Json::as_u64).unwrap_or(0),
                    sessions_open: v.get("sessions_open").and_then(Json::as_u64).unwrap_or(0),
                    sessions_evicted: v
                        .get("sessions_evicted")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                },
            }),
            "shutdown" => Ok(Response::Shutdown),
            "open" => Ok(Response::Open {
                info: decode_info(v.get("info").ok_or("missing `info`")?)?,
            }),
            "attach" => Ok(Response::Attach {
                info: decode_info(v.get("info").ok_or("missing `info`")?)?,
            }),
            "close" => Ok(Response::Close),
            "sessions" => {
                let items = v
                    .get("sessions")
                    .and_then(Json::as_arr)
                    .ok_or("missing or non-array `sessions`")?;
                let mut sessions = Vec::with_capacity(items.len());
                for s in items {
                    sessions.push(SessionStat {
                        sid: required_sid(s)?,
                        algorithm: decode_algorithm(s)?,
                        n_shards: uint("shards", s.get("shards"))? as usize,
                        n_tasks: uint("tasks", s.get("tasks"))?,
                        attached: uint("attached", s.get("attached"))?,
                    });
                }
                Ok(Response::Sessions { sessions })
            }
            other => Err(format!("unknown response `{other}`")),
        }
    }
}

/// Whether a frame is an event frame (`"ev"` key) — the server→client
/// demultiplexer: event frames interleave between responses once a
/// connection subscribes.
pub fn is_event_frame(frame: &str) -> bool {
    // Cheap structural probe; the real parse happens in decode_event.
    frame.starts_with("{\"ev\":")
}

/// Serializes one subscription delivery as an event frame.
pub fn encode_event(event: &StreamEvent) -> String {
    match event {
        StreamEvent::Worker { worker, events } => {
            let mut out = format!("{{\"ev\":\"worker\",\"worker\":{},\"batch\":[", worker.0);
            for (i, e) in events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match e {
                    Event::Assigned {
                        task, acc, gain, ..
                    } => out.push_str(&format!(
                        "{{\"k\":\"assign\",\"task\":{},\"acc\":\"{}\",\"gain\":\"{}\"}}",
                        task.0,
                        hex(*acc),
                        hex(*gain)
                    )),
                    Event::TaskCompleted { task, latency } => out.push_str(&format!(
                        "{{\"k\":\"done\",\"task\":{},\"latency\":{latency}}}",
                        task.0
                    )),
                    Event::WorkerIdle { .. } => out.push_str("{\"k\":\"idle\"}"),
                }
            }
            out.push_str("]}");
            out
        }
        StreamEvent::TaskPosted { task } => format!("{{\"ev\":\"task\",\"task\":{}}}", task.0),
        StreamEvent::Lifecycle(l) => match l {
            Lifecycle::Drained { workers_seen } => {
                format!("{{\"ev\":\"life\",\"kind\":\"drained\",\"workers\":{workers_seen}}}")
            }
            Lifecycle::ShardStalled { shard, capacity } => format!(
                "{{\"ev\":\"life\",\"kind\":\"stalled\",\"shard\":{shard},\
                 \"capacity\":{capacity}}}"
            ),
            Lifecycle::TaskOutOfRegion { task } => {
                format!("{{\"ev\":\"life\",\"kind\":\"oor\",\"task\":{}}}", task.0)
            }
            Lifecycle::Rebalanced {
                moved_tasks,
                max_load,
                mean_load,
            } => format!(
                "{{\"ev\":\"life\",\"kind\":\"rebalanced\",\"moved\":{moved_tasks},\
                 \"max\":{max_load},\"mean\":\"{}\"}}",
                hex(*mean_load)
            ),
            Lifecycle::Checkpointed { seq } => {
                format!("{{\"ev\":\"life\",\"kind\":\"checkpointed\",\"seq\":{seq}}}")
            }
            Lifecycle::SessionEvicted => "{\"ev\":\"life\",\"kind\":\"evicted\"}".into(),
            Lifecycle::ShuttingDown => "{\"ev\":\"life\",\"kind\":\"bye\"}".into(),
        },
    }
}

/// Parses an event frame back into the typed delivery.
pub fn decode_event(frame: &str) -> Result<StreamEvent, WireError> {
    let v = json::parse(frame).map_err(|e| e.to_string())?;
    match word("ev", v.get("ev"))? {
        "worker" => {
            let worker = WorkerId(uint("worker", v.get("worker"))?);
            let batch = v
                .get("batch")
                .and_then(Json::as_arr)
                .ok_or("missing or non-array `batch`")?;
            let mut events = Vec::with_capacity(batch.len());
            for e in batch {
                events.push(match word("k", e.get("k"))? {
                    "assign" => Event::Assigned {
                        worker,
                        task: TaskId(uint("task", e.get("task"))? as u32),
                        acc: unhex("acc", e.get("acc"))?,
                        gain: unhex("gain", e.get("gain"))?,
                    },
                    "done" => Event::TaskCompleted {
                        task: TaskId(uint("task", e.get("task"))? as u32),
                        latency: uint("latency", e.get("latency"))?,
                    },
                    "idle" => Event::WorkerIdle { worker },
                    other => return Err(format!("unknown batch entry `{other}`")),
                });
            }
            Ok(StreamEvent::Worker { worker, events })
        }
        "task" => Ok(StreamEvent::TaskPosted {
            task: TaskId(uint("task", v.get("task"))? as u32),
        }),
        "life" => Ok(StreamEvent::Lifecycle(match word("kind", v.get("kind"))? {
            "drained" => Lifecycle::Drained {
                workers_seen: uint("workers", v.get("workers"))?,
            },
            "stalled" => Lifecycle::ShardStalled {
                shard: uint("shard", v.get("shard"))? as usize,
                capacity: uint("capacity", v.get("capacity"))? as usize,
            },
            "oor" => Lifecycle::TaskOutOfRegion {
                task: TaskId(uint("task", v.get("task"))? as u32),
            },
            "rebalanced" => Lifecycle::Rebalanced {
                moved_tasks: uint("moved", v.get("moved"))?,
                max_load: uint("max", v.get("max"))?,
                mean_load: unhex("mean", v.get("mean"))?,
            },
            "checkpointed" => Lifecycle::Checkpointed {
                seq: uint("seq", v.get("seq"))?,
            },
            "evicted" => Lifecycle::SessionEvicted,
            "bye" => Lifecycle::ShuttingDown,
            other => return Err(format!("unknown lifecycle kind `{other}`")),
        })),
        other => Err(format!("unknown event `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_core::model::Eligibility;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Submit {
                worker: Worker::new(Point::new(1.5, -0.25), 0.875),
                seq: None,
            },
            Request::Submit {
                worker: Worker::new(Point::new(1.5, -0.25), 0.875),
                seq: Some(u64::MAX),
            },
            Request::Post {
                task: Task::new(Point::new(f64::MIN_POSITIVE, 1e300)),
                row: None,
                seq: None,
            },
            Request::Post {
                task: Task::new(Point::new(0.1, 0.2)),
                row: Some(vec![0.9, 0.5 + f64::EPSILON, 0.0]),
                seq: Some(0),
            },
            Request::Subscribe,
            Request::Drain,
            Request::Snapshot,
            Request::Rebalance,
            Request::Metrics,
            Request::Shutdown,
            Request::Open {
                sid: "region-7".into(),
                algorithm: None,
                shards: None,
                region: None,
            },
            Request::Open {
                sid: "a".into(),
                algorithm: Some(Algorithm::Random { seed: 42 }),
                shards: Some(4),
                region: Some(ltc_spatial::BoundingBox::new(
                    Point::new(-1.5, 0.0),
                    Point::new(1e300, 2.25),
                )),
            },
            Request::Attach { sid: "a".into() },
            Request::Close { sid: "a".into() },
            Request::Sessions,
        ];
        for req in cases {
            let frame = req.encode();
            assert_eq!(Request::decode(&frame).unwrap(), req, "{frame}");
        }
    }

    #[test]
    fn sid_rides_any_frame_and_round_trips() {
        let framed = with_sid(Request::Drain.encode(), "s-1");
        assert_eq!(framed, "{\"op\":\"drain\",\"sid\":\"s-1\"}");
        let (req, sid) = Request::decode_with_sid(&framed).unwrap();
        assert_eq!(req, Request::Drain);
        assert_eq!(sid.as_deref(), Some("s-1"));
        // v1 frames carry no sid.
        assert_eq!(
            Request::decode_with_sid(&Request::Drain.encode())
                .unwrap()
                .1,
            None
        );
        // The session verbs surface their target through the same member.
        let (_, sid) = Request::decode_with_sid("{\"op\":\"attach\",\"sid\":\"x\"}").unwrap();
        assert_eq!(sid.as_deref(), Some("x"));
        // Responses and events take the member the same way.
        let ok = with_sid(Response::Drain.encode(), "s-1");
        assert_eq!(ok, "{\"ok\":\"drain\",\"sid\":\"s-1\"}");
        assert_eq!(Response::decode(&ok).unwrap(), Response::Drain);
        let ev = with_sid(
            encode_event(&StreamEvent::TaskPosted { task: TaskId(3) }),
            "s-1",
        );
        assert!(is_event_frame(&ev), "{ev}");
        assert_eq!(
            decode_event(&ev).unwrap(),
            StreamEvent::TaskPosted { task: TaskId(3) }
        );
        // Illegal ids are rejected, not smuggled.
        assert!(Request::decode_with_sid("{\"op\":\"drain\",\"sid\":\"a b\"}").is_err());
        assert!(Request::decode_with_sid("{\"op\":\"attach\",\"sid\":7}").is_err());
        assert!(Request::decode("{\"op\":\"attach\"}").is_err());
        assert!(!valid_session_name(""));
        assert!(!valid_session_name(&"x".repeat(65)));
        assert!(!valid_session_name("a\"b"));
        assert!(valid_session_name("Region_7.east-2"));
    }

    #[test]
    fn responses_round_trip() {
        let info = SessionInfo {
            algorithm: Algorithm::Random { seed: u64::MAX },
            params: ProblemParams {
                epsilon: 0.3,
                capacity: 2,
                d_max: 30.0,
                min_accuracy: 0.66,
                eligibility: Eligibility::WithinRange,
                quality: QualityModel::Hoeffding,
            },
            n_shards: 4,
            n_tasks: 17,
        };
        let info2 = info.clone();
        let info3 = info.clone();
        let info4 = info.clone();
        let cases = vec![
            Response::Hello { info, win: 1 },
            Response::Hello {
                info: info4,
                win: MAX_WINDOW,
            },
            Response::Submit {
                worker: WorkerId(u64::MAX),
                seq: None,
            },
            Response::Submit {
                worker: WorkerId(3),
                seq: Some(17),
            },
            Response::Post {
                task: TaskId(7),
                seq: None,
            },
            Response::Post {
                task: TaskId(7),
                seq: Some(u64::MAX),
            },
            Response::Subscribe,
            Response::Drain,
            Response::Snapshot {
                text: "ltc-snapshot v1\nparams …\nend\n".into(),
            },
            Response::Rebalance { outcome: None },
            Response::Rebalance {
                outcome: Some(RebalanceOutcome {
                    moved_tasks: 9,
                    live_loads: vec![3, 0, 5],
                    stripe_starts: vec![0, 4, 9],
                }),
            },
            Response::Metrics {
                metrics: ServiceMetrics {
                    n_workers_seen: 100,
                    n_assignments: 42,
                    n_tasks: 10,
                    n_completed: 10,
                    clamped_insertions: 3,
                    rebalances: 1,
                    shard_loads: vec![0, 0],
                    latency: Some(97),
                    wal_records: 1234,
                    checkpoints: 5,
                    sessions_open: 3,
                    sessions_evicted: 2,
                },
            },
            Response::Metrics {
                metrics: ServiceMetrics::default(),
            },
            Response::Shutdown,
            Response::Open { info: info2 },
            Response::Attach { info: info3 },
            Response::Close,
            Response::Sessions { sessions: vec![] },
            Response::Sessions {
                sessions: vec![
                    SessionStat {
                        sid: "default".into(),
                        algorithm: Algorithm::Laf,
                        n_shards: 1,
                        n_tasks: 24,
                        attached: 2,
                    },
                    SessionStat {
                        sid: "region-7".into(),
                        algorithm: Algorithm::Random { seed: 9 },
                        n_shards: 4,
                        n_tasks: 0,
                        attached: 0,
                    },
                ],
            },
            Response::Err {
                message: "engine error: task has a non-finite location".into(),
            },
        ];
        for resp in cases {
            let frame = resp.encode();
            assert!(!frame.contains('\n'), "{frame}");
            assert_eq!(Response::decode(&frame).unwrap(), resp, "{frame}");
        }
    }

    #[test]
    fn events_round_trip_bit_exactly() {
        let w = WorkerId(3);
        let cases = vec![
            StreamEvent::Worker {
                worker: w,
                events: vec![
                    Event::Assigned {
                        worker: w,
                        task: TaskId(1),
                        acc: 0.951_234_567_890_123_4,
                        gain: (2.0 * 0.951_234_567_890_123_4f64 - 1.0).powi(2),
                    },
                    Event::TaskCompleted {
                        task: TaskId(1),
                        latency: 4,
                    },
                ],
            },
            StreamEvent::Worker {
                worker: w,
                events: vec![Event::WorkerIdle { worker: w }],
            },
            StreamEvent::TaskPosted { task: TaskId(0) },
            StreamEvent::Lifecycle(Lifecycle::Drained { workers_seen: 12 }),
            StreamEvent::Lifecycle(Lifecycle::ShardStalled {
                shard: 2,
                capacity: 1024,
            }),
            StreamEvent::Lifecycle(Lifecycle::TaskOutOfRegion { task: TaskId(5) }),
            StreamEvent::Lifecycle(Lifecycle::Rebalanced {
                moved_tasks: 6,
                max_load: 3,
                mean_load: 2.5,
            }),
            StreamEvent::Lifecycle(Lifecycle::Checkpointed { seq: u64::MAX }),
            StreamEvent::Lifecycle(Lifecycle::SessionEvicted),
            StreamEvent::Lifecycle(Lifecycle::ShuttingDown),
        ];
        for event in cases {
            let frame = encode_event(&event);
            assert!(is_event_frame(&frame), "{frame}");
            assert_eq!(decode_event(&frame).unwrap(), event, "{frame}");
        }
    }

    #[test]
    fn metrics_frames_without_durability_fields_still_decode() {
        // A pre-durability v1 peer omits `wal`/`checkpoints`; the
        // compatibility policy (ignore unknown, default absent) makes
        // that a zero, not an error.
        let frame = "{\"ok\":\"metrics\",\"workers\":1,\"assignments\":0,\"tasks\":0,\
                     \"completed\":0,\"clamped\":0,\"rebalances\":0,\"loads\":[0],\
                     \"latency\":null}";
        match Response::decode(frame).unwrap() {
            Response::Metrics { metrics } => {
                assert_eq!(metrics.wal_records, 0);
                assert_eq!(metrics.checkpoints, 0);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn handshake_frames_validate() {
        assert_eq!(decode_hello(&encode_hello()).unwrap(), PROTO_VERSION);
        assert!(decode_hello("{\"proto\":\"other\",\"v\":1}").is_err());
        assert!(decode_hello("{\"v\":1}").is_err());
        assert!(decode_hello("garbage").is_err());
        // A future version parses (the *server* decides to refuse it).
        assert_eq!(
            decode_hello("{\"proto\":\"ltc-proto\",\"v\":9}").unwrap(),
            9
        );
    }

    #[test]
    fn frame_reader_enforces_the_cap_and_boundaries() {
        let mut ok = io::Cursor::new(b"{\"op\":\"drain\"}\n{\"op\":\"metrics\"}\n".to_vec());
        assert_eq!(
            read_frame(&mut ok).unwrap().as_deref(),
            Some("{\"op\":\"drain\"}")
        );
        assert_eq!(
            read_frame(&mut ok).unwrap().as_deref(),
            Some("{\"op\":\"metrics\"}")
        );
        assert_eq!(read_frame(&mut ok).unwrap(), None);

        let mut truncated = io::Cursor::new(b"{\"op\":\"dra".to_vec());
        assert!(read_frame(&mut truncated).is_err());

        let mut oversized = io::Cursor::new(vec![b'x'; MAX_FRAME + 10]);
        assert!(read_frame(&mut oversized).is_err());

        let mut non_utf8 = io::Cursor::new(vec![0xFF, 0xFE, b'\n']);
        assert!(read_frame(&mut non_utf8).is_err());
    }

    #[test]
    fn malformed_wire_input_errors_cleanly() {
        for frame in [
            "",
            "{}",
            "{\"op\":\"frobnicate\"}",
            "{\"op\":\"submit\",\"x\":\"zz\"}",
            "{\"op\":\"submit\",\"x\":1.5,\"y\":\"0\",\"acc\":\"0\"}",
            "{\"op\":\"post\",\"x\":\"3ff0000000000000\",\"y\":\"3ff0000000000000\",\"row\":3}",
        ] {
            assert!(Request::decode(frame).is_err(), "accepted {frame:?}");
        }
        for frame in [
            "",
            "{}",
            "{\"ok\":\"nope\"}",
            "{\"ok\":\"submit\"}",
            "{\"ok\":\"rebalance\"}",
            "{\"proto\":\"ltc-proto\",\"v\":2,\"info\":{}}",
        ] {
            assert!(Response::decode(frame).is_err(), "accepted {frame:?}");
        }
        for frame in ["{\"ev\":\"worker\"}", "{\"ev\":\"life\",\"kind\":\"??\"}"] {
            assert!(decode_event(frame).is_err(), "accepted {frame:?}");
        }
    }

    #[test]
    fn fast_paths_agree_with_the_generic_parser() {
        // Requests: every hot-frame variant (seq/sid tails, windowed or
        // not) plus near-misses that must fall back — the fast path may
        // only ever accept frames the generic route parses identically.
        let submits = [
            Request::Submit {
                worker: Worker::new(Point::new(325.0, -0.125), 0.83),
                seq: None,
            }
            .encode(),
            Request::Submit {
                worker: Worker::new(Point::new(f64::MIN_POSITIVE, 1e300), 1.0),
                seq: Some(0),
            }
            .encode(),
            with_sid(
                Request::Submit {
                    worker: Worker::new(Point::new(1.5, 2.5), 0.99),
                    seq: Some(u64::MAX),
                }
                .encode(),
                "Region_7.east-2",
            ),
        ];
        for frame in &submits {
            let v = json::parse(frame).unwrap();
            let generic = (
                Request::decode_value(&v).unwrap(),
                frame_sid(&v).unwrap().map(str::to_owned),
            );
            assert_eq!(fast_decode_submit(frame), Some(generic.clone()), "{frame}");
            assert_eq!(Request::decode_with_sid(frame).unwrap(), generic, "{frame}");
        }
        // Foreign-but-valid framings (reordered members, whitespace,
        // uppercase hex) must fall back and still parse.
        for frame in [
            "{\"x\":\"4074400000000000\",\"op\":\"submit\",\"y\":\"4074400000000000\",\"acc\":\"3feA000000000000\"}",
            "{\"op\":\"submit\", \"x\":\"4074400000000000\",\"y\":\"4074400000000000\",\"acc\":\"3fea000000000000\"}",
        ] {
            assert_eq!(fast_decode_submit(frame), None, "{frame}");
            assert!(Request::decode(frame).is_ok(), "{frame}");
        }
        // Acknowledgements, both verbs, all tail combinations.
        let acks = [
            Response::Submit {
                worker: WorkerId(0),
                seq: None,
            }
            .encode(),
            with_sid(
                Response::Submit {
                    worker: WorkerId(u64::MAX),
                    seq: Some(41),
                }
                .encode(),
                "default",
            ),
            Response::Post {
                task: TaskId(7),
                seq: Some(u64::MAX),
            }
            .encode(),
            with_sid(
                Response::Post {
                    task: TaskId(1),
                    seq: None,
                }
                .encode(),
                "s-1",
            ),
        ];
        for frame in &acks {
            let generic = Response::decode_generic(frame).unwrap();
            assert_eq!(fast_decode_ack(frame), Some(generic.clone()), "{frame}");
            assert_eq!(Response::decode(frame).unwrap(), generic, "{frame}");
        }
        // Near-misses fall back to the generic route's verdict.
        for frame in [
            "{\"ok\":\"submit\",\"worker\":007}",
            "{\"ok\":\"submit\",\"worker\":3,\"seq\":-1}",
            "{\"ok\":\"post\",\"task\":3,\"sid\":\"no spaces\"}",
        ] {
            assert_eq!(fast_decode_ack(frame), None, "{frame}");
        }
    }

    /// xorshift64* — a deterministic corpus generator, so every fuzz
    /// failure below reproduces from the constant seed in the test
    /// (printed in the assertion) without an RNG dev-dependency.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Every decoder entry point the server or client feeds untrusted
    /// bytes into. Returning `Err` is fine; panicking or wedging is the
    /// failure mode under test.
    fn exercise_decoders(frame: &str) {
        let _ = Request::decode(frame);
        let _ = Request::decode_with_sid(frame);
        let _ = Response::decode(frame);
        let _ = decode_event(frame);
        let _ = decode_hello(frame);
        let _ = is_event_frame(frame);
    }

    #[test]
    fn fuzz_random_bytes_never_panic_reader_or_decoders() {
        // Hostile-input sweep: raw random bytes through the frame reader
        // (arbitrary split points, missing delimiters, non-UTF-8), and
        // random printable JSON-ish garbage through every decoder. The
        // generator is seeded, so `iter` in a failure message pins the
        // exact offending input.
        let mut rng = XorShift(0x1CDE_2018_0000_0001);
        const JSONISH: &[u8] = br#"{}[]":,.-0123456789aeflnopqrstuvx\ "#;
        for iter in 0..4096u32 {
            let len = (rng.next() % 160) as usize;
            let raw: Vec<u8> = (0..len).map(|_| (rng.next() >> 32) as u8).collect();
            let mut cursor = io::Cursor::new(raw.clone());
            while let Ok(Some(_)) = read_frame(&mut cursor) {}
            let jsonish: String = (0..len)
                .map(|_| JSONISH[(rng.next() as usize) % JSONISH.len()] as char)
                .collect();
            exercise_decoders(&jsonish);
            exercise_decoders(&String::from_utf8_lossy(&raw));
            debug_assert!(len < 160, "iter {iter}: corpus length out of bounds");
        }
    }

    #[test]
    fn fuzz_truncations_and_mutations_of_valid_frames_error_cleanly() {
        // Every prefix and a spray of single-byte corruptions of real
        // frames (windowed submits included) must decode to a clean
        // error or a different valid value — never a panic. Truncated
        // frames fed to the reader without their delimiter must surface
        // the mid-frame error, not hang or fabricate a frame.
        let corpus: Vec<String> = vec![
            Request::Submit {
                worker: Worker::new(Point::new(13.25, -4.5), 0.875),
                seq: Some(41),
            }
            .encode(),
            with_sid(
                Request::Post {
                    task: Task::new(Point::new(0.5, 99.0)),
                    row: Some(vec![0.25, 1.0]),
                    seq: Some(u64::MAX),
                }
                .encode(),
                "sess-9",
            ),
            encode_hello_v2(),
            Response::Submit {
                worker: WorkerId(7),
                seq: Some(7),
            }
            .encode(),
            Response::Err {
                message: "over capacity".into(),
            }
            .encode(),
            encode_event(&StreamEvent::Lifecycle(Lifecycle::SessionEvicted)),
        ];
        let mut rng = XorShift(0x1CDE_2018_0000_0002);
        for frame in &corpus {
            for cut in 0..frame.len() {
                exercise_decoders(&frame[..cut]);
                if cut > 0 {
                    let mut truncated = io::Cursor::new(frame.as_bytes()[..cut].to_vec());
                    let err = read_frame(&mut truncated)
                        .expect_err("a frame cut before its delimiter must error");
                    assert!(err.to_string().contains("mid-frame"), "{err}");
                }
            }
            for _ in 0..256 {
                let mut bytes = frame.clone().into_bytes();
                let at = (rng.next() as usize) % bytes.len();
                bytes[at] = (rng.next() >> 32) as u8;
                exercise_decoders(&String::from_utf8_lossy(&bytes));
            }
        }
    }

    #[test]
    fn hostile_sids_and_seqs_are_refused() {
        // Malformed session ids: wrong type, empty, over-long, or
        // containing bytes outside the sid alphabet — all refused by the
        // sid layer before any verb dispatch.
        let long = format!("{{\"op\":\"drain\",\"sid\":\"{}\"}}", "a".repeat(65));
        for frame in [
            "{\"op\":\"drain\",\"sid\":5}",
            "{\"op\":\"drain\",\"sid\":\"\"}",
            "{\"op\":\"drain\",\"sid\":\"no spaces\"}",
            "{\"op\":\"drain\",\"sid\":\"semi;colon\"}",
            "{\"op\":\"attach\"}",
            long.as_str(),
        ] {
            assert!(Request::decode_with_sid(frame).is_err(), "accepted {frame}");
        }
        // Hostile `"seq"` members: anything but a JSON unsigned integer
        // is refused on both directions of the wire (a float, string, or
        // negative seq could silently desynchronize a window).
        for seq in ["-1", "1.5", "\"7\"", "null", "18446744073709551616"] {
            let request = format!(
                "{{\"op\":\"submit\",\"x\":\"{x}\",\"y\":\"{x}\",\"acc\":\"{x}\",\"seq\":{seq}}}",
                x = hex(1.0)
            );
            assert!(Request::decode(&request).is_err(), "accepted {request}");
            let response = format!("{{\"ok\":\"submit\",\"worker\":3,\"seq\":{seq}}}");
            assert!(Response::decode(&response).is_err(), "accepted {response}");
        }
        // The window advertisement is equally guarded: present but
        // malformed is a refused hello, not a silent lockstep fallback.
        let info = SessionInfo {
            algorithm: Algorithm::Laf,
            params: ProblemParams::builder().build().unwrap(),
            n_shards: 1,
            n_tasks: 0,
        };
        let hello = encode_hello_response_v2(&info, MAX_WINDOW);
        assert!(matches!(
            Response::decode(&hello).unwrap(),
            Response::Hello { win, .. } if win == MAX_WINDOW
        ));
        let garbled = hello.replace(&format!("\"win\":{MAX_WINDOW}"), "\"win\":\"lots\"");
        assert_ne!(garbled, hello);
        let err = Response::decode(&garbled).expect_err("a non-integer `win` must be refused");
        assert!(err.contains("win"), "{err}");
    }
}
