//! `ltc-proto` — the wire protocol (`v1` single-session, `v2` session
//! namespace) that lifts the [`Session`](ltc_core::service::Session)
//! API onto a transport, so requesters and workers can be remote
//! processes instead of linking `ltc_core`.
//!
//! Four layers, bottom up:
//!
//! * [`json`] — a minimal, hostile-input-safe JSON reader/writer (the
//!   offline build has no serde; numbers stay text so 64-bit ids never
//!   pass through `f64`).
//! * [`wire`] — the versioned message vocabulary and NDJSON framing:
//!   one JSON object per `\n`-delimited frame (size-capped), a
//!   `{"proto":"ltc-proto","v":N}` handshake, [`wire::Request`] /
//!   [`wire::Response`] / event frames, every `f64` as its IEEE-754 bit
//!   pattern so remote observations are **bit-identical** to local
//!   ones. `v2` frames carry a trailing `"sid"` member naming their
//!   session; `v1` frames stay byte-identical to what they always were.
//!   `v2` `submit`/`post` frames may additionally carry a `"seq"`
//!   member for **windowed** submission — up to a negotiated W frames
//!   in flight before the client awaits an acknowledgement, FIFO-
//!   matched by the echoed `"seq"`, with back-pressure surfacing as
//!   window stalls (never reordering) and output byte-identical to
//!   lockstep at any W.
//! * [`session_table`] — the server-side registry of named sessions:
//!   a fixed default session, a [`SessionFactory`] that `open` spawns
//!   fresh services through, per-session lifecycle (spawn → serve →
//!   quiesce → evict) with capacity and idle-timeout policies.
//! * [`server`] / [`client`] — [`LtcServer`] multiplexes N concurrent
//!   TCP clients onto a [`SessionTable`] (global submission order *per
//!   session* = connection-interleaved arrival order, decided by one
//!   mutex per session), and [`LtcClient`] implements the same
//!   [`Session`](ltc_core::service::Session) trait remotely — one code
//!   path drives in-process and remote runs, differentially tested
//!   byte-identical (`tests/loopback.rs`, plus the CLI parity tests),
//!   with `v2` session verbs ([`LtcClient::open_session`] /
//!   `attach_session` / `close_session` / `list_sessions`) on top.
//!
//! The CLI front-ends: `ltc serve --addr … --shards …
//! [--max-sessions N [--idle-timeout SECS]]` runs the server,
//! `ltc stream --connect HOST:PORT [--session NAME] [--window W]`
//! drives one of its sessions (windowed past `--window 1`),
//! `ltc sessions --connect HOST:PORT` lists them.
//! `docs/PROTOCOL.md` has the full grammar, ordering/back-pressure
//! semantics, and the compatibility policy.
//!
//! ```no_run
//! use ltc_core::model::{ProblemParams, Task, Worker};
//! use ltc_core::service::{ServiceBuilder, Session};
//! use ltc_proto::{LtcClient, LtcServer};
//! use ltc_spatial::{BoundingBox, Point};
//!
//! // Server side (usually `ltc serve`):
//! let params = ProblemParams::builder().epsilon(0.3).build().unwrap();
//! let region = BoundingBox::new(Point::ORIGIN, Point::new(100.0, 100.0));
//! let handle = ServiceBuilder::new(params, region).start().unwrap();
//! let server = LtcServer::bind("127.0.0.1:0", handle).unwrap().spawn().unwrap();
//!
//! // Client side (any process):
//! let mut session = LtcClient::connect(server.addr()).unwrap();
//! let events = session.subscribe().unwrap();
//! session.post_task(Task::new(Point::new(10.0, 10.0))).unwrap();
//! session.submit_worker(&Worker::new(Point::new(10.5, 10.0), 0.95)).unwrap();
//! session.drain().unwrap();
//! assert!(events.try_recv().is_some());
//! session.shutdown().unwrap(); // ends the served session
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod server;
pub mod session_table;
pub mod wire;

pub use client::LtcClient;
pub use server::{LtcServer, RunningServer};
pub use session_table::{SessionConfig, SessionEntry, SessionFactory, SessionTable};
