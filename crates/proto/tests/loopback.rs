//! Loopback differential tests for the `ltc-proto` transport (`v1`
//! and the `v2` session namespace): a session driven through
//! `LtcClient` → TCP → `LtcServer` must be observationally identical
//! to driving the `ServiceHandle` in process — event for event, bit
//! for bit — because the server assigns arrival ids in request-arrival
//! order and every float crosses the wire as its bit pattern. The same
//! bar holds per session on a multi-session server: sessions co-hosted
//! on one table must be bit-identical to dedicated servers, and `v1`
//! clients must see byte-identical frames against either.
//!
//! CI runs this file in the timeout-guarded job: a wedged connection or
//! a deadlocked quiesce must fail loudly, never hang the build.

use ltc_core::model::{ProblemParams, Task, Worker};
use ltc_core::service::{
    Algorithm, Lifecycle, ServiceBuilder, ServiceError, ServiceHandle, Session, StreamEvent,
};
use ltc_proto::wire;
use ltc_proto::{LtcClient, LtcServer, SessionConfig, SessionFactory, SessionTable};
use ltc_spatial::{BoundingBox, Point};
use std::io::BufReader;
use std::num::NonZeroUsize;
use std::time::Duration;

/// Per-event wait while collecting; far above any healthy delivery,
/// far below the CI job timeout.
const EVENT_TIMEOUT: Duration = Duration::from_secs(20);

fn params() -> ProblemParams {
    ProblemParams::builder()
        .epsilon(0.25)
        .capacity(2)
        .d_max(30.0)
        .build()
        .unwrap()
}

fn region() -> BoundingBox {
    BoundingBox::new(Point::ORIGIN, Point::new(1000.0, 1000.0))
}

fn tasks() -> Vec<Task> {
    (0..24)
        .map(|i| {
            Task::new(Point::new(
                (i % 8) as f64 * 125.0 + 20.0,
                (i / 8) as f64 * 300.0,
            ))
        })
        .collect()
}

fn workers(n: usize, salt: u64) -> Vec<Worker> {
    (0..n)
        .map(|i| {
            let i = i as u64 + salt * 10_007;
            Worker::new(
                Point::new((i % 41) as f64 * 25.0, (i % 37) as f64 * 27.0),
                0.7 + 0.29 * ((i % 13) as f64 / 13.0),
            )
        })
        .collect()
}

fn handle(n_shards: usize, algorithm: Algorithm) -> ServiceHandle {
    ServiceBuilder::new(params(), region())
        .tasks(tasks())
        .shards(NonZeroUsize::new(n_shards).unwrap())
        .algorithm(algorithm)
        .start()
        .unwrap()
}

/// Drains `session`, then collects the ordered deliveries (worker
/// batches and task posts; advisory lifecycle notices dropped) up to the
/// drain marker covering `expect_workers` released check-ins.
fn collect_ordered(
    session: &mut dyn Session,
    events: &ltc_core::service::EventStream,
    expect_workers: u64,
) -> Vec<StreamEvent> {
    session.drain().unwrap();
    let mut out = Vec::new();
    loop {
        match events
            .recv_timeout(EVENT_TIMEOUT)
            .expect("event delivery timed out — transport wedged?")
        {
            StreamEvent::Lifecycle(Lifecycle::Drained { workers_seen })
                if workers_seen >= expect_workers =>
            {
                return out;
            }
            StreamEvent::Lifecycle(_) => {}
            ordered => out.push(ordered),
        }
    }
}

#[test]
fn remote_session_is_event_for_event_identical_to_in_process() {
    for (n_shards, algorithm) in [
        (1, Algorithm::Laf),
        (4, Algorithm::Laf),
        (1, Algorithm::Aam),
        (2, Algorithm::Random { seed: 0xFACE }),
    ] {
        let server = LtcServer::bind("127.0.0.1:0", handle(n_shards, algorithm))
            .unwrap()
            .spawn()
            .unwrap();
        let mut remote = LtcClient::connect(server.addr()).unwrap();
        let mut local = handle(n_shards, algorithm);

        assert_eq!(Session::info(&remote), Session::info(&local));

        let remote_events = remote.subscribe().unwrap();
        let local_events = local.subscribe().unwrap();
        let stream = workers(300, 1);
        for (i, w) in stream.iter().enumerate() {
            let rid = remote.submit_worker(w).unwrap();
            let lid = Session::submit_worker(&mut local, w).unwrap();
            assert_eq!(
                rid, lid,
                "{algorithm:?}/{n_shards}: arrival ids diverged at {i}"
            );
        }
        // A mid-stream task post rides the same ordered pipeline.
        let post = Task::new(Point::new(512.0, 512.0));
        assert_eq!(
            remote.post_task(post).unwrap(),
            Session::post_task(&mut local, post).unwrap()
        );

        let n = stream.len() as u64;
        let got = collect_ordered(&mut remote, &remote_events, n);
        let expect = collect_ordered(&mut local, &local_events, n);
        assert_eq!(
            got, expect,
            "{algorithm:?}/{n_shards}: event streams diverged"
        );

        let mut remote_metrics = remote.metrics().unwrap();
        let mut local_metrics = Session::metrics(&mut local).unwrap();
        assert_eq!(remote_metrics.n_assignments, local_metrics.n_assignments);
        // Suppress fields that may legitimately lag (none today, but be
        // explicit that the comparison is total):
        assert_eq!(remote_metrics, local_metrics);
        remote_metrics.shard_loads.clear();
        local_metrics.shard_loads.clear();

        remote.shutdown().unwrap();
        server.wait().unwrap();
        Session::shutdown(&mut local).unwrap();
    }
}

#[test]
fn two_concurrent_clients_equal_a_single_session_replay() {
    let server = LtcServer::bind("127.0.0.1:0", handle(4, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();

    // The observer subscribes before any submission, so it sees the
    // complete interleaved history.
    let mut observer = LtcClient::connect(server.addr()).unwrap();
    let events = observer.subscribe().unwrap();

    let submit = |salt: u64| {
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut client = LtcClient::connect(addr).unwrap();
            let mut sent = Vec::new();
            for w in workers(150, salt) {
                let id = client.submit_worker(&w).unwrap();
                sent.push((id, w));
            }
            sent
        })
    };
    let a = submit(1);
    let b = submit(2);
    let mut order: Vec<(ltc_core::model::WorkerId, Worker)> = a.join().unwrap();
    order.extend(b.join().unwrap());
    order.sort_by_key(|&(id, _)| id);
    // The server allocated each arrival id exactly once, densely.
    assert_eq!(order.len(), 300);
    assert!(order
        .iter()
        .enumerate()
        .all(|(i, (id, _))| id.0 == i as u64));

    let observed = collect_ordered(&mut observer, &events, 300);

    // Replay the reconstructed interleaving through a fresh in-process
    // session: the concurrent run must match it event for event.
    let mut replay = handle(4, Algorithm::Laf);
    let replay_events = replay.subscribe().unwrap();
    for (_, w) in &order {
        Session::submit_worker(&mut replay, w).unwrap();
    }
    let expect = collect_ordered(&mut replay, &replay_events, 300);
    assert_eq!(
        observed, expect,
        "concurrent interleaving diverged from its replay"
    );

    observer.shutdown().unwrap();
    server.wait().unwrap();
    Session::shutdown(&mut replay).unwrap();
}

#[test]
fn server_side_snapshot_mid_stream_restores_bit_exact() {
    let server = LtcServer::bind("127.0.0.1:0", handle(3, Algorithm::Random { seed: 9 }))
        .unwrap()
        .spawn()
        .unwrap();
    let mut remote = LtcClient::connect(server.addr()).unwrap();
    let remote_events = remote.subscribe().unwrap();

    let stream = workers(240, 5);
    for w in &stream[..120] {
        remote.submit_worker(w).unwrap();
    }
    // Quiesced server-side mid-stream snapshot, shipped over the wire.
    let snapshot = remote.snapshot().unwrap();
    let mut text = Vec::new();
    ltc_core::snapshot::write_snapshot(&snapshot, &mut text).unwrap();

    // A twin restored from the wire-carried snapshot continues exactly
    // like the remote session it was cloned from.
    let mut twin = ServiceHandle::restore(snapshot).unwrap();
    let twin_events = twin.subscribe().unwrap();
    for w in &stream[120..] {
        let rid = remote.submit_worker(w).unwrap();
        let tid = Session::submit_worker(&mut twin, w).unwrap();
        assert_eq!(rid, tid);
    }
    let got = collect_ordered(&mut remote, &remote_events, 240);
    let expect = collect_ordered(&mut twin, &twin_events, 240);
    // The twin's subscription started at worker 120; the remote one at
    // 0 — compare the common suffix.
    assert_eq!(got[got.len() - expect.len()..], expect[..]);

    // And both final states serialize to byte-identical snapshots.
    let mut from_remote = Vec::new();
    ltc_core::snapshot::write_snapshot(&remote.snapshot().unwrap(), &mut from_remote).unwrap();
    let mut from_twin = Vec::new();
    ltc_core::snapshot::write_snapshot(&Session::snapshot(&mut twin).unwrap(), &mut from_twin)
        .unwrap();
    assert_eq!(from_remote, from_twin, "post-restore states diverged");

    remote.shutdown().unwrap();
    server.wait().unwrap();
    Session::shutdown(&mut twin).unwrap();
}

#[test]
fn remote_rebalance_and_metrics_round_trip() {
    let server = LtcServer::bind("127.0.0.1:0", handle(4, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut remote = LtcClient::connect(server.addr()).unwrap();
    // Skew the pool: an out-of-region cluster on the right.
    for i in 0..16 {
        remote
            .post_task(Task::new(Point::new(4000.0 + i as f64 * 10.0, 500.0)))
            .unwrap();
    }
    let before = remote.metrics().unwrap();
    assert_eq!(before.n_tasks, 24 + 16);
    assert_eq!(before.clamped_insertions, 16);
    assert_eq!(before.shard_loads.len(), 4);

    let outcome = remote
        .rebalance()
        .unwrap()
        .expect("the far cluster skews the load");
    assert!(outcome.moved_tasks > 0);
    let after = remote.metrics().unwrap();
    assert_eq!(after.rebalances, 1);
    assert_eq!(
        after.clamped_insertions, before.clamped_insertions,
        "clamp telemetry must survive a remote rebalance"
    );
    // A rebalance with nothing further to move reports None.
    assert_eq!(remote.rebalance().unwrap(), None);

    remote.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn version_mismatch_is_refused_cleanly() {
    let server = LtcServer::bind("127.0.0.1:0", handle(1, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
    wire::write_frame(&mut conn, "{\"proto\":\"ltc-proto\",\"v\":99}").unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let reply = wire::read_frame(&mut reader).unwrap().unwrap();
    match wire::Response::decode(&reply).unwrap() {
        wire::Response::Err { message } => {
            assert!(message.contains("version 99"), "{message}");
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    // The connection is closed after the refusal.
    assert_eq!(wire::read_frame(&mut reader).unwrap(), None);
    drop(reader);

    // A well-versed client still gets in afterwards.
    let mut ok = LtcClient::connect(server.addr()).unwrap();
    ok.drain().unwrap();
    ok.shutdown().unwrap();
    server.wait().unwrap();
}

/// The factory a multi-session test server opens named sessions
/// through: same fixture parameters/tasks as [`handle`], with the open
/// request's overrides applied.
fn session_factory() -> SessionFactory {
    Box::new(|config: &SessionConfig| {
        let shards = NonZeroUsize::new(config.shards.unwrap_or(1))
            .ok_or_else(|| ServiceError::Session("shards must be positive".into()))?;
        let built = ServiceBuilder::new(params(), config.region.unwrap_or_else(region))
            .tasks(tasks())
            .shards(shards)
            .algorithm(config.algorithm.unwrap_or(Algorithm::Laf))
            .start()?;
        Ok(Box::new(built))
    })
}

#[test]
fn two_sessions_on_one_server_equal_two_dedicated_servers() {
    // The tentpole differential: two named sessions co-hosted on one
    // multi-session server, driven in lockstep with two dedicated
    // single-session servers, must be observationally identical — same
    // arrival ids, same event streams bit for bit, same metrics (modulo
    // the table-level session counters) — at 1 and 4 shards.
    for n_shards in [1usize, 4] {
        let table =
            SessionTable::with_factory(handle(1, Algorithm::Laf), session_factory(), 3, None);
        let shared = LtcServer::bind_table("127.0.0.1:0", table)
            .unwrap()
            .spawn()
            .unwrap();
        let dedicated_a = LtcServer::bind("127.0.0.1:0", handle(n_shards, Algorithm::Laf))
            .unwrap()
            .spawn()
            .unwrap();
        let dedicated_b = LtcServer::bind("127.0.0.1:0", handle(n_shards, Algorithm::Aam))
            .unwrap()
            .spawn()
            .unwrap();

        let config = |algorithm| SessionConfig {
            algorithm: Some(algorithm),
            shards: Some(n_shards),
            region: None,
        };
        let mut sess_a = LtcClient::connect_v2(shared.addr()).unwrap();
        sess_a.open_session("a", &config(Algorithm::Laf)).unwrap();
        let mut sess_b = LtcClient::connect_v2(shared.addr()).unwrap();
        sess_b.open_session("b", &config(Algorithm::Aam)).unwrap();
        let mut solo_a = LtcClient::connect(dedicated_a.addr()).unwrap();
        let mut solo_b = LtcClient::connect(dedicated_b.addr()).unwrap();
        assert_eq!(Session::info(&sess_a), Session::info(&solo_a));
        assert_eq!(Session::info(&sess_b), Session::info(&solo_b));

        let ev_a = sess_a.subscribe().unwrap();
        let ev_b = sess_b.subscribe().unwrap();
        let solo_ev_a = solo_a.subscribe().unwrap();
        let solo_ev_b = solo_b.subscribe().unwrap();

        // Interleave submissions across the co-hosted sessions so any
        // cross-session leakage would surface in both streams.
        let stream_a = workers(160, 7);
        let stream_b = workers(160, 8);
        for (wa, wb) in stream_a.iter().zip(&stream_b) {
            assert_eq!(
                sess_a.submit_worker(wa).unwrap(),
                solo_a.submit_worker(wa).unwrap()
            );
            assert_eq!(
                sess_b.submit_worker(wb).unwrap(),
                solo_b.submit_worker(wb).unwrap()
            );
        }
        let got_a = collect_ordered(&mut sess_a, &ev_a, 160);
        let got_b = collect_ordered(&mut sess_b, &ev_b, 160);
        assert_eq!(
            got_a,
            collect_ordered(&mut solo_a, &solo_ev_a, 160),
            "{n_shards} shards: co-hosted session `a` diverged"
        );
        assert_eq!(
            got_b,
            collect_ordered(&mut solo_b, &solo_ev_b, 160),
            "{n_shards} shards: co-hosted session `b` diverged"
        );

        // Metrics match too; the session counters are the one designed
        // difference (the co-hosting table carries three sessions).
        let mut shared_metrics = sess_a.metrics().unwrap();
        let solo_metrics = solo_a.metrics().unwrap();
        assert_eq!(shared_metrics.sessions_open, 3);
        assert_eq!(solo_metrics.sessions_open, 1);
        shared_metrics.sessions_open = solo_metrics.sessions_open;
        assert_eq!(shared_metrics, solo_metrics);

        sess_a.shutdown().unwrap();
        shared.wait().unwrap();
        solo_a.shutdown().unwrap();
        dedicated_a.wait().unwrap();
        solo_b.shutdown().unwrap();
        dedicated_b.wait().unwrap();
    }
}

#[test]
fn concurrent_clients_per_session_match_their_replays() {
    // Per-session replay equivalence under concurrency: two writers per
    // session, racing across two co-hosted sessions. Each session must
    // allocate its own dense arrival-id space, and each observer's
    // interleaved history must replay exactly on a fresh in-process
    // session.
    let table = SessionTable::with_factory(handle(4, Algorithm::Laf), session_factory(), 3, None);
    let server = LtcServer::bind_table("127.0.0.1:0", table)
        .unwrap()
        .spawn()
        .unwrap();

    let observe = |sid: &str| {
        let mut observer = LtcClient::connect_v2(server.addr()).unwrap();
        observer
            .open_session(
                sid,
                &SessionConfig {
                    shards: Some(4),
                    ..SessionConfig::default()
                },
            )
            .unwrap();
        let events = observer.subscribe().unwrap();
        (observer, events)
    };
    let (mut obs_a, ev_a) = observe("a");
    let (mut obs_b, ev_b) = observe("b");

    let submit = |sid: &'static str, salt: u64| {
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut client = LtcClient::connect_v2(addr).unwrap();
            client.attach_session(sid).unwrap();
            let mut sent = Vec::new();
            for w in workers(120, salt) {
                sent.push((client.submit_worker(&w).unwrap(), w));
            }
            sent
        })
    };
    let writers = [
        ("a", submit("a", 1)),
        ("b", submit("b", 2)),
        ("a", submit("a", 3)),
        ("b", submit("b", 4)),
    ];
    let mut order_a = Vec::new();
    let mut order_b = Vec::new();
    for (sid, writer) in writers {
        let sent = writer.join().unwrap();
        match sid {
            "a" => order_a.extend(sent),
            _ => order_b.extend(sent),
        }
    }
    for (sid, order, observer, events) in [
        ("a", &mut order_a, &mut obs_a, &ev_a),
        ("b", &mut order_b, &mut obs_b, &ev_b),
    ] {
        order.sort_by_key(|&(id, _)| id);
        // Dense per-session id spaces: isolation means neither session
        // sees the other's arrivals.
        assert_eq!(order.len(), 240, "session `{sid}`");
        assert!(
            order
                .iter()
                .enumerate()
                .all(|(i, (id, _))| id.0 == i as u64),
            "session `{sid}`: arrival ids not dense"
        );
        let observed = collect_ordered(&mut *observer, events, 240);
        let mut replay = handle(4, Algorithm::Laf);
        let replay_events = replay.subscribe().unwrap();
        for (_, w) in order.iter() {
            Session::submit_worker(&mut replay, w).unwrap();
        }
        let expect = collect_ordered(&mut replay, &replay_events, 240);
        assert_eq!(
            observed, expect,
            "session `{sid}`: concurrent interleaving diverged from its replay"
        );
        Session::shutdown(&mut replay).unwrap();
    }

    obs_a.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn v1_clients_bind_the_default_session_with_unchanged_frames() {
    // Backward-compat regression: a raw v1 conversation — the literal
    // frames a PR-5-era client writes — binds the default session and
    // gets byte-identical replies; no `sid` ever rides a v1 frame, and
    // the v2 session verbs are refused with a pointer at v2.
    let server = LtcServer::bind("127.0.0.1:0", handle(1, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut ask = |frame: &str| -> String {
        wire::write_frame(&mut conn, frame).unwrap();
        wire::read_frame(&mut reader).unwrap().expect("a reply")
    };

    let hello = ask("{\"proto\":\"ltc-proto\",\"v\":1}");
    assert!(
        hello.starts_with(
            "{\"proto\":\"ltc-proto\",\"v\":1,\"info\":{\"algo\":\"laf\",\
             \"shards\":1,\"tasks\":24,\"params\":{"
        ),
        "{hello}"
    );
    assert!(!hello.contains("\"sid\""), "{hello}");

    // v1 responses are the exact pre-session literals.
    assert_eq!(ask("{\"op\":\"drain\"}"), "{\"ok\":\"drain\"}");
    assert_eq!(
        ask("{\"op\":\"post\",\"x\":\"4080000000000000\",\"y\":\"4080000000000000\"}"),
        "{\"ok\":\"post\",\"task\":24}"
    );

    // Session verbs — and explicit sids on any verb — are v2-only.
    for refused in [
        "{\"op\":\"sessions\"}",
        "{\"op\":\"attach\",\"sid\":\"default\"}",
        "{\"op\":\"open\",\"sid\":\"fresh\"}",
        "{\"op\":\"drain\",\"sid\":\"default\"}",
    ] {
        let reply = ask(refused);
        assert!(reply.starts_with("{\"err\":"), "{refused} → {reply}");
        assert!(reply.contains("v2"), "{refused} → {reply}");
    }

    // Events reach a v1 subscriber in the v1 shape: no session id.
    assert_eq!(ask("{\"op\":\"subscribe\"}"), "{\"ok\":\"subscribe\"}");
    let mut feeder = LtcClient::connect(server.addr()).unwrap();
    feeder.submit_worker(&workers(1, 6)[0]).unwrap();
    let event = wire::read_frame(&mut reader).unwrap().expect("an event");
    assert!(event.starts_with("{\"ev\":"), "{event}");
    assert!(!event.contains("\"sid\""), "{event}");

    feeder.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn shutdown_ends_the_session_for_every_client() {
    let server = LtcServer::bind("127.0.0.1:0", handle(2, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut a = LtcClient::connect(server.addr()).unwrap();
    let mut b = LtcClient::connect(server.addr()).unwrap();
    let b_events = b.subscribe().unwrap();
    a.submit_worker(&workers(1, 3)[0]).unwrap();
    a.shutdown().unwrap();
    server.wait().unwrap();

    // B's subscription delivers the farewell and then ends; B's next
    // request fails instead of hanging.
    let mut saw_bye = false;
    while let Some(event) = b_events.recv_timeout(EVENT_TIMEOUT) {
        if event == StreamEvent::Lifecycle(Lifecycle::ShuttingDown) {
            saw_bye = true;
        }
    }
    assert!(saw_bye, "subscribers must be told the session ended");
    assert!(b.drain().is_err());
}
