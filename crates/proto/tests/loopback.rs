//! Loopback differential tests for the `ltc-proto v1` transport: a
//! session driven through `LtcClient` → TCP → `LtcServer` must be
//! observationally identical to driving the `ServiceHandle` in process —
//! event for event, bit for bit — because the server assigns arrival ids
//! in request-arrival order and every float crosses the wire as its bit
//! pattern.
//!
//! CI runs this file in the timeout-guarded job: a wedged connection or
//! a deadlocked quiesce must fail loudly, never hang the build.

use ltc_core::model::{ProblemParams, Task, Worker};
use ltc_core::service::{
    Algorithm, Lifecycle, ServiceBuilder, ServiceHandle, Session, StreamEvent,
};
use ltc_proto::wire;
use ltc_proto::{LtcClient, LtcServer};
use ltc_spatial::{BoundingBox, Point};
use std::io::BufReader;
use std::num::NonZeroUsize;
use std::time::Duration;

/// Per-event wait while collecting; far above any healthy delivery,
/// far below the CI job timeout.
const EVENT_TIMEOUT: Duration = Duration::from_secs(20);

fn params() -> ProblemParams {
    ProblemParams::builder()
        .epsilon(0.25)
        .capacity(2)
        .d_max(30.0)
        .build()
        .unwrap()
}

fn region() -> BoundingBox {
    BoundingBox::new(Point::ORIGIN, Point::new(1000.0, 1000.0))
}

fn tasks() -> Vec<Task> {
    (0..24)
        .map(|i| {
            Task::new(Point::new(
                (i % 8) as f64 * 125.0 + 20.0,
                (i / 8) as f64 * 300.0,
            ))
        })
        .collect()
}

fn workers(n: usize, salt: u64) -> Vec<Worker> {
    (0..n)
        .map(|i| {
            let i = i as u64 + salt * 10_007;
            Worker::new(
                Point::new((i % 41) as f64 * 25.0, (i % 37) as f64 * 27.0),
                0.7 + 0.29 * ((i % 13) as f64 / 13.0),
            )
        })
        .collect()
}

fn handle(n_shards: usize, algorithm: Algorithm) -> ServiceHandle {
    ServiceBuilder::new(params(), region())
        .tasks(tasks())
        .shards(NonZeroUsize::new(n_shards).unwrap())
        .algorithm(algorithm)
        .start()
        .unwrap()
}

/// Drains `session`, then collects the ordered deliveries (worker
/// batches and task posts; advisory lifecycle notices dropped) up to the
/// drain marker covering `expect_workers` released check-ins.
fn collect_ordered(
    session: &mut dyn Session,
    events: &ltc_core::service::EventStream,
    expect_workers: u64,
) -> Vec<StreamEvent> {
    session.drain().unwrap();
    let mut out = Vec::new();
    loop {
        match events
            .recv_timeout(EVENT_TIMEOUT)
            .expect("event delivery timed out — transport wedged?")
        {
            StreamEvent::Lifecycle(Lifecycle::Drained { workers_seen })
                if workers_seen >= expect_workers =>
            {
                return out;
            }
            StreamEvent::Lifecycle(_) => {}
            ordered => out.push(ordered),
        }
    }
}

#[test]
fn remote_session_is_event_for_event_identical_to_in_process() {
    for (n_shards, algorithm) in [
        (1, Algorithm::Laf),
        (4, Algorithm::Laf),
        (1, Algorithm::Aam),
        (2, Algorithm::Random { seed: 0xFACE }),
    ] {
        let server = LtcServer::bind("127.0.0.1:0", handle(n_shards, algorithm))
            .unwrap()
            .spawn()
            .unwrap();
        let mut remote = LtcClient::connect(server.addr()).unwrap();
        let mut local = handle(n_shards, algorithm);

        assert_eq!(Session::info(&remote), Session::info(&local));

        let remote_events = remote.subscribe().unwrap();
        let local_events = local.subscribe().unwrap();
        let stream = workers(300, 1);
        for (i, w) in stream.iter().enumerate() {
            let rid = remote.submit_worker(w).unwrap();
            let lid = Session::submit_worker(&mut local, w).unwrap();
            assert_eq!(
                rid, lid,
                "{algorithm:?}/{n_shards}: arrival ids diverged at {i}"
            );
        }
        // A mid-stream task post rides the same ordered pipeline.
        let post = Task::new(Point::new(512.0, 512.0));
        assert_eq!(
            remote.post_task(post).unwrap(),
            Session::post_task(&mut local, post).unwrap()
        );

        let n = stream.len() as u64;
        let got = collect_ordered(&mut remote, &remote_events, n);
        let expect = collect_ordered(&mut local, &local_events, n);
        assert_eq!(
            got, expect,
            "{algorithm:?}/{n_shards}: event streams diverged"
        );

        let mut remote_metrics = remote.metrics().unwrap();
        let mut local_metrics = Session::metrics(&mut local).unwrap();
        assert_eq!(remote_metrics.n_assignments, local_metrics.n_assignments);
        // Suppress fields that may legitimately lag (none today, but be
        // explicit that the comparison is total):
        assert_eq!(remote_metrics, local_metrics);
        remote_metrics.shard_loads.clear();
        local_metrics.shard_loads.clear();

        remote.shutdown().unwrap();
        server.wait().unwrap();
        Session::shutdown(&mut local).unwrap();
    }
}

#[test]
fn two_concurrent_clients_equal_a_single_session_replay() {
    let server = LtcServer::bind("127.0.0.1:0", handle(4, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();

    // The observer subscribes before any submission, so it sees the
    // complete interleaved history.
    let mut observer = LtcClient::connect(server.addr()).unwrap();
    let events = observer.subscribe().unwrap();

    let submit = |salt: u64| {
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut client = LtcClient::connect(addr).unwrap();
            let mut sent = Vec::new();
            for w in workers(150, salt) {
                let id = client.submit_worker(&w).unwrap();
                sent.push((id, w));
            }
            sent
        })
    };
    let a = submit(1);
    let b = submit(2);
    let mut order: Vec<(ltc_core::model::WorkerId, Worker)> = a.join().unwrap();
    order.extend(b.join().unwrap());
    order.sort_by_key(|&(id, _)| id);
    // The server allocated each arrival id exactly once, densely.
    assert_eq!(order.len(), 300);
    assert!(order
        .iter()
        .enumerate()
        .all(|(i, (id, _))| id.0 == i as u64));

    let observed = collect_ordered(&mut observer, &events, 300);

    // Replay the reconstructed interleaving through a fresh in-process
    // session: the concurrent run must match it event for event.
    let mut replay = handle(4, Algorithm::Laf);
    let replay_events = replay.subscribe().unwrap();
    for (_, w) in &order {
        Session::submit_worker(&mut replay, w).unwrap();
    }
    let expect = collect_ordered(&mut replay, &replay_events, 300);
    assert_eq!(
        observed, expect,
        "concurrent interleaving diverged from its replay"
    );

    observer.shutdown().unwrap();
    server.wait().unwrap();
    Session::shutdown(&mut replay).unwrap();
}

#[test]
fn server_side_snapshot_mid_stream_restores_bit_exact() {
    let server = LtcServer::bind("127.0.0.1:0", handle(3, Algorithm::Random { seed: 9 }))
        .unwrap()
        .spawn()
        .unwrap();
    let mut remote = LtcClient::connect(server.addr()).unwrap();
    let remote_events = remote.subscribe().unwrap();

    let stream = workers(240, 5);
    for w in &stream[..120] {
        remote.submit_worker(w).unwrap();
    }
    // Quiesced server-side mid-stream snapshot, shipped over the wire.
    let snapshot = remote.snapshot().unwrap();
    let mut text = Vec::new();
    ltc_core::snapshot::write_snapshot(&snapshot, &mut text).unwrap();

    // A twin restored from the wire-carried snapshot continues exactly
    // like the remote session it was cloned from.
    let mut twin = ServiceHandle::restore(snapshot).unwrap();
    let twin_events = twin.subscribe().unwrap();
    for w in &stream[120..] {
        let rid = remote.submit_worker(w).unwrap();
        let tid = Session::submit_worker(&mut twin, w).unwrap();
        assert_eq!(rid, tid);
    }
    let got = collect_ordered(&mut remote, &remote_events, 240);
    let expect = collect_ordered(&mut twin, &twin_events, 240);
    // The twin's subscription started at worker 120; the remote one at
    // 0 — compare the common suffix.
    assert_eq!(got[got.len() - expect.len()..], expect[..]);

    // And both final states serialize to byte-identical snapshots.
    let mut from_remote = Vec::new();
    ltc_core::snapshot::write_snapshot(&remote.snapshot().unwrap(), &mut from_remote).unwrap();
    let mut from_twin = Vec::new();
    ltc_core::snapshot::write_snapshot(&Session::snapshot(&mut twin).unwrap(), &mut from_twin)
        .unwrap();
    assert_eq!(from_remote, from_twin, "post-restore states diverged");

    remote.shutdown().unwrap();
    server.wait().unwrap();
    Session::shutdown(&mut twin).unwrap();
}

#[test]
fn remote_rebalance_and_metrics_round_trip() {
    let server = LtcServer::bind("127.0.0.1:0", handle(4, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut remote = LtcClient::connect(server.addr()).unwrap();
    // Skew the pool: an out-of-region cluster on the right.
    for i in 0..16 {
        remote
            .post_task(Task::new(Point::new(4000.0 + i as f64 * 10.0, 500.0)))
            .unwrap();
    }
    let before = remote.metrics().unwrap();
    assert_eq!(before.n_tasks, 24 + 16);
    assert_eq!(before.clamped_insertions, 16);
    assert_eq!(before.shard_loads.len(), 4);

    let outcome = remote
        .rebalance()
        .unwrap()
        .expect("the far cluster skews the load");
    assert!(outcome.moved_tasks > 0);
    let after = remote.metrics().unwrap();
    assert_eq!(after.rebalances, 1);
    assert_eq!(
        after.clamped_insertions, before.clamped_insertions,
        "clamp telemetry must survive a remote rebalance"
    );
    // A rebalance with nothing further to move reports None.
    assert_eq!(remote.rebalance().unwrap(), None);

    remote.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn version_mismatch_is_refused_cleanly() {
    let server = LtcServer::bind("127.0.0.1:0", handle(1, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
    wire::write_frame(&mut conn, "{\"proto\":\"ltc-proto\",\"v\":2}").unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let reply = wire::read_frame(&mut reader).unwrap().unwrap();
    match wire::Response::decode(&reply).unwrap() {
        wire::Response::Err { message } => {
            assert!(message.contains("version 2"), "{message}");
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    // The connection is closed after the refusal.
    assert_eq!(wire::read_frame(&mut reader).unwrap(), None);
    drop(reader);

    // A well-versed client still gets in afterwards.
    let mut ok = LtcClient::connect(server.addr()).unwrap();
    ok.drain().unwrap();
    ok.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn shutdown_ends_the_session_for_every_client() {
    let server = LtcServer::bind("127.0.0.1:0", handle(2, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut a = LtcClient::connect(server.addr()).unwrap();
    let mut b = LtcClient::connect(server.addr()).unwrap();
    let b_events = b.subscribe().unwrap();
    a.submit_worker(&workers(1, 3)[0]).unwrap();
    a.shutdown().unwrap();
    server.wait().unwrap();

    // B's subscription delivers the farewell and then ends; B's next
    // request fails instead of hanging.
    let mut saw_bye = false;
    while let Some(event) = b_events.recv_timeout(EVENT_TIMEOUT) {
        if event == StreamEvent::Lifecycle(Lifecycle::ShuttingDown) {
            saw_bye = true;
        }
    }
    assert!(saw_bye, "subscribers must be told the session ended");
    assert!(b.drain().is_err());
}
