//! Loopback differential tests for the `ltc-proto` transport (`v1`
//! and the `v2` session namespace): a session driven through
//! `LtcClient` → TCP → `LtcServer` must be observationally identical
//! to driving the `ServiceHandle` in process — event for event, bit
//! for bit — because the server assigns arrival ids in request-arrival
//! order and every float crosses the wire as its bit pattern. The same
//! bar holds per session on a multi-session server: sessions co-hosted
//! on one table must be bit-identical to dedicated servers, and `v1`
//! clients must see byte-identical frames against either.
//!
//! CI runs this file in the timeout-guarded job: a wedged connection or
//! a deadlocked quiesce must fail loudly, never hang the build.

use ltc_core::model::{ProblemParams, Task, Worker, WorkerId};
use ltc_core::service::{
    Algorithm, Lifecycle, ServiceBuilder, ServiceError, ServiceHandle, Session, StreamEvent,
    WindowAck,
};
use ltc_proto::wire;
use ltc_proto::{LtcClient, LtcServer, SessionConfig, SessionFactory, SessionTable};
use ltc_spatial::{BoundingBox, Point};
use std::io::BufReader;
use std::num::NonZeroUsize;
use std::time::Duration;

/// Per-event wait while collecting; far above any healthy delivery,
/// far below the CI job timeout.
const EVENT_TIMEOUT: Duration = Duration::from_secs(20);

fn params() -> ProblemParams {
    ProblemParams::builder()
        .epsilon(0.25)
        .capacity(2)
        .d_max(30.0)
        .build()
        .unwrap()
}

fn region() -> BoundingBox {
    BoundingBox::new(Point::ORIGIN, Point::new(1000.0, 1000.0))
}

fn tasks() -> Vec<Task> {
    (0..24)
        .map(|i| {
            Task::new(Point::new(
                (i % 8) as f64 * 125.0 + 20.0,
                (i / 8) as f64 * 300.0,
            ))
        })
        .collect()
}

fn workers(n: usize, salt: u64) -> Vec<Worker> {
    (0..n)
        .map(|i| {
            let i = i as u64 + salt * 10_007;
            Worker::new(
                Point::new((i % 41) as f64 * 25.0, (i % 37) as f64 * 27.0),
                0.7 + 0.29 * ((i % 13) as f64 / 13.0),
            )
        })
        .collect()
}

fn handle(n_shards: usize, algorithm: Algorithm) -> ServiceHandle {
    ServiceBuilder::new(params(), region())
        .tasks(tasks())
        .shards(NonZeroUsize::new(n_shards).unwrap())
        .algorithm(algorithm)
        .start()
        .unwrap()
}

/// Drains `session`, then collects the ordered deliveries (worker
/// batches and task posts; advisory lifecycle notices dropped) up to the
/// drain marker covering `expect_workers` released check-ins.
fn collect_ordered(
    session: &mut dyn Session,
    events: &ltc_core::service::EventStream,
    expect_workers: u64,
) -> Vec<StreamEvent> {
    session.drain().unwrap();
    let mut out = Vec::new();
    loop {
        match events
            .recv_timeout(EVENT_TIMEOUT)
            .expect("event delivery timed out — transport wedged?")
        {
            StreamEvent::Lifecycle(Lifecycle::Drained { workers_seen })
                if workers_seen >= expect_workers =>
            {
                return out;
            }
            StreamEvent::Lifecycle(_) => {}
            ordered => out.push(ordered),
        }
    }
}

#[test]
fn remote_session_is_event_for_event_identical_to_in_process() {
    for (n_shards, algorithm) in [
        (1, Algorithm::Laf),
        (4, Algorithm::Laf),
        (1, Algorithm::Aam),
        (2, Algorithm::Random { seed: 0xFACE }),
    ] {
        let server = LtcServer::bind("127.0.0.1:0", handle(n_shards, algorithm))
            .unwrap()
            .spawn()
            .unwrap();
        let mut remote = LtcClient::connect(server.addr()).unwrap();
        let mut local = handle(n_shards, algorithm);

        assert_eq!(Session::info(&remote), Session::info(&local));

        let remote_events = remote.subscribe().unwrap();
        let local_events = local.subscribe().unwrap();
        let stream = workers(300, 1);
        for (i, w) in stream.iter().enumerate() {
            let rid = remote.submit_worker(w).unwrap();
            let lid = Session::submit_worker(&mut local, w).unwrap();
            assert_eq!(
                rid, lid,
                "{algorithm:?}/{n_shards}: arrival ids diverged at {i}"
            );
        }
        // A mid-stream task post rides the same ordered pipeline.
        let post = Task::new(Point::new(512.0, 512.0));
        assert_eq!(
            remote.post_task(post).unwrap(),
            Session::post_task(&mut local, post).unwrap()
        );

        let n = stream.len() as u64;
        let got = collect_ordered(&mut remote, &remote_events, n);
        let expect = collect_ordered(&mut local, &local_events, n);
        assert_eq!(
            got, expect,
            "{algorithm:?}/{n_shards}: event streams diverged"
        );

        let mut remote_metrics = remote.metrics().unwrap();
        let mut local_metrics = Session::metrics(&mut local).unwrap();
        assert_eq!(remote_metrics.n_assignments, local_metrics.n_assignments);
        // Suppress fields that may legitimately lag (none today, but be
        // explicit that the comparison is total):
        assert_eq!(remote_metrics, local_metrics);
        remote_metrics.shard_loads.clear();
        local_metrics.shard_loads.clear();

        remote.shutdown().unwrap();
        server.wait().unwrap();
        Session::shutdown(&mut local).unwrap();
    }
}

#[test]
fn two_concurrent_clients_equal_a_single_session_replay() {
    let server = LtcServer::bind("127.0.0.1:0", handle(4, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();

    // The observer subscribes before any submission, so it sees the
    // complete interleaved history.
    let mut observer = LtcClient::connect(server.addr()).unwrap();
    let events = observer.subscribe().unwrap();

    let submit = |salt: u64| {
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut client = LtcClient::connect(addr).unwrap();
            let mut sent = Vec::new();
            for w in workers(150, salt) {
                let id = client.submit_worker(&w).unwrap();
                sent.push((id, w));
            }
            sent
        })
    };
    let a = submit(1);
    let b = submit(2);
    let mut order: Vec<(ltc_core::model::WorkerId, Worker)> = a.join().unwrap();
    order.extend(b.join().unwrap());
    order.sort_by_key(|&(id, _)| id);
    // The server allocated each arrival id exactly once, densely.
    assert_eq!(order.len(), 300);
    assert!(order
        .iter()
        .enumerate()
        .all(|(i, (id, _))| id.0 == i as u64));

    let observed = collect_ordered(&mut observer, &events, 300);

    // Replay the reconstructed interleaving through a fresh in-process
    // session: the concurrent run must match it event for event.
    let mut replay = handle(4, Algorithm::Laf);
    let replay_events = replay.subscribe().unwrap();
    for (_, w) in &order {
        Session::submit_worker(&mut replay, w).unwrap();
    }
    let expect = collect_ordered(&mut replay, &replay_events, 300);
    assert_eq!(
        observed, expect,
        "concurrent interleaving diverged from its replay"
    );

    observer.shutdown().unwrap();
    server.wait().unwrap();
    Session::shutdown(&mut replay).unwrap();
}

#[test]
fn server_side_snapshot_mid_stream_restores_bit_exact() {
    let server = LtcServer::bind("127.0.0.1:0", handle(3, Algorithm::Random { seed: 9 }))
        .unwrap()
        .spawn()
        .unwrap();
    let mut remote = LtcClient::connect(server.addr()).unwrap();
    let remote_events = remote.subscribe().unwrap();

    let stream = workers(240, 5);
    for w in &stream[..120] {
        remote.submit_worker(w).unwrap();
    }
    // Quiesced server-side mid-stream snapshot, shipped over the wire.
    let snapshot = remote.snapshot().unwrap();
    let mut text = Vec::new();
    ltc_core::snapshot::write_snapshot(&snapshot, &mut text).unwrap();

    // A twin restored from the wire-carried snapshot continues exactly
    // like the remote session it was cloned from.
    let mut twin = ServiceHandle::restore(snapshot).unwrap();
    let twin_events = twin.subscribe().unwrap();
    for w in &stream[120..] {
        let rid = remote.submit_worker(w).unwrap();
        let tid = Session::submit_worker(&mut twin, w).unwrap();
        assert_eq!(rid, tid);
    }
    let got = collect_ordered(&mut remote, &remote_events, 240);
    let expect = collect_ordered(&mut twin, &twin_events, 240);
    // The twin's subscription started at worker 120; the remote one at
    // 0 — compare the common suffix.
    assert_eq!(got[got.len() - expect.len()..], expect[..]);

    // And both final states serialize to byte-identical snapshots.
    let mut from_remote = Vec::new();
    ltc_core::snapshot::write_snapshot(&remote.snapshot().unwrap(), &mut from_remote).unwrap();
    let mut from_twin = Vec::new();
    ltc_core::snapshot::write_snapshot(&Session::snapshot(&mut twin).unwrap(), &mut from_twin)
        .unwrap();
    assert_eq!(from_remote, from_twin, "post-restore states diverged");

    remote.shutdown().unwrap();
    server.wait().unwrap();
    Session::shutdown(&mut twin).unwrap();
}

#[test]
fn remote_rebalance_and_metrics_round_trip() {
    let server = LtcServer::bind("127.0.0.1:0", handle(4, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut remote = LtcClient::connect(server.addr()).unwrap();
    // Skew the pool: an out-of-region cluster on the right.
    for i in 0..16 {
        remote
            .post_task(Task::new(Point::new(4000.0 + i as f64 * 10.0, 500.0)))
            .unwrap();
    }
    let before = remote.metrics().unwrap();
    assert_eq!(before.n_tasks, 24 + 16);
    assert_eq!(before.clamped_insertions, 16);
    assert_eq!(before.shard_loads.len(), 4);

    let outcome = remote
        .rebalance()
        .unwrap()
        .expect("the far cluster skews the load");
    assert!(outcome.moved_tasks > 0);
    let after = remote.metrics().unwrap();
    assert_eq!(after.rebalances, 1);
    assert_eq!(
        after.clamped_insertions, before.clamped_insertions,
        "clamp telemetry must survive a remote rebalance"
    );
    // A rebalance with nothing further to move reports None.
    assert_eq!(remote.rebalance().unwrap(), None);

    remote.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn version_mismatch_is_refused_cleanly() {
    let server = LtcServer::bind("127.0.0.1:0", handle(1, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
    wire::write_frame(&mut conn, "{\"proto\":\"ltc-proto\",\"v\":99}").unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let reply = wire::read_frame(&mut reader).unwrap().unwrap();
    match wire::Response::decode(&reply).unwrap() {
        wire::Response::Err { message } => {
            assert!(message.contains("version 99"), "{message}");
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    // The connection is closed after the refusal.
    assert_eq!(wire::read_frame(&mut reader).unwrap(), None);
    drop(reader);

    // A well-versed client still gets in afterwards.
    let mut ok = LtcClient::connect(server.addr()).unwrap();
    ok.drain().unwrap();
    ok.shutdown().unwrap();
    server.wait().unwrap();
}

/// The factory a multi-session test server opens named sessions
/// through: same fixture parameters/tasks as [`handle`], with the open
/// request's overrides applied.
fn session_factory() -> SessionFactory {
    Box::new(|config: &SessionConfig| {
        let shards = NonZeroUsize::new(config.shards.unwrap_or(1))
            .ok_or_else(|| ServiceError::Session("shards must be positive".into()))?;
        let built = ServiceBuilder::new(params(), config.region.unwrap_or_else(region))
            .tasks(tasks())
            .shards(shards)
            .algorithm(config.algorithm.unwrap_or(Algorithm::Laf))
            .start()?;
        Ok(Box::new(built))
    })
}

#[test]
fn two_sessions_on_one_server_equal_two_dedicated_servers() {
    // The tentpole differential: two named sessions co-hosted on one
    // multi-session server, driven in lockstep with two dedicated
    // single-session servers, must be observationally identical — same
    // arrival ids, same event streams bit for bit, same metrics (modulo
    // the table-level session counters) — at 1 and 4 shards.
    for n_shards in [1usize, 4] {
        let table =
            SessionTable::with_factory(handle(1, Algorithm::Laf), session_factory(), 3, None);
        let shared = LtcServer::bind_table("127.0.0.1:0", table)
            .unwrap()
            .spawn()
            .unwrap();
        let dedicated_a = LtcServer::bind("127.0.0.1:0", handle(n_shards, Algorithm::Laf))
            .unwrap()
            .spawn()
            .unwrap();
        let dedicated_b = LtcServer::bind("127.0.0.1:0", handle(n_shards, Algorithm::Aam))
            .unwrap()
            .spawn()
            .unwrap();

        let config = |algorithm| SessionConfig {
            algorithm: Some(algorithm),
            shards: Some(n_shards),
            region: None,
        };
        let mut sess_a = LtcClient::connect_v2(shared.addr()).unwrap();
        sess_a.open_session("a", &config(Algorithm::Laf)).unwrap();
        let mut sess_b = LtcClient::connect_v2(shared.addr()).unwrap();
        sess_b.open_session("b", &config(Algorithm::Aam)).unwrap();
        let mut solo_a = LtcClient::connect(dedicated_a.addr()).unwrap();
        let mut solo_b = LtcClient::connect(dedicated_b.addr()).unwrap();
        assert_eq!(Session::info(&sess_a), Session::info(&solo_a));
        assert_eq!(Session::info(&sess_b), Session::info(&solo_b));

        let ev_a = sess_a.subscribe().unwrap();
        let ev_b = sess_b.subscribe().unwrap();
        let solo_ev_a = solo_a.subscribe().unwrap();
        let solo_ev_b = solo_b.subscribe().unwrap();

        // Interleave submissions across the co-hosted sessions so any
        // cross-session leakage would surface in both streams.
        let stream_a = workers(160, 7);
        let stream_b = workers(160, 8);
        for (wa, wb) in stream_a.iter().zip(&stream_b) {
            assert_eq!(
                sess_a.submit_worker(wa).unwrap(),
                solo_a.submit_worker(wa).unwrap()
            );
            assert_eq!(
                sess_b.submit_worker(wb).unwrap(),
                solo_b.submit_worker(wb).unwrap()
            );
        }
        let got_a = collect_ordered(&mut sess_a, &ev_a, 160);
        let got_b = collect_ordered(&mut sess_b, &ev_b, 160);
        assert_eq!(
            got_a,
            collect_ordered(&mut solo_a, &solo_ev_a, 160),
            "{n_shards} shards: co-hosted session `a` diverged"
        );
        assert_eq!(
            got_b,
            collect_ordered(&mut solo_b, &solo_ev_b, 160),
            "{n_shards} shards: co-hosted session `b` diverged"
        );

        // Metrics match too; the session counters are the one designed
        // difference (the co-hosting table carries three sessions).
        let mut shared_metrics = sess_a.metrics().unwrap();
        let solo_metrics = solo_a.metrics().unwrap();
        assert_eq!(shared_metrics.sessions_open, 3);
        assert_eq!(solo_metrics.sessions_open, 1);
        shared_metrics.sessions_open = solo_metrics.sessions_open;
        assert_eq!(shared_metrics, solo_metrics);

        sess_a.shutdown().unwrap();
        shared.wait().unwrap();
        solo_a.shutdown().unwrap();
        dedicated_a.wait().unwrap();
        solo_b.shutdown().unwrap();
        dedicated_b.wait().unwrap();
    }
}

#[test]
fn concurrent_clients_per_session_match_their_replays() {
    // Per-session replay equivalence under concurrency: two writers per
    // session, racing across two co-hosted sessions. Each session must
    // allocate its own dense arrival-id space, and each observer's
    // interleaved history must replay exactly on a fresh in-process
    // session.
    let table = SessionTable::with_factory(handle(4, Algorithm::Laf), session_factory(), 3, None);
    let server = LtcServer::bind_table("127.0.0.1:0", table)
        .unwrap()
        .spawn()
        .unwrap();

    let observe = |sid: &str| {
        let mut observer = LtcClient::connect_v2(server.addr()).unwrap();
        observer
            .open_session(
                sid,
                &SessionConfig {
                    shards: Some(4),
                    ..SessionConfig::default()
                },
            )
            .unwrap();
        let events = observer.subscribe().unwrap();
        (observer, events)
    };
    let (mut obs_a, ev_a) = observe("a");
    let (mut obs_b, ev_b) = observe("b");

    let submit = |sid: &'static str, salt: u64| {
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut client = LtcClient::connect_v2(addr).unwrap();
            client.attach_session(sid).unwrap();
            let mut sent = Vec::new();
            for w in workers(120, salt) {
                sent.push((client.submit_worker(&w).unwrap(), w));
            }
            sent
        })
    };
    let writers = [
        ("a", submit("a", 1)),
        ("b", submit("b", 2)),
        ("a", submit("a", 3)),
        ("b", submit("b", 4)),
    ];
    let mut order_a = Vec::new();
    let mut order_b = Vec::new();
    for (sid, writer) in writers {
        let sent = writer.join().unwrap();
        match sid {
            "a" => order_a.extend(sent),
            _ => order_b.extend(sent),
        }
    }
    for (sid, order, observer, events) in [
        ("a", &mut order_a, &mut obs_a, &ev_a),
        ("b", &mut order_b, &mut obs_b, &ev_b),
    ] {
        order.sort_by_key(|&(id, _)| id);
        // Dense per-session id spaces: isolation means neither session
        // sees the other's arrivals.
        assert_eq!(order.len(), 240, "session `{sid}`");
        assert!(
            order
                .iter()
                .enumerate()
                .all(|(i, (id, _))| id.0 == i as u64),
            "session `{sid}`: arrival ids not dense"
        );
        let observed = collect_ordered(&mut *observer, events, 240);
        let mut replay = handle(4, Algorithm::Laf);
        let replay_events = replay.subscribe().unwrap();
        for (_, w) in order.iter() {
            Session::submit_worker(&mut replay, w).unwrap();
        }
        let expect = collect_ordered(&mut replay, &replay_events, 240);
        assert_eq!(
            observed, expect,
            "session `{sid}`: concurrent interleaving diverged from its replay"
        );
        Session::shutdown(&mut replay).unwrap();
    }

    obs_a.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn v1_clients_bind_the_default_session_with_unchanged_frames() {
    // Backward-compat regression: a raw v1 conversation — the literal
    // frames a PR-5-era client writes — binds the default session and
    // gets byte-identical replies; no `sid` ever rides a v1 frame, and
    // the v2 session verbs are refused with a pointer at v2.
    let server = LtcServer::bind("127.0.0.1:0", handle(1, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut ask = |frame: &str| -> String {
        wire::write_frame(&mut conn, frame).unwrap();
        wire::read_frame(&mut reader).unwrap().expect("a reply")
    };

    let hello = ask("{\"proto\":\"ltc-proto\",\"v\":1}");
    assert!(
        hello.starts_with(
            "{\"proto\":\"ltc-proto\",\"v\":1,\"info\":{\"algo\":\"laf\",\
             \"shards\":1,\"tasks\":24,\"params\":{"
        ),
        "{hello}"
    );
    assert!(!hello.contains("\"sid\""), "{hello}");

    // v1 responses are the exact pre-session literals.
    assert_eq!(ask("{\"op\":\"drain\"}"), "{\"ok\":\"drain\"}");
    assert_eq!(
        ask("{\"op\":\"post\",\"x\":\"4080000000000000\",\"y\":\"4080000000000000\"}"),
        "{\"ok\":\"post\",\"task\":24}"
    );

    // Session verbs — and explicit sids on any verb — are v2-only.
    for refused in [
        "{\"op\":\"sessions\"}",
        "{\"op\":\"attach\",\"sid\":\"default\"}",
        "{\"op\":\"open\",\"sid\":\"fresh\"}",
        "{\"op\":\"drain\",\"sid\":\"default\"}",
    ] {
        let reply = ask(refused);
        assert!(reply.starts_with("{\"err\":"), "{refused} → {reply}");
        assert!(reply.contains("v2"), "{refused} → {reply}");
    }

    // Events reach a v1 subscriber in the v1 shape: no session id.
    assert_eq!(ask("{\"op\":\"subscribe\"}"), "{\"ok\":\"subscribe\"}");
    let mut feeder = LtcClient::connect(server.addr()).unwrap();
    feeder.submit_worker(&workers(1, 6)[0]).unwrap();
    let event = wire::read_frame(&mut reader).unwrap().expect("an event");
    assert!(event.starts_with("{\"ev\":"), "{event}");
    assert!(!event.contains("\"sid\""), "{event}");

    feeder.shutdown().unwrap();
    server.wait().unwrap();
}

/// Unwraps a batch of window acks into worker arrival ids (these tests
/// submit only workers through the window).
fn worker_ids(acks: Vec<WindowAck>) -> Vec<WorkerId> {
    acks.into_iter()
        .map(|ack| match ack {
            WindowAck::Worker(id) => id,
            WindowAck::Task(id) => panic!("unexpected task ack {id:?}"),
        })
        .collect()
}

#[test]
fn windowed_submission_is_byte_identical_to_lockstep() {
    // The tentpole bar: the same submission sequence driven windowed at
    // any W and lockstep through v1 must produce byte-identical event
    // streams, identical arrival ids (delivered FIFO through the
    // deferred acks), and bit-identical final snapshots.
    for window in [2usize, 16, 256] {
        let w_server = LtcServer::bind("127.0.0.1:0", handle(2, Algorithm::Laf))
            .unwrap()
            .spawn()
            .unwrap();
        let l_server = LtcServer::bind("127.0.0.1:0", handle(2, Algorithm::Laf))
            .unwrap()
            .spawn()
            .unwrap();
        let mut windowed = LtcClient::connect_v2(w_server.addr()).unwrap();
        assert_eq!(windowed.server_window(), wire::MAX_WINDOW as usize);
        assert_eq!(windowed.set_window(window).unwrap(), window);
        let mut lockstep = LtcClient::connect(l_server.addr()).unwrap();
        assert_eq!(lockstep.server_window(), 1, "v1 advertises no window");

        let w_events = windowed.subscribe().unwrap();
        let l_events = lockstep.subscribe().unwrap();

        let stream = workers(300, 4);
        let mut acked: Vec<WorkerId> = Vec::new();
        for (i, w) in stream.iter().enumerate() {
            if let Some(ack) = windowed.submit_worker_windowed(w).unwrap() {
                acked.extend(worker_ids(vec![ack]));
            }
            if i == 149 {
                // A mid-stream lockstep request is a sequence point: it
                // drains the window (acks collected first so none are
                // dropped), then rides the ordered pipeline like any
                // other request.
                acked.extend(worker_ids(windowed.flush_window().unwrap()));
                assert_eq!(windowed.window_in_flight(), 0);
                let post = Task::new(Point::new(512.0, 512.0));
                let wid = windowed.post_task(post).unwrap();
                let lid = {
                    for w in &stream[..150] {
                        lockstep.submit_worker(w).unwrap();
                    }
                    lockstep.post_task(post).unwrap()
                };
                assert_eq!(wid, lid, "window {window}: post ids diverged");
            }
        }
        acked.extend(worker_ids(windowed.flush_window().unwrap()));
        let lock_ids: Vec<WorkerId> = stream[150..]
            .iter()
            .map(|w| lockstep.submit_worker(w).unwrap())
            .collect();
        // FIFO ack correspondence: the deferred acks carry exactly the
        // ids the lockstep path saw, in submission order.
        assert_eq!(acked.len(), 300, "window {window}");
        assert!(
            acked.iter().enumerate().all(|(i, id)| id.0 == i as u64),
            "window {window}: acks not FIFO-dense: {acked:?}"
        );
        assert_eq!(acked[150..], lock_ids[..], "window {window}");

        let got = collect_ordered(&mut windowed, &w_events, 300);
        let expect = collect_ordered(&mut lockstep, &l_events, 300);
        assert_eq!(got, expect, "window {window}: event streams diverged");

        let mut from_windowed = Vec::new();
        ltc_core::snapshot::write_snapshot(&windowed.snapshot().unwrap(), &mut from_windowed)
            .unwrap();
        let mut from_lockstep = Vec::new();
        ltc_core::snapshot::write_snapshot(&lockstep.snapshot().unwrap(), &mut from_lockstep)
            .unwrap();
        assert_eq!(
            from_windowed, from_lockstep,
            "window {window}: snapshots diverged"
        );

        windowed.shutdown().unwrap();
        w_server.wait().unwrap();
        lockstep.shutdown().unwrap();
        l_server.wait().unwrap();
    }
}

#[test]
fn windowed_concurrent_clients_equal_a_single_session_replay() {
    // The 2-client replay harness, windowed: two writers race deep
    // submission windows into one session; the acks reconstruct each
    // writer's arrival ids, and the merged interleaving must replay
    // exactly on a fresh in-process session.
    let server = LtcServer::bind("127.0.0.1:0", handle(4, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut observer = LtcClient::connect(server.addr()).unwrap();
    let events = observer.subscribe().unwrap();

    let submit = |salt: u64, window: usize| {
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut client = LtcClient::connect_v2(addr).unwrap();
            assert_eq!(client.set_window(window).unwrap(), window);
            let submitted = workers(150, salt);
            let mut acks = Vec::new();
            for w in &submitted {
                if let Some(ack) = client.submit_worker_windowed(w).unwrap() {
                    acks.push(ack);
                }
            }
            acks.extend(client.flush_window().unwrap());
            worker_ids(acks)
                .into_iter()
                .zip(submitted)
                .collect::<Vec<_>>()
        })
    };
    let a = submit(1, 32);
    let b = submit(2, 256);
    let mut order = a.join().unwrap();
    order.extend(b.join().unwrap());
    order.sort_by_key(|&(id, _)| id);
    assert_eq!(order.len(), 300);
    assert!(order
        .iter()
        .enumerate()
        .all(|(i, (id, _))| id.0 == i as u64));

    let observed = collect_ordered(&mut observer, &events, 300);
    let mut replay = handle(4, Algorithm::Laf);
    let replay_events = replay.subscribe().unwrap();
    for (_, w) in &order {
        Session::submit_worker(&mut replay, w).unwrap();
    }
    let expect = collect_ordered(&mut replay, &replay_events, 300);
    assert_eq!(
        observed, expect,
        "windowed concurrent interleaving diverged from its replay"
    );

    observer.shutdown().unwrap();
    server.wait().unwrap();
    Session::shutdown(&mut replay).unwrap();
}

/// One randomized operation of the windowed/lockstep equivalence
/// property (satellite: proptest differential).
#[derive(Debug, Clone, Copy)]
enum MixOp {
    Submit(u64),
    Post(u64),
    Drain,
    Snapshot,
}

mod windowed_property {
    use super::*;
    use proptest::prelude::*;

    fn op() -> impl Strategy<Value = MixOp> {
        (0usize..10, 0u64..1_000_000).prop_map(|(kind, salt)| match kind {
            0..=6 => MixOp::Submit(salt),
            7 => MixOp::Post(salt),
            8 => MixOp::Drain,
            _ => MixOp::Snapshot,
        })
    }

    fn algorithm(pick: u64) -> Algorithm {
        match pick % 3 {
            0 => Algorithm::Laf,
            1 => Algorithm::Aam,
            _ => Algorithm::Random { seed: pick },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random op mixes (submit/post/drain/snapshot) × algorithm ×
        /// shard count × window: the windowed remote path must be
        /// byte-for-byte equivalent to a lockstep in-process session fed
        /// the same sequence — same arrival ids through the deferred
        /// acks, same event stream, same snapshot text. The drawn values
        /// are printed in every assertion, so a failing case is
        /// reproducible from the panic message alone (the runner is
        /// deterministic per test-path and case index).
        #[test]
        fn windowed_op_mixes_equal_lockstep(
            ops in prop::collection::vec(op(), 8..48),
            algo_pick in 0u64..1000,
            shards in 1usize..=4,
            window in 1usize..=256,
        ) {
            let seed = format!(
                "algo={algo_pick} shards={shards} window={window} ops={ops:?}"
            );
            let algorithm = algorithm(algo_pick);
            let server = LtcServer::bind("127.0.0.1:0", handle(shards, algorithm))
                .unwrap()
                .spawn()
                .unwrap();
            let mut remote = LtcClient::connect_v2(server.addr()).unwrap();
            let granted = remote.set_window(window).unwrap();
            prop_assert_eq!(granted, window, "window grant: {}", seed);
            let mut local = handle(shards, algorithm);
            let remote_events = remote.subscribe().unwrap();
            let local_events = local.subscribe().unwrap();

            let mut expect_acks: Vec<WindowAck> = Vec::new();
            let mut got_acks: Vec<WindowAck> = Vec::new();
            let mut submitted: u64 = 0;
            for op in &ops {
                match *op {
                    MixOp::Submit(salt) => {
                        let w = workers(1, salt)[0];
                        if let Some(ack) = remote.submit_worker_windowed(&w).unwrap() {
                            got_acks.push(ack);
                        }
                        expect_acks.push(WindowAck::Worker(
                            Session::submit_worker(&mut local, &w).unwrap(),
                        ));
                        submitted += 1;
                    }
                    MixOp::Post(salt) => {
                        let t = Task::new(Point::new(
                            (salt % 83) as f64 * 12.0,
                            (salt % 67) as f64 * 15.0,
                        ));
                        if let Some(ack) = remote.post_task_windowed(t).unwrap() {
                            got_acks.push(ack);
                        }
                        expect_acks.push(WindowAck::Task(
                            Session::post_task(&mut local, t).unwrap(),
                        ));
                    }
                    MixOp::Drain => {
                        // Collect in-flight acks first (a sequence point
                        // consumes them), then the barrier on both sides.
                        got_acks.extend(remote.flush_window().unwrap());
                        remote.drain().unwrap();
                        Session::drain(&mut local).unwrap();
                    }
                    MixOp::Snapshot => {
                        got_acks.extend(remote.flush_window().unwrap());
                        let mut over_wire = Vec::new();
                        ltc_core::snapshot::write_snapshot(
                            &remote.snapshot().unwrap(),
                            &mut over_wire,
                        )
                        .unwrap();
                        let mut in_process = Vec::new();
                        ltc_core::snapshot::write_snapshot(
                            &Session::snapshot(&mut local).unwrap(),
                            &mut in_process,
                        )
                        .unwrap();
                        prop_assert_eq!(
                            over_wire, in_process,
                            "mid-stream snapshot diverged: {}", seed
                        );
                    }
                }
            }
            got_acks.extend(remote.flush_window().unwrap());
            prop_assert_eq!(
                &got_acks, &expect_acks,
                "deferred acks diverged from lockstep ids: {}", seed
            );

            let got = collect_ordered(&mut remote, &remote_events, submitted);
            let expect = collect_ordered(&mut local, &local_events, submitted);
            prop_assert_eq!(got, expect, "event streams diverged: {}", seed);

            let mut over_wire = Vec::new();
            ltc_core::snapshot::write_snapshot(&remote.snapshot().unwrap(), &mut over_wire)
                .unwrap();
            let mut in_process = Vec::new();
            ltc_core::snapshot::write_snapshot(
                &Session::snapshot(&mut local).unwrap(),
                &mut in_process,
            )
            .unwrap();
            prop_assert_eq!(over_wire, in_process, "final snapshots diverged: {}", seed);

            remote.shutdown().unwrap();
            server.wait().unwrap();
            Session::shutdown(&mut local).unwrap();
        }
    }
}

#[test]
fn eviction_racing_windowed_submissions_resolves_deterministically() {
    // Regression: a session evicted while a submission window is in
    // flight (the idle reaper and the v2 `close` verb share the same
    // eviction path — quiesce, announce, shut down) must resolve every
    // in-flight submission deterministically. The acked prefix fully
    // applies, its events ordered ahead of the `SessionEvicted` notice;
    // everything after the eviction is refused whole. No partial state,
    // no interleaving, no hang.
    let table = SessionTable::with_factory(
        handle(2, Algorithm::Laf),
        session_factory(),
        4,
        Some(Duration::from_secs(3600)),
    );
    let server = LtcServer::bind_table("127.0.0.1:0", table)
        .unwrap()
        .spawn()
        .unwrap();

    let config = SessionConfig {
        shards: Some(2),
        ..SessionConfig::default()
    };
    let mut submitter = LtcClient::connect_v2(server.addr())
        .unwrap()
        .with_timeout(Duration::from_secs(10));
    submitter.open_session("racy", &config).unwrap();
    assert_eq!(submitter.set_window(256).unwrap(), 256);

    let mut observer = LtcClient::connect_v2(server.addr()).unwrap();
    observer.attach_session("racy").unwrap();
    let events = observer.subscribe().unwrap();

    // The eviction races the submission stream from another connection.
    let closer = {
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut closer = LtcClient::connect_v2(addr).unwrap();
            std::thread::sleep(Duration::from_millis(15));
            closer.close_session("racy").unwrap();
        })
    };

    let stream = workers(2000, 9);
    let mut acked: Vec<WorkerId> = Vec::new();
    let mut refusals: usize = 0;
    for w in &stream {
        match submitter.submit_worker_windowed(w) {
            Ok(Some(ack)) => acked.extend(worker_ids(vec![ack])),
            Ok(None) => {}
            Err(_) => {
                refusals += 1;
                break;
            }
        }
    }
    // Per-submission outcomes for whatever is still in flight, oldest
    // first: the deterministic shape is all-acks-then-all-refusals.
    while let Some(outcome) = submitter.next_window_ack() {
        match outcome {
            Ok(ack) => {
                assert_eq!(
                    refusals, 0,
                    "a submission applied after an earlier one was refused"
                );
                acked.extend(worker_ids(vec![ack]));
            }
            Err(_) => refusals += 1,
        }
    }
    closer.join().unwrap();
    // The session is gone: one more submission must be refused (so the
    // test is never vacuous even if the close won the whole race).
    assert!(
        submitter.submit_worker(&stream[0]).is_err(),
        "the evicted session accepted a submission"
    );

    // The acked prefix is exactly the session's arrival-id space.
    assert!(
        acked.iter().enumerate().all(|(i, id)| id.0 == i as u64),
        "acked ids not a dense prefix: {acked:?}"
    );

    // The observer's stream: every acked worker's events, *then* the
    // eviction notice, then the farewell — nothing after, nothing
    // interleaved, nothing partial.
    let mut observed = Vec::new();
    while let Some(event) = events.recv_timeout(EVENT_TIMEOUT) {
        observed.push(event);
    }
    let evicted_at = observed
        .iter()
        .position(|e| *e == StreamEvent::Lifecycle(Lifecycle::SessionEvicted))
        .expect("subscribers must see the eviction");
    let ordered: Vec<&StreamEvent> = observed
        .iter()
        .filter(|e| !matches!(e, StreamEvent::Lifecycle(_)))
        .collect();
    assert!(
        observed[evicted_at..]
            .iter()
            .all(|e| matches!(e, StreamEvent::Lifecycle(_))),
        "ordered events after the eviction notice"
    );
    assert_eq!(
        ordered.len(),
        acked.len(),
        "delivered worker batches must match the acked prefix exactly"
    );

    // And the acked prefix replays bit-exactly in process: the eviction
    // cut the stream, never a submission in half.
    let mut replay = handle(2, Algorithm::Laf);
    let replay_events = replay.subscribe().unwrap();
    for w in &stream[..acked.len()] {
        Session::submit_worker(&mut replay, w).unwrap();
    }
    let expect = collect_ordered(&mut replay, &replay_events, acked.len() as u64);
    assert_eq!(
        ordered,
        expect.iter().collect::<Vec<_>>(),
        "the acked prefix diverged from its replay"
    );
    Session::shutdown(&mut replay).unwrap();

    let mut admin = LtcClient::connect_v2(server.addr()).unwrap();
    admin.shutdown().unwrap();
    server.wait().unwrap();
}

/// A hand-rolled server for hostile-transport tests: accepts one
/// connection, replies to the handshake with `hello`, then hands the
/// connection to `script`.
fn fake_server(
    hello: String,
    script: impl FnOnce(std::net::TcpStream, BufReader<std::net::TcpStream>) + Send + 'static,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let join = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        wire::read_frame(&mut reader).unwrap().expect("a handshake");
        wire::write_frame(&mut conn, &hello).unwrap();
        script(conn, reader);
    });
    (addr, join)
}

fn fake_info() -> ltc_core::service::SessionInfo {
    ltc_core::service::SessionInfo {
        algorithm: Algorithm::Laf,
        params: params(),
        n_shards: 1,
        n_tasks: 0,
    }
}

#[test]
fn with_timeout_fails_a_wedged_server_in_seconds() {
    // Satellite fix: the response deadline is configurable, so a wedged
    // server fails a test suite in well under a second instead of the
    // default 90 s.
    let hello = wire::Response::Hello {
        info: fake_info(),
        win: 1,
    }
    .encode();
    let (addr, join) = fake_server(hello, |_conn, mut reader| {
        // Swallow every request, answer nothing, keep the socket open
        // until the client gives up and disconnects.
        while let Ok(Some(_)) = wire::read_frame(&mut reader) {}
    });
    let mut client = LtcClient::connect(addr)
        .unwrap()
        .with_timeout(Duration::from_millis(250));
    let started = std::time::Instant::now();
    let err = client.drain().expect_err("a wedged server must time out");
    let waited = started.elapsed();
    assert!(
        err.to_string().contains("wedged"),
        "unexpected error: {err}"
    );
    assert!(
        waited >= Duration::from_millis(250) && waited < Duration::from_secs(10),
        "timed out after {waited:?}, configured 250ms"
    );
    drop(client);
    join.join().unwrap();
}

#[test]
fn out_of_range_window_acks_fail_the_session_cleanly() {
    // Hostile-input satellite: a server echoing a `"seq"` that is not
    // the head of the in-flight window is a protocol corruption — the
    // client must fail the session (never reorder, never hang), and
    // later calls must fail fast instead of touching the broken wire.
    let hello = wire::Response::Hello {
        info: fake_info(),
        win: wire::MAX_WINDOW,
    }
    .encode();
    let (addr, join) = fake_server(hello, |mut conn, mut reader| {
        // Answer the first windowed submit with a shifted seq, then
        // drain the socket until the client leaves.
        if let Ok(Some(frame)) = wire::read_frame(&mut reader) {
            let seq = match wire::Request::decode(&frame) {
                Ok(wire::Request::Submit { seq: Some(seq), .. }) => seq,
                other => panic!("expected a windowed submit, got {other:?}"),
            };
            let lie = wire::Response::Submit {
                worker: WorkerId(0),
                seq: Some(seq + 7),
            }
            .encode();
            wire::write_frame(&mut conn, &lie).unwrap();
        }
        while let Ok(Some(_)) = wire::read_frame(&mut reader) {}
    });
    let mut client = LtcClient::connect_v2(addr)
        .unwrap()
        .with_timeout(Duration::from_secs(5));
    assert_eq!(client.set_window(8).unwrap(), 8);
    let w = workers(1, 2)[0];
    assert_eq!(client.submit_worker_windowed(&w).unwrap(), None);
    let err = client
        .flush_window()
        .expect_err("a shifted seq must be refused");
    assert!(
        err.to_string().contains("window ack"),
        "unexpected error: {err}"
    );
    // The session is condemned: no hang, no retry against broken state.
    let started = std::time::Instant::now();
    assert!(client.submit_worker(&w).is_err());
    assert!(client.drain().is_err());
    assert!(started.elapsed() < Duration::from_secs(1), "must fail fast");
    drop(client);
    join.join().unwrap();
}

#[test]
fn mid_frame_connection_drop_is_a_clean_error() {
    // Hostile-input satellite: a connection torn down halfway through a
    // response frame surfaces as a clean transport error on the very
    // call that awaited it.
    let hello = wire::Response::Hello {
        info: fake_info(),
        win: 1,
    }
    .encode();
    let (addr, join) = fake_server(hello, |mut conn, mut reader| {
        wire::read_frame(&mut reader).unwrap();
        use std::io::Write as _;
        conn.write_all(b"{\"ok\":\"submit\",\"wor").unwrap();
        conn.flush().unwrap();
        conn.shutdown(std::net::Shutdown::Both).ok();
    });
    let mut client = LtcClient::connect(addr)
        .unwrap()
        .with_timeout(Duration::from_secs(5));
    let err = client
        .submit_worker(&workers(1, 3)[0])
        .expect_err("a torn frame must fail the call");
    assert!(
        err.to_string().contains("mid-frame"),
        "unexpected error: {err}"
    );
    drop(client);
    join.join().unwrap();
}

#[test]
fn shutdown_ends_the_session_for_every_client() {
    let server = LtcServer::bind("127.0.0.1:0", handle(2, Algorithm::Laf))
        .unwrap()
        .spawn()
        .unwrap();
    let mut a = LtcClient::connect(server.addr()).unwrap();
    let mut b = LtcClient::connect(server.addr()).unwrap();
    let b_events = b.subscribe().unwrap();
    a.submit_worker(&workers(1, 3)[0]).unwrap();
    a.shutdown().unwrap();
    server.wait().unwrap();

    // B's subscription delivers the farewell and then ends; B's next
    // request fails instead of hanging.
    let mut saw_bye = false;
    while let Some(event) = b_events.recv_timeout(EVENT_TIMEOUT) {
        if event == StreamEvent::Lifecycle(Lifecycle::ShuttingDown) {
            saw_bye = true;
        }
    }
    assert!(saw_bye, "subscribers must be told the session ended");
    assert!(b.drain().is_err());
}
