//! Differential tests: the Dijkstra+potentials SSPA against an independent
//! Bellman–Ford-per-augmentation reference implementation, on random small
//! networks.

use ltc_mcmf::{FlowNetwork, NodeId};
use proptest::prelude::*;

/// Reference min-cost max-flow: SSPA where every augmentation runs plain
/// Bellman–Ford on raw (possibly negative) costs. Slow but simple enough to
/// trust by inspection.
#[derive(Clone)]
struct RefNet {
    n: usize,
    // (from, to, cap, cost) with paired residual arcs at i ^ 1.
    arcs: Vec<(usize, usize, i64, f64)>,
}

impl RefNet {
    fn new(n: usize) -> Self {
        Self {
            n,
            arcs: Vec::new(),
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: f64) {
        self.arcs.push((from, to, cap, cost));
        self.arcs.push((to, from, 0, -cost));
    }

    fn solve(&mut self, s: usize, t: usize) -> (i64, f64) {
        let mut flow = 0i64;
        let mut cost = 0.0f64;
        loop {
            // Bellman–Ford over residual arcs.
            let mut dist = vec![f64::INFINITY; self.n];
            let mut prev: Vec<Option<usize>> = vec![None; self.n];
            dist[s] = 0.0;
            for _ in 0..self.n {
                let mut changed = false;
                for (i, &(u, v, cap, c)) in self.arcs.iter().enumerate() {
                    if cap > 0 && dist[u].is_finite() && dist[u] + c < dist[v] - 1e-12 {
                        dist[v] = dist[u] + c;
                        prev[v] = Some(i);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            if !dist[t].is_finite() {
                return (flow, cost);
            }
            let mut bottleneck = i64::MAX;
            let mut v = t;
            while v != s {
                let i = prev[v].unwrap();
                bottleneck = bottleneck.min(self.arcs[i].2);
                v = self.arcs[i].0;
            }
            let mut v = t;
            while v != s {
                let i = prev[v].unwrap();
                self.arcs[i].2 -= bottleneck;
                self.arcs[i ^ 1].2 += bottleneck;
                cost += self.arcs[i].3 * bottleneck as f64;
                v = self.arcs[i].0;
            }
            flow += bottleneck;
        }
    }
}

#[derive(Debug, Clone)]
struct RandomNetwork {
    n: usize,
    edges: Vec<(usize, usize, i64, f64)>,
}

fn arb_network(allow_negative: bool) -> impl Strategy<Value = RandomNetwork> {
    let lo = if allow_negative { -5.0 } else { 0.0 };
    (3usize..8).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 0i64..5, lo..5.0f64);
        prop::collection::vec(edge, 1..20).prop_map(move |raw| {
            let edges = raw
                .into_iter()
                .filter(|(u, v, _, _)| u != v)
                // Quantize costs so float tie-breaking cannot make the two
                // implementations pick different-but-equal optima and then
                // diverge in accumulated rounding.
                .map(|(u, v, c, w)| (u, v, c, (w * 4.0).round() / 4.0))
                .collect();
            RandomNetwork { n, edges }
        })
    })
}

fn run_both(rn: &RandomNetwork, s: usize, t: usize) -> ((i64, f64), (i64, f64)) {
    let mut net = FlowNetwork::new();
    let nodes: Vec<NodeId> = (0..rn.n).map(|_| net.add_node()).collect();
    let mut reference = RefNet::new(rn.n);
    for &(u, v, cap, cost) in &rn.edges {
        net.add_edge(nodes[u], nodes[v], cap, cost);
        reference.add_edge(u, v, cap, cost);
    }
    let out = net.min_cost_max_flow(nodes[s], nodes[t]);
    let (rf, rc) = reference.solve(s, t);
    ((out.flow, out.cost), (rf, rc))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Non-negative-cost networks: flow and cost must match the reference.
    #[test]
    fn matches_reference_nonnegative(rn in arb_network(false)) {
        let ((f1, c1), (f2, c2)) = run_both(&rn, 0, rn.n - 1);
        prop_assert_eq!(f1, f2);
        prop_assert!((c1 - c2).abs() < 1e-6, "costs diverged: {} vs {}", c1, c2);
    }

    /// Negative-cost *acyclic-by-construction* is hard to arrange randomly,
    /// so restrict to bipartite-style layered graphs (source layer 0, sink
    /// last) where node index increases along every edge — no cycles at all.
    #[test]
    fn matches_reference_negative_layered(rn in arb_network(true)) {
        let layered = RandomNetwork {
            n: rn.n,
            edges: rn.edges.iter().copied().filter(|(u, v, _, _)| u < v).collect(),
        };
        let ((f1, c1), (f2, c2)) = run_both(&layered, 0, layered.n - 1);
        prop_assert_eq!(f1, f2);
        prop_assert!((c1 - c2).abs() < 1e-6, "costs diverged: {} vs {}", c1, c2);
    }

    /// Flow conservation: for every intermediate node, inflow == outflow.
    #[test]
    fn flow_conservation(rn in arb_network(false)) {
        let mut net = FlowNetwork::new();
        let nodes: Vec<NodeId> = (0..rn.n).map(|_| net.add_node()).collect();
        let mut edge_ids = Vec::new();
        for &(u, v, cap, cost) in &rn.edges {
            edge_ids.push((u, v, net.add_edge(nodes[u], nodes[v], cap, cost)));
        }
        let out = net.min_cost_max_flow(nodes[0], nodes[rn.n - 1]);
        let mut balance = vec![0i64; rn.n];
        for &(u, v, e) in &edge_ids {
            let f = net.flow_on(e);
            prop_assert!(f >= 0);
            balance[u] -= f;
            balance[v] += f;
        }
        prop_assert_eq!(balance[0], -out.flow);
        prop_assert_eq!(balance[rn.n - 1], out.flow);
        for (v, &b) in balance.iter().enumerate().take(rn.n - 1).skip(1) {
            prop_assert_eq!(b, 0, "node {} unbalanced", v);
        }
    }

    /// Flow on each edge never exceeds its capacity.
    #[test]
    fn capacity_respected(rn in arb_network(false)) {
        let mut net = FlowNetwork::new();
        let nodes: Vec<NodeId> = (0..rn.n).map(|_| net.add_node()).collect();
        let mut edge_ids = Vec::new();
        for &(u, v, cap, cost) in &rn.edges {
            edge_ids.push((cap, net.add_edge(nodes[u], nodes[v], cap, cost)));
        }
        net.min_cost_max_flow(nodes[0], nodes[rn.n - 1]);
        for &(cap, e) in &edge_ids {
            prop_assert!(net.flow_on(e) <= cap);
        }
    }
}
