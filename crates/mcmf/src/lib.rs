//! Minimum-cost maximum-flow with the Successive Shortest Path Algorithm.
//!
//! The offline LTC algorithm (MCF-LTC, paper Sec. III) reduces each batch of
//! workers to a min-cost-flow instance with **real-valued** arc costs
//! (`−Acc*(w, t) ∈ [−1, 0]`) and solves it with SSPA — the paper picks SSPA
//! precisely because it handles "large-scale data and many-to-many matching
//! with real-valued arc costs" (citing Yiu et al., SIGMOD'08). This crate is
//! that solver, reusable on its own.
//!
//! * integer capacities, `f64` costs (may be negative),
//! * Bellman–Ford initialization of Johnson potentials when negative arcs
//!   are present, then Dijkstra with reduced costs per augmentation,
//! * flow extraction per edge for building arrangements from a solution.
//!
//! # Example
//!
//! ```
//! use ltc_mcmf::FlowNetwork;
//!
//! let mut net = FlowNetwork::new();
//! let s = net.add_node();
//! let a = net.add_node();
//! let t = net.add_node();
//! let sa = net.add_edge(s, a, 2, 1.0);
//! let at = net.add_edge(a, t, 2, 1.5);
//! let outcome = net.min_cost_max_flow(s, t);
//! assert_eq!(outcome.flow, 2);
//! assert!((outcome.cost - 5.0).abs() < 1e-9);
//! assert_eq!(net.flow_on(sa), 2);
//! assert_eq!(net.flow_on(at), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod sspa;

pub use network::{EdgeId, FlowNetwork, NodeId};
pub use sspa::FlowOutcome;
