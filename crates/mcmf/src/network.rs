//! Flow-network representation (adjacency lists with paired residual arcs).

/// Identifier of a node in a [`FlowNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a *forward* edge in a [`FlowNetwork`], as returned by
/// [`FlowNetwork::add_edge`]. Use it with [`FlowNetwork::flow_on`] after
/// solving to read how much flow the edge carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node (nodes are numbered `0..node_count`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Arc {
    pub to: u32,
    /// Remaining capacity of this residual arc.
    pub cap: i64,
    pub cost: f64,
}

/// A directed flow network with integer capacities and real-valued costs.
///
/// Arcs are stored with their residual twins at paired indices (`e ^ 1`),
/// the classic representation that lets augmentation update both directions
/// in O(1).
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    pub(crate) arcs: Vec<Arc>,
    /// `adj[v]` lists arc indices leaving `v`.
    pub(crate) adj: Vec<Vec<u32>>,
    /// Original capacity of every *forward* arc, for flow extraction.
    pub(crate) forward_cap: Vec<i64>,
    has_negative_cost: bool,
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty network pre-allocating room for `nodes` nodes and
    /// `edges` forward edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            arcs: Vec::with_capacity(edges * 2),
            adj: Vec::with_capacity(nodes),
            forward_cap: Vec::with_capacity(edges),
            has_negative_cost: false,
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.adj.len() as u32);
        self.adj.push(Vec::new());
        id
    }

    /// Adds `n` nodes, returning the id of the first; the ids are
    /// consecutive.
    pub fn add_nodes(&mut self, n: usize) -> NodeId {
        let first = NodeId(self.adj.len() as u32);
        for _ in 0..n {
            self.adj.push(Vec::new());
        }
        first
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges.
    pub fn edge_count(&self) -> usize {
        self.forward_cap.len()
    }

    /// Adds a directed edge `from → to` with the given capacity and
    /// per-unit cost. Returns an id that can be queried with
    /// [`Self::flow_on`] after solving.
    ///
    /// # Panics
    ///
    /// Panics on unknown endpoints, negative capacity, or non-finite cost.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, capacity: i64, cost: f64) -> EdgeId {
        assert!(
            (from.index()) < self.adj.len() && (to.index()) < self.adj.len(),
            "edge endpoints must be existing nodes"
        );
        assert!(
            capacity >= 0,
            "capacity must be non-negative, got {capacity}"
        );
        assert!(cost.is_finite(), "cost must be finite, got {cost}");
        if cost < 0.0 {
            self.has_negative_cost = true;
        }
        let fwd = self.arcs.len() as u32;
        self.arcs.push(Arc {
            to: to.0,
            cap: capacity,
            cost,
        });
        self.arcs.push(Arc {
            to: from.0,
            cap: 0,
            cost: -cost,
        });
        self.adj[from.index()].push(fwd);
        self.adj[to.index()].push(fwd + 1);
        self.forward_cap.push(capacity);
        EdgeId(self.forward_cap.len() as u32 - 1)
    }

    /// Flow currently carried by a forward edge (0 before solving).
    pub fn flow_on(&self, edge: EdgeId) -> i64 {
        let arc_idx = edge.0 as usize * 2;
        self.forward_cap[edge.0 as usize] - self.arcs[arc_idx].cap
    }

    /// Clears any computed flow, restoring every edge to its original
    /// capacity — cheaper than rebuilding when the same network is solved
    /// repeatedly (e.g. in benchmarks or what-if analyses).
    pub fn reset_flow(&mut self) {
        for (e, &cap) in self.forward_cap.iter().enumerate() {
            self.arcs[e * 2].cap = cap;
            self.arcs[e * 2 + 1].cap = 0;
        }
    }

    /// Whether any forward edge was added with a negative cost.
    pub(crate) fn has_negative_cost(&self) -> bool {
        self.has_negative_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_dense() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_nodes(3);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(net.node_count(), 4);
    }

    #[test]
    fn edges_store_residual_twins() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        let e = net.add_edge(a, b, 5, 2.5);
        assert_eq!(net.edge_count(), 1);
        assert_eq!(net.flow_on(e), 0);
        assert_eq!(net.arcs.len(), 2);
        assert_eq!(net.arcs[1].cap, 0);
        assert_eq!(net.arcs[1].cost, -2.5);
    }

    #[test]
    fn reset_flow_restores_capacities() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        let e = net.add_edge(s, t, 4, 1.0);
        let first = net.min_cost_max_flow(s, t);
        assert_eq!(net.flow_on(e), 4);
        net.reset_flow();
        assert_eq!(net.flow_on(e), 0);
        let second = net.min_cost_max_flow(s, t);
        assert_eq!(first.flow, second.flow);
        assert_eq!(first.cost, second.cost);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn negative_capacity_panics() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_edge(a, b, -1, 0.0);
    }

    #[test]
    #[should_panic(expected = "cost must be finite")]
    fn nan_cost_panics() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        let b = net.add_node();
        net.add_edge(a, b, 1, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "edge endpoints must be existing nodes")]
    fn unknown_endpoint_panics() {
        let mut net = FlowNetwork::new();
        let a = net.add_node();
        net.add_edge(a, NodeId(9), 1, 0.0);
    }
}
