//! Successive Shortest Path Algorithm with Johnson potentials.

use crate::network::FlowNetwork;
use crate::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Numerical slack for floating-point cost comparisons. Costs in the LTC
/// reduction are `O(1)` per arc and paths have 3 arcs, so `1e-9` is far
/// below any meaningful cost difference yet far above accumulated rounding.
const COST_EPS: f64 = 1e-9;

/// Result of a min-cost max-flow computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowOutcome {
    /// Total flow pushed from source to sink (the maximum flow value).
    pub flow: i64,
    /// Total cost `Σ flow(e) · cost(e)` of that flow, minimal among all
    /// maximum flows.
    pub cost: f64,
    /// Number of augmenting iterations performed (diagnostics).
    pub iterations: usize,
}

/// Heap entry ordered by smallest distance first.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the min distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl FlowNetwork {
    /// Computes a minimum-cost maximum flow from `source` to `sink`,
    /// leaving the flow recorded on the network (read it back per edge with
    /// [`FlowNetwork::flow_on`]).
    ///
    /// Uses SSPA: repeatedly augment along a cheapest residual path.
    /// Potentials keep reduced costs non-negative so Dijkstra applies; when
    /// the network was built with negative-cost arcs the potentials are
    /// initialized with one Bellman–Ford pass, otherwise they start at zero.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or if a negative-cost *cycle* is
    /// reachable in the initial residual network (impossible for networks
    /// whose negative arcs all leave a single source layer, as in the LTC
    /// reduction; the general case is guarded for safety).
    pub fn min_cost_max_flow(&mut self, source: NodeId, sink: NodeId) -> FlowOutcome {
        assert_ne!(source, sink, "source and sink must differ");
        let n = self.node_count();
        let s = source.index();
        let t = sink.index();

        let mut potential = vec![0.0f64; n];
        if self.has_negative_cost() {
            self.bellman_ford_potentials(s, &mut potential);
        }

        let mut total_flow = 0i64;
        let mut total_cost = 0.0f64;
        let mut iterations = 0usize;
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_arc: Vec<u32> = vec![u32::MAX; n];
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();

        loop {
            // Dijkstra on reduced costs, terminating as soon as the sink
            // is settled — nodes farther than the sink cannot lie on this
            // augmenting path.
            dist.iter_mut().for_each(|d| *d = f64::INFINITY);
            prev_arc.iter_mut().for_each(|p| *p = u32::MAX);
            heap.clear();
            dist[s] = 0.0;
            heap.push(HeapEntry {
                dist: 0.0,
                node: s as u32,
            });
            let mut sink_dist = f64::INFINITY;
            while let Some(HeapEntry { dist: d, node }) = heap.pop() {
                let u = node as usize;
                if d > dist[u] + COST_EPS {
                    continue; // stale entry
                }
                if u == t {
                    sink_dist = d;
                    break;
                }
                for &arc_idx in &self.adj[u] {
                    let arc = &self.arcs[arc_idx as usize];
                    if arc.cap <= 0 {
                        continue;
                    }
                    let v = arc.to as usize;
                    let reduced = arc.cost + potential[u] - potential[v];
                    debug_assert!(
                        reduced >= -1e-6,
                        "reduced cost must stay non-negative, got {reduced}"
                    );
                    let nd = dist[u] + reduced.max(0.0);
                    if nd + COST_EPS < dist[v] {
                        dist[v] = nd;
                        prev_arc[v] = arc_idx;
                        heap.push(HeapEntry {
                            dist: nd,
                            node: v as u32,
                        });
                    }
                }
            }

            if !sink_dist.is_finite() {
                break; // sink unreachable: max flow found
            }
            iterations += 1;

            // Johnson update with early termination: π'(v) = π(v) +
            // min(dist(v), dist(t)) keeps every residual reduced cost
            // non-negative (nodes beyond the sink, settled or not, shift
            // by the sink distance).
            for v in 0..n {
                potential[v] += dist[v].min(sink_dist);
            }

            // Find the bottleneck along the path and augment.
            let mut bottleneck = i64::MAX;
            let mut v = t;
            while v != s {
                let arc_idx = prev_arc[v] as usize;
                bottleneck = bottleneck.min(self.arcs[arc_idx].cap);
                v = self.arcs[arc_idx ^ 1].to as usize;
            }
            debug_assert!(bottleneck > 0 && bottleneck < i64::MAX);

            let mut v = t;
            while v != s {
                let arc_idx = prev_arc[v] as usize;
                self.arcs[arc_idx].cap -= bottleneck;
                self.arcs[arc_idx ^ 1].cap += bottleneck;
                total_cost += self.arcs[arc_idx].cost * bottleneck as f64;
                v = self.arcs[arc_idx ^ 1].to as usize;
            }
            total_flow += bottleneck;
        }

        FlowOutcome {
            flow: total_flow,
            cost: total_cost,
            iterations,
        }
    }

    /// Bellman–Ford from `s` to seed the potentials when negative arcs
    /// exist. Nodes unreachable from `s` keep potential 0 (they can never
    /// be on an augmenting path from `s` either).
    fn bellman_ford_potentials(&self, s: usize, potential: &mut [f64]) {
        let n = self.node_count();
        let mut dist = vec![f64::INFINITY; n];
        dist[s] = 0.0;
        let mut changed = true;
        let mut rounds = 0usize;
        while changed {
            changed = false;
            rounds += 1;
            assert!(
                rounds <= n + 1,
                "negative-cost cycle detected in the residual network"
            );
            for u in 0..n {
                if !dist[u].is_finite() {
                    continue;
                }
                for &arc_idx in &self.adj[u] {
                    let arc = &self.arcs[arc_idx as usize];
                    if arc.cap <= 0 {
                        continue;
                    }
                    let v = arc.to as usize;
                    let nd = dist[u] + arc.cost;
                    if nd + COST_EPS < dist[v] {
                        dist[v] = nd;
                        changed = true;
                    }
                }
            }
        }
        for v in 0..n {
            if dist[v].is_finite() {
                potential[v] = dist[v];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::FlowNetwork;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        let e = net.add_edge(s, t, 7, 3.0);
        let out = net.min_cost_max_flow(s, t);
        assert_eq!(out.flow, 7);
        assert!(close(out.cost, 21.0));
        assert_eq!(net.flow_on(e), 7);
    }

    #[test]
    fn chooses_cheaper_parallel_path() {
        // s → a → t (cost 1) and s → b → t (cost 10), both capacity 1;
        // sink edge capacity 1 total, so only the cheap path is used.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let m = net.add_node();
        let t = net.add_node();
        net.add_edge(s, a, 1, 0.0);
        net.add_edge(s, b, 1, 0.0);
        let ea = net.add_edge(a, m, 1, 1.0);
        let eb = net.add_edge(b, m, 1, 10.0);
        net.add_edge(m, t, 1, 0.0);
        let out = net.min_cost_max_flow(s, t);
        assert_eq!(out.flow, 1);
        assert!(close(out.cost, 1.0));
        assert_eq!(net.flow_on(ea), 1);
        assert_eq!(net.flow_on(eb), 0);
    }

    #[test]
    fn max_flow_takes_priority_over_cost() {
        // The only way to reach flow 2 uses the expensive edge; SSPA must
        // still find the max flow.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_edge(s, a, 2, 0.0);
        net.add_edge(a, t, 1, 1.0);
        net.add_edge(a, t, 1, 100.0);
        let out = net.min_cost_max_flow(s, t);
        assert_eq!(out.flow, 2);
        assert!(close(out.cost, 101.0));
    }

    #[test]
    fn rerouting_through_residual_arcs() {
        // Classic case where a later augmentation must cancel part of an
        // earlier one to achieve the min-cost max flow.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let b = net.add_node();
        let t = net.add_node();
        net.add_edge(s, a, 1, 1.0);
        net.add_edge(s, b, 1, 4.0);
        net.add_edge(a, b, 1, 1.0);
        net.add_edge(a, t, 1, 6.0);
        net.add_edge(b, t, 2, 1.0);
        let out = net.min_cost_max_flow(s, t);
        assert_eq!(out.flow, 2);
        // Optimal: s→a→b→t (cost 3) + s→b→t (cost 5) = 8.
        assert!(close(out.cost, 8.0), "cost was {}", out.cost);
    }

    #[test]
    fn negative_costs_bipartite_assignment() {
        // Two workers, two tasks; costs are -Acc*. The solver must pick the
        // assignment maximizing total Acc* (perfect matching, cost -1.7).
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let w1 = net.add_node();
        let w2 = net.add_node();
        let t1 = net.add_node();
        let t2 = net.add_node();
        let t = net.add_node();
        net.add_edge(s, w1, 1, 0.0);
        net.add_edge(s, w2, 1, 0.0);
        net.add_edge(w1, t1, 1, -0.9);
        net.add_edge(w1, t2, 1, -0.3);
        net.add_edge(w2, t1, 1, -0.5);
        net.add_edge(w2, t2, 1, -0.8);
        net.add_edge(t1, t, 1, 0.0);
        net.add_edge(t2, t, 1, 0.0);
        let out = net.min_cost_max_flow(s, t);
        assert_eq!(out.flow, 2);
        assert!(close(out.cost, -1.7), "cost was {}", out.cost);
    }

    #[test]
    fn disconnected_sink_gives_zero_flow() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let a = net.add_node();
        let t = net.add_node();
        net.add_edge(s, a, 5, 1.0);
        let out = net.min_cost_max_flow(s, t);
        assert_eq!(out.flow, 0);
        assert_eq!(out.cost, 0.0);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn zero_capacity_edge_carries_nothing() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        let e = net.add_edge(s, t, 0, 1.0);
        let out = net.min_cost_max_flow(s, t);
        assert_eq!(out.flow, 0);
        assert_eq!(net.flow_on(e), 0);
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_source_sink_panics() {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        net.min_cost_max_flow(s, s);
    }

    #[test]
    fn many_to_many_with_capacities() {
        // 3 workers (capacity 2 each) × 2 tasks needing 3 units each:
        // total flow min(6, 6) = 6.
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let workers: Vec<_> = (0..3).map(|_| net.add_node()).collect();
        let tasks: Vec<_> = (0..2).map(|_| net.add_node()).collect();
        let t = net.add_node();
        for &w in &workers {
            net.add_edge(s, w, 2, 0.0);
        }
        let mut cost = 0.1;
        for &w in &workers {
            for &task in &tasks {
                net.add_edge(w, task, 1, cost);
                cost += 0.1;
            }
        }
        for &task in &tasks {
            net.add_edge(task, t, 3, 0.0);
        }
        let out = net.min_cost_max_flow(s, t);
        assert_eq!(out.flow, 6);
    }
}
